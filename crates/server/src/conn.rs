//! One TCP connection: a bounded line reader and the command loop.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::time::Instant;

use crate::reply;
use crate::scheduler::Shared;
use crate::session::{Session, Step};

/// A per-connection token bucket: `limit` tokens of capacity, refilled at
/// `limit` tokens per second.  Every non-blank, non-comment line costs
/// one token; a line arriving to an empty bucket is rejected with the
/// deterministic [`reply::RATE_LIMITED`] line instead of being executed.
pub(crate) struct TokenBucket {
    capacity: f64,
    tokens: f64,
    refill_per_sec: f64,
    last: Instant,
}

impl TokenBucket {
    pub(crate) fn new(limit: u32) -> Self {
        let capacity = f64::from(limit.max(1));
        TokenBucket {
            capacity,
            tokens: capacity,
            refill_per_sec: capacity,
            last: Instant::now(),
        }
    }

    /// Tries to spend one token; `false` means the command is throttled.
    pub(crate) fn admit(&mut self) -> bool {
        let now = Instant::now();
        let elapsed = now.duration_since(self.last).as_secs_f64();
        self.last = now;
        self.tokens = (self.tokens + elapsed * self.refill_per_sec).min(self.capacity);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// What one attempt to pull a line produced.
pub(crate) enum ReadLine {
    /// A complete line (newline stripped, `\r\n` tolerated, lossy UTF-8).
    Line(String),
    /// A line longer than the configured cap was discarded up to its
    /// newline; the protocol continues at the next line.
    TooLong,
    /// The read timed out (poll tick) — check for shutdown and retry.
    Timeout,
    /// The peer closed the connection.
    Eof,
}

/// Accumulates socket reads and hands lines out one at a time, discarding
/// overlong lines instead of buffering them without bound.
pub(crate) struct LineReader {
    pending: Vec<u8>,
    discarding: bool,
}

impl LineReader {
    pub(crate) fn new() -> Self {
        LineReader {
            pending: Vec::new(),
            discarding: false,
        }
    }

    pub(crate) fn read_line(
        &mut self,
        stream: &mut impl Read,
        max_line_bytes: usize,
    ) -> io::Result<ReadLine> {
        loop {
            if let Some(pos) = self.pending.iter().position(|&b| b == b'\n') {
                let mut line: Vec<u8> = self.pending.drain(..=pos).collect();
                line.pop();
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                if self.discarding || line.len() > max_line_bytes {
                    self.discarding = false;
                    return Ok(ReadLine::TooLong);
                }
                return Ok(ReadLine::Line(String::from_utf8_lossy(&line).into_owned()));
            }
            if self.pending.len() > max_line_bytes {
                // Too much data without a newline: drop what we have and
                // skip ahead to the next line boundary.
                self.pending.clear();
                self.discarding = true;
            }
            let mut buf = [0u8; 4096];
            match stream.read(&mut buf) {
                Ok(0) => return Ok(ReadLine::Eof),
                Ok(n) if self.discarding => {
                    if let Some(pos) = buf[..n].iter().position(|&b| b == b'\n') {
                        self.pending.extend_from_slice(&buf[pos..n]);
                    }
                }
                Ok(n) => self.pending.extend_from_slice(&buf[..n]),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return Ok(ReadLine::Timeout)
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }
}

pub(crate) fn write_lines(stream: &mut TcpStream, lines: &[String]) -> io::Result<()> {
    let mut out = String::with_capacity(lines.iter().map(|l| l.len() + 1).sum());
    for line in lines {
        out.push_str(line);
        out.push('\n');
    }
    stream.write_all(out.as_bytes())
}

/// Serves one connection to completion (peer quit/disconnect or server
/// shutdown).  Panics unwind to the worker, which counts and recovers.
pub(crate) fn handle_connection(shared: &Shared, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.config.poll_interval));
    let max_line_bytes = shared.config.max_line_bytes;
    let mut reader = LineReader::new();
    let mut session = Session::new();
    let mut bucket = shared.config.rate_limit.map(TokenBucket::new);
    loop {
        if shared.shutting_down() {
            break;
        }
        match reader.read_line(&mut stream, max_line_bytes) {
            Ok(ReadLine::Line(line)) => {
                shared.commands.fetch_add(1, Ordering::Relaxed);
                let trimmed = line.trim();
                let chargeable = !trimmed.is_empty() && !trimmed.starts_with('#');
                if chargeable {
                    if let Some(bucket) = &mut bucket {
                        if !bucket.admit() {
                            // A throttled line is never fed to the session:
                            // it cannot mutate, open or extend a batch.
                            session.abort_batch();
                            shared.busy_rejections.fetch_add(1, Ordering::Relaxed);
                            if write_lines(&mut stream, &[reply::RATE_LIMITED.to_string()]).is_err()
                            {
                                break;
                            }
                            continue;
                        }
                    }
                }
                match session.feed(shared, &line) {
                    Step::Silent => {}
                    Step::Replies(replies) => {
                        if write_lines(&mut stream, &replies).is_err() {
                            break;
                        }
                    }
                    Step::Quit(reply) => {
                        let _ = write_lines(&mut stream, &[reply]);
                        break;
                    }
                    Step::Shutdown(reply) => {
                        let _ = write_lines(&mut stream, &[reply]);
                        shared.begin_shutdown();
                        break;
                    }
                }
            }
            Ok(ReadLine::TooLong) => {
                let reply = format!("ERR LINE line exceeds {max_line_bytes} bytes; discarded");
                if write_lines(&mut stream, &[reply]).is_err() {
                    break;
                }
            }
            Ok(ReadLine::Timeout) => continue,
            Ok(ReadLine::Eof) | Err(_) => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A reader fed from a script of chunks, then EOF.
    struct Chunks(Vec<Vec<u8>>);

    impl Read for Chunks {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.0.is_empty() {
                return Ok(0);
            }
            let chunk = self.0.remove(0);
            assert!(chunk.len() <= buf.len(), "test chunks fit the buffer");
            buf[..chunk.len()].copy_from_slice(&chunk);
            Ok(chunk.len())
        }
    }

    fn lines_of(mut source: Chunks, max: usize) -> Vec<ReadLine> {
        let mut reader = LineReader::new();
        let mut out = Vec::new();
        loop {
            match reader.read_line(&mut source, max).unwrap() {
                ReadLine::Eof => return out,
                step => out.push(step),
            }
        }
    }

    #[test]
    fn split_writes_reassemble_into_lines() {
        let source = Chunks(vec![
            b"STA".to_vec(),
            b"TS\r\nCOUNT auto ".to_vec(),
            b"TRUE\nQ".to_vec(),
            b"UIT\n".to_vec(),
        ]);
        let lines = lines_of(source, 1024);
        let texts: Vec<&str> = lines
            .iter()
            .map(|l| match l {
                ReadLine::Line(s) => s.as_str(),
                _ => panic!("expected only complete lines"),
            })
            .collect();
        assert_eq!(texts, ["STATS", "COUNT auto TRUE", "QUIT"]);
    }

    #[test]
    fn overlong_lines_are_discarded_not_buffered() {
        let mut source = vec![b"x".repeat(4096); 3];
        source.push(b"tail\nSTATS\n".to_vec());
        let lines = lines_of(Chunks(source), 1000);
        assert!(matches!(lines[0], ReadLine::TooLong));
        match &lines[1] {
            ReadLine::Line(s) => assert_eq!(s, "STATS"),
            _ => panic!("the protocol resumes on the next line"),
        }
        assert_eq!(lines.len(), 2);
    }

    #[test]
    fn token_bucket_rejects_a_burst_beyond_capacity_then_refills() {
        let mut bucket = TokenBucket::new(3);
        assert!(bucket.admit());
        assert!(bucket.admit());
        assert!(bucket.admit());
        assert!(!bucket.admit(), "the burst capacity is exactly the limit");
        std::thread::sleep(std::time::Duration::from_millis(500));
        assert!(bucket.admit(), "tokens refill at the limit per second");
    }

    #[test]
    fn non_utf8_bytes_survive_lossily() {
        let source = Chunks(vec![vec![0xFF, 0xFE, b'A', b'\n']]);
        let lines = lines_of(source, 1024);
        match &lines[0] {
            ReadLine::Line(s) => assert!(s.ends_with('A')),
            _ => panic!("lossy decoding still yields a line"),
        }
    }
}
