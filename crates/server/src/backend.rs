//! The serving backend: one engine behind a lock, or a sharded router.
//!
//! [`Backend`] is the seam the session state machine talks through.  The
//! classic deployment keeps the whole [`RepairEngine`] behind one
//! `RwLock` — queries share read guards, mutations take the write
//! barrier.  With `--shards N` the backend is a
//! [`ShardedEngine`]: mutations route to the single hash-owned shard and
//! contend only on that shard's lock (plus a short global id-assignment
//! commit), while queries run on the lazily merged gathered view, which
//! is bit-for-bit the unsharded engine fed the same mutation sequence —
//! so replies, including `gen=`/`cached=` provenance and seeded
//! estimates, stay byte-identical either way.

use std::sync::{Arc, RwLock};

use cdr_core::{CountError, CountReport, CountRequest, RepairEngine, ShardedEngine};
use cdr_num::BigNat;
use cdr_repairdb::{Database, Mutation};

use cdr_core::CompactionOutcome;

use crate::replication::{ReplReply, ReplicatedBackend};
use crate::reply;

fn rlock<T>(lock: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn wlock<T>(lock: &RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    lock.write()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// The engine a server (or [`Oracle`](crate::Oracle)) serves from.
pub enum Backend {
    /// The whole engine behind one read/write lock.
    Single(RwLock<RepairEngine>),
    /// N hash-partitioned shards plus the gathered query view.
    Sharded(ShardedEngine),
    /// One engine plus the replication sidecar (primary or follower).
    Replicated(ReplicatedBackend),
}

impl Backend {
    /// Wraps an engine in the single-lock backend.
    pub fn single(engine: RepairEngine) -> Backend {
        Backend::Single(RwLock::new(engine))
    }

    /// Wraps a sharded engine.
    pub fn sharded(engine: ShardedEngine) -> Backend {
        Backend::Sharded(engine)
    }

    /// Wraps a replicated backend (primary or follower).
    pub fn replicated(backend: ReplicatedBackend) -> Backend {
        Backend::Replicated(backend)
    }

    /// Shard count: 1 for the single and replicated backends.
    pub fn shard_count(&self) -> usize {
        match self {
            Backend::Single(_) | Backend::Replicated(_) => 1,
            Backend::Sharded(engine) => engine.shard_count(),
        }
    }

    /// The replication sidecar, when this backend has one.
    pub(crate) fn replication(&self) -> Option<&ReplicatedBackend> {
        match self {
            Backend::Replicated(backend) => Some(backend),
            _ => None,
        }
    }

    /// Serves one `REPL …` line; replication-free backends refuse it.
    /// `admin_ok` gates the admin-grade side effects (epoch fencing) of
    /// an announcing `REPL HELLO`.
    pub fn repl(&self, line: &str, admin_ok: bool) -> ReplReply {
        match self {
            Backend::Replicated(backend) => backend.repl(line, admin_ok),
            _ => ReplReply::text(vec![
                "ERR REPL replication is not enabled on this server".to_string()
            ]),
        }
    }

    /// The `PROMOTE [FORCE]` verb; replication-free backends refuse it.
    pub fn promote(&self, force: bool) -> String {
        match self {
            Backend::Replicated(backend) => backend.promote(force),
            _ => "ERR REPL replication is not enabled on this server".to_string(),
        }
    }

    /// The `RETARGET <host:port>` verb — points a surviving follower at a
    /// newly promoted primary; replication-free backends refuse it.
    pub fn retarget(&self, line: &str) -> String {
        match self {
            Backend::Replicated(backend) => {
                let mut tokens = line.split_whitespace();
                let _verb = tokens.next();
                match (tokens.next(), tokens.next()) {
                    (Some(upstream), None) => backend.retarget(upstream),
                    _ => "ERR REPL usage: RETARGET <host:port>".to_string(),
                }
            }
            _ => "ERR REPL replication is not enabled on this server".to_string(),
        }
    }

    /// A database over the served schema for lock-free command parsing
    /// (the schema is fixed at engine construction).
    pub fn parse_database(&self) -> Arc<Database> {
        match self {
            Backend::Single(lock) => rlock(lock).database_arc(),
            Backend::Sharded(engine) => engine.parse_database(),
            Backend::Replicated(backend) => backend.parse_database(),
        }
    }

    /// Runs `f` under shared query access — for the sharded backend, over
    /// the drained gathered view.
    pub fn read<R>(&self, f: impl FnOnce(&RepairEngine) -> R) -> R {
        match self {
            Backend::Single(lock) => f(&rlock(lock)),
            Backend::Sharded(engine) => engine.read(f),
            Backend::Replicated(backend) => backend.read(f),
        }
    }

    /// Answers one counting request.
    pub fn run(&self, request: &CountRequest) -> Result<CountReport, CountError> {
        self.read(|engine| engine.run(request))
    }

    /// Answers a batch of requests through the engine's thread-scoped
    /// fan-out.
    pub fn run_batch(&self, requests: &[CountRequest]) -> Vec<Result<CountReport, CountError>> {
        self.read(|engine| engine.run_batch(requests))
    }

    /// Applies one mutation (routed, for the sharded backend) after
    /// running the auto-compaction policy, and renders the wire reply.
    pub fn mutate(&self, mutation: Mutation, auto_compact: Option<u64>) -> String {
        match self {
            Backend::Single(lock) => {
                let mut engine = wlock(lock);
                if let Some(threshold) = auto_compact {
                    engine.maybe_compact(threshold);
                }
                apply_single(&mut engine, mutation)
            }
            Backend::Sharded(engine) => {
                if let Some(threshold) = auto_compact {
                    engine.maybe_compact(threshold);
                }
                match mutation {
                    Mutation::Insert(_) => match engine.apply(mutation) {
                        Ok(applied) => reply::render_insert(
                            applied.id,
                            applied.applied,
                            &applied.report,
                            &applied.total,
                        ),
                        Err(e) => reply::render_count_error(&e),
                    },
                    Mutation::Delete(id) => match engine.apply(Mutation::Delete(id)) {
                        Ok(applied) => reply::render_delete(id, &applied.report, &applied.total),
                        Err(e) => reply::render_count_error(&e),
                    },
                }
            }
            Backend::Replicated(backend) => backend.mutate(mutation, auto_compact),
        }
    }

    /// Applies a mutation batch atomically after the auto-compaction
    /// policy, and renders the aggregated wire reply.
    pub fn mutate_batch(&self, mutations: Vec<Mutation>, auto_compact: Option<u64>) -> String {
        match self {
            Backend::Single(lock) => {
                let mut engine = wlock(lock);
                if let Some(threshold) = auto_compact {
                    engine.maybe_compact(threshold);
                }
                match engine.apply_batch(mutations) {
                    Ok(report) => reply::render_batch_mutation(&report, engine.total_repairs()),
                    Err(e) => reply::render_count_error(&e),
                }
            }
            Backend::Sharded(engine) => {
                if let Some(threshold) = auto_compact {
                    engine.maybe_compact(threshold);
                }
                match engine.apply_batch(mutations) {
                    Ok((report, total)) => reply::render_batch_mutation(&report, &total),
                    Err(e) => reply::render_count_error(&e),
                }
            }
            Backend::Replicated(backend) => backend.mutate_batch(mutations, auto_compact),
        }
    }

    /// Compacts, returning the outcome plus the post-compaction total the
    /// reply renders — or the refusal line (a replicated follower is
    /// read-only).
    pub fn compact(&self) -> Result<(CompactionOutcome, BigNat), String> {
        match self {
            Backend::Single(lock) => {
                let mut engine = wlock(lock);
                let outcome = engine.compact();
                let total = engine.total_repairs().clone();
                Ok((outcome, total))
            }
            Backend::Sharded(engine) => Ok(engine.compact_with_total()),
            Backend::Replicated(backend) => backend.compact(),
        }
    }

    /// Renders the `STATS` reply: the merged gauges, plus per-shard
    /// `s<i>=facts/blocks/slots/tombstones` tails on a sharded backend.
    pub fn stats(&self) -> String {
        match self {
            Backend::Single(lock) => reply::render_stats(&rlock(lock)),
            Backend::Sharded(engine) => {
                // Gauges are snapshotted shard by shard before the
                // gathered view renders the merged head; no two locks are
                // ever held together here.
                let gauges = engine.shard_gauges();
                let head = engine.read(reply::render_stats);
                let mut line = format!("{head} | shards={}", gauges.len());
                for (index, shard) in gauges.iter().enumerate() {
                    line.push_str(&format!(
                        " s{index}={}/{}/{}/{}",
                        shard.facts, shard.blocks, shard.slots, shard.tombstones
                    ));
                }
                line
            }
            Backend::Replicated(backend) => backend.stats(),
        }
    }

    /// The chaos `PANIC` verb: panics while holding the write-side lock
    /// (the engine lock, or the sharded gathered-view lock), poisoning it
    /// for the crash-recovery regression tests.
    pub fn chaos_panic(&self) -> ! {
        match self {
            Backend::Single(lock) => {
                let _guard = wlock(lock);
                panic!("chaos: PANIC verb")
            }
            Backend::Sharded(engine) => {
                engine.chaos_panic();
                unreachable!("chaos_panic always panics")
            }
            Backend::Replicated(backend) => backend.chaos_panic(),
        }
    }
}

pub(crate) fn apply_single(engine: &mut RepairEngine, mutation: Mutation) -> String {
    match mutation {
        Mutation::Insert(fact) => match engine.apply(Mutation::Insert(fact.clone())) {
            Ok(report) => {
                let id = engine
                    .database()
                    .fact_id(&fact)
                    .expect("an applied or no-op insert leaves the fact present");
                reply::render_insert(id, report.applied == 1, &report, engine.total_repairs())
            }
            Err(e) => reply::render_count_error(&e),
        },
        Mutation::Delete(id) => match engine.apply(Mutation::Delete(id)) {
            Ok(report) => reply::render_delete(id, &report, engine.total_repairs()),
            Err(e) => reply::render_count_error(&e),
        },
    }
}
