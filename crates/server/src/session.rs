//! One protocol session: the line-at-a-time state machine shared by the
//! live TCP connection handler and the single-threaded [`Oracle`] replay.
//!
//! Keeping the server and the oracle on literally the same parsing,
//! scheduling-surface and rendering code is what makes the concurrency
//! tests meaningful: a socket reply can be compared byte-for-byte against
//! the oracle's reply for the same command sequence.

use std::cell::RefCell;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use cdr_core::{wire, CountRequest, EngineCommand, RepairEngine, WireError};
use cdr_repairdb::{Database, Mutation};

use crate::reply;

/// Longest `SLEEP` a client may request, in milliseconds (the verb exists
/// for diagnostics and backpressure tests, not for parking workers).
const MAX_SLEEP_MS: u64 = 5_000;

/// How a [`Session`] reaches the engine.  The live server implements this
/// over an `RwLock` plus a bounded batch-permit pool; the [`Oracle`]
/// implements it over a bare engine with admission always granted.
pub(crate) trait EngineHost {
    /// Runs `f` under shared (query) access.
    fn with_read<R>(&self, f: impl FnOnce(&RepairEngine) -> R) -> R;
    /// Runs `f` under exclusive (mutation) access.
    fn with_write<R>(&self, f: impl FnOnce(&mut RepairEngine) -> R) -> R;
    /// Runs `f` while holding a batch fan-out permit, or returns `None`
    /// immediately when every permit is in use (the `SERVER BUSY` path).
    fn with_batch_permit<R>(&self, f: impl FnOnce() -> R) -> Option<R>;
    /// Whether the chaos verbs are enabled.
    fn chaos(&self) -> bool;
    /// Most commands one `BATCH … END` may carry.
    fn max_batch_commands(&self) -> usize;
    /// The auto-compaction waste threshold, if the policy is enabled:
    /// before every mutating command the engine compacts when its
    /// reclaimable waste (tombstones + retired slots) has reached this,
    /// or when the fact-id space is exhausted (see
    /// [`RepairEngine::maybe_compact`]).
    fn auto_compact_threshold(&self) -> Option<u64>;
}

/// Runs the host's auto-compaction policy; called under the write guard
/// before a mutating command executes, so a command that would otherwise
/// die on exhausted fact ids finds the reclaimed headroom already there.
fn auto_compact(engine: &mut RepairEngine, threshold: Option<u64>) {
    if let Some(threshold) = threshold {
        engine.maybe_compact(threshold);
    }
}

/// What one fed line produced.
#[derive(Debug)]
pub(crate) enum Step {
    /// Nothing to send (blank lines, comments, open-batch collection).
    Silent,
    /// One or more reply lines to send, in order.
    Replies(Vec<String>),
    /// Send the line, then close this connection.
    Quit(String),
    /// Send the line, close this connection, and shut the server down.
    Shutdown(String),
}

/// One item of a query `BATCH`.
enum BatchItem {
    Request(CountRequest),
    Sleep(u64),
}

/// The per-connection protocol state machine.
#[derive(Default)]
pub(crate) struct Session {
    /// Collected lines of an open `BATCH … END`, if one is open.
    batch: Option<Vec<String>>,
}

impl Session {
    pub(crate) fn new() -> Self {
        Session::default()
    }

    /// Feeds one decoded line and says what to send back.
    pub(crate) fn feed<H: EngineHost>(&mut self, host: &H, line: &str) -> Step {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            return Step::Silent;
        }
        let verb = trimmed
            .split_whitespace()
            .next()
            .unwrap_or("")
            .to_ascii_uppercase();
        if self.batch.is_some() {
            return match verb.as_str() {
                "END" => {
                    let lines = self.batch.take().expect("batch is open");
                    execute_batch(host, &lines)
                }
                "BATCH" => {
                    self.batch = None;
                    Step::Replies(vec![
                        "ERR BATCH nested BATCH; the open batch was discarded".to_string()
                    ])
                }
                _ => {
                    let batch = self.batch.as_mut().expect("batch is open");
                    if batch.len() >= host.max_batch_commands() {
                        self.batch = None;
                        Step::Replies(vec![format!(
                            "ERR BATCH batch exceeds {} commands; discarded",
                            host.max_batch_commands()
                        )])
                    } else {
                        batch.push(trimmed.to_string());
                        Step::Silent
                    }
                }
            };
        }
        match verb.as_str() {
            "BATCH" => {
                self.batch = Some(Vec::new());
                Step::Silent
            }
            "END" => Step::Replies(vec!["ERR BATCH END without an open BATCH".to_string()]),
            "STATS" => Step::Replies(vec![host.with_read(reply::render_stats)]),
            "SLEEP" => Step::Replies(vec![execute_sleep(trimmed)]),
            "PANIC" if host.chaos() => {
                // Crash-recovery regression hook: panic while holding the
                // write lock, poisoning it for every later guard.
                host.with_write(|_| -> Step { panic!("chaos: PANIC verb") })
            }
            "QUIT" => Step::Quit("OK BYE".to_string()),
            "SHUTDOWN" => Step::Shutdown("OK SHUTDOWN".to_string()),
            _ => Step::Replies(vec![execute_command(host, trimmed)]),
        }
    }
}

fn execute_sleep(line: &str) -> String {
    let operand = line.split_whitespace().nth(1).unwrap_or("");
    match operand.parse::<u64>() {
        Ok(ms) if ms <= MAX_SLEEP_MS => {
            thread::sleep(Duration::from_millis(ms));
            format!("OK SLEPT {ms}")
        }
        Ok(ms) => format!("ERR PARSE SLEEP {ms} exceeds the {MAX_SLEEP_MS} ms cap"),
        Err(_) => format!("ERR PARSE `{operand}` is not a sleep duration in ms"),
    }
}

/// Parses against a snapshot of the served database: the schema is fixed
/// at engine construction, so command parsing never needs to hold a lock.
fn database_snapshot<H: EngineHost>(host: &H) -> Arc<Database> {
    host.with_read(|engine| engine.database_arc())
}

/// Executes one engine command line: queries under a read guard,
/// mutations under the write barrier.
fn execute_command<H: EngineHost>(host: &H, line: &str) -> String {
    let db = database_snapshot(host);
    let threshold = host.auto_compact_threshold();
    match wire::parse_engine_command(line, &db) {
        Ok(EngineCommand::Query(request)) => host.with_read(|engine| match engine.run(&request) {
            Ok(report) => reply::render_report(request.semantics(), &report),
            Err(e) => reply::render_count_error(&e),
        }),
        Ok(EngineCommand::Mutate(mutation)) => host.with_write(|engine| {
            auto_compact(engine, threshold);
            apply_mutation(engine, mutation)
        }),
        Ok(EngineCommand::MutateBatch(mutations)) => host.with_write(|engine| {
            auto_compact(engine, threshold);
            match engine.apply_batch(mutations) {
                Ok(report) => reply::render_batch_mutation(&report, engine.total_repairs()),
                Err(e) => reply::render_count_error(&e),
            }
        }),
        Ok(EngineCommand::Compact) => host.with_write(|engine| {
            let outcome = engine.compact();
            reply::render_compaction(&outcome, engine.total_repairs())
        }),
        Err(e) => reply::render_wire_error(&e),
    }
}

fn apply_mutation(engine: &mut RepairEngine, mutation: Mutation) -> String {
    match mutation {
        Mutation::Insert(fact) => match engine.apply(Mutation::Insert(fact.clone())) {
            Ok(report) => {
                let id = engine
                    .database()
                    .fact_id(&fact)
                    .expect("an applied or no-op insert leaves the fact present");
                reply::render_insert(id, report.applied == 1, &report, engine.total_repairs())
            }
            Err(e) => reply::render_count_error(&e),
        },
        Mutation::Delete(id) => match engine.apply(Mutation::Delete(id)) {
            Ok(report) => reply::render_delete(id, &report, engine.total_repairs()),
            Err(e) => reply::render_count_error(&e),
        },
    }
}

/// Executes a closed `BATCH … END`.
///
/// A batch is either *mutations only* — applied atomically through
/// [`RepairEngine::apply_batch`], one aggregated reply — or *queries only*
/// (plus `SLEEP` diagnostics) — admitted through the bounded batch-permit
/// pool and fanned out with [`RepairEngine::run_batch`], one reply line
/// per item after an `OK BATCH <n>` header.  Mixing kinds is an error:
/// the engine's scheduler treats every mutation as a barrier, so a mixed
/// batch has no single atomic meaning.
fn execute_batch<H: EngineHost>(host: &H, lines: &[String]) -> Step {
    let db = database_snapshot(host);
    let mut mutations: Vec<Mutation> = Vec::new();
    let mut items: Vec<BatchItem> = Vec::new();
    for line in lines {
        let verb = line
            .split_whitespace()
            .next()
            .unwrap_or("")
            .to_ascii_uppercase();
        let parsed: Result<(), WireError> = match verb.as_str() {
            "INSERT" | "DELETE" => wire::parse_mutation(line, &db).map(|m| mutations.push(m)),
            "SLEEP" => match line.split_whitespace().nth(1).unwrap_or("").parse::<u64>() {
                Ok(ms) if ms <= MAX_SLEEP_MS => {
                    items.push(BatchItem::Sleep(ms));
                    Ok(())
                }
                _ => Err(WireError::Syntax {
                    verb: "SLEEP",
                    message: format!("bad duration in `{line}`"),
                }),
            },
            _ => wire::parse_count_request(line).map(|r| items.push(BatchItem::Request(r))),
        };
        if let Err(e) = parsed {
            return Step::Replies(vec![reply::render_wire_error(&e)]);
        }
    }
    if !mutations.is_empty() && !items.is_empty() {
        return Step::Replies(vec![
            "ERR BATCH a batch must be all mutations or all queries".to_string(),
        ]);
    }
    if !mutations.is_empty() {
        let threshold = host.auto_compact_threshold();
        let line = host.with_write(|engine| {
            auto_compact(engine, threshold);
            match engine.apply_batch(mutations) {
                Ok(report) => reply::render_batch_mutation(&report, engine.total_repairs()),
                Err(e) => reply::render_count_error(&e),
            }
        });
        return Step::Replies(vec![line]);
    }
    match host.with_batch_permit(|| run_query_batch(host, &items)) {
        Some(mut replies) => {
            let mut lines = Vec::with_capacity(replies.len() + 1);
            lines.push(format!("OK BATCH {}", replies.len()));
            lines.append(&mut replies);
            Step::Replies(lines)
        }
        None => Step::Replies(vec![reply::busy("batch fan-out permits exhausted")]),
    }
}

/// Runs the items of an admitted query batch in order, fanning each
/// maximal run of consecutive requests out through `run_batch`.
fn run_query_batch<H: EngineHost>(host: &H, items: &[BatchItem]) -> Vec<String> {
    let mut replies = Vec::with_capacity(items.len());
    let mut pending: Vec<&CountRequest> = Vec::new();
    let flush = |pending: &mut Vec<&CountRequest>, replies: &mut Vec<String>| {
        if pending.is_empty() {
            return;
        }
        let requests: Vec<CountRequest> = pending.iter().map(|&r| r.clone()).collect();
        let reports = host.with_read(|engine| engine.run_batch(&requests));
        for (request, report) in requests.iter().zip(reports) {
            replies.push(match report {
                Ok(report) => reply::render_report(request.semantics(), &report),
                Err(e) => reply::render_count_error(&e),
            });
        }
        pending.clear();
    };
    for item in items {
        match item {
            BatchItem::Request(request) => pending.push(request),
            BatchItem::Sleep(ms) => {
                flush(&mut pending, &mut replies);
                thread::sleep(Duration::from_millis(*ms));
                replies.push(format!("OK SLEPT {ms}"));
            }
        }
    }
    flush(&mut pending, &mut replies);
    replies
}

/// A single-threaded reference server: the same parsing, scheduling
/// surface and rendering as the TCP front end, over a bare engine with no
/// sockets, no locks and batch admission always granted.
///
/// Because wire replies are deterministic functions of the engine state
/// and the command sequence (never of wall-clock time), replaying a
/// recorded command interleaving through an `Oracle` reproduces the
/// server's replies byte for byte — the integration tests' ground truth.
///
/// ```
/// use cdr_core::RepairEngine;
/// use cdr_server::Oracle;
/// use cdr_workloads::employee_example;
///
/// let (db, keys) = employee_example();
/// let mut oracle = Oracle::new(RepairEngine::new(db, keys));
/// let replies = oracle.feed("COUNT auto EXISTS n . Employee(2, n, 'IT')");
/// assert!(replies[0].starts_with("OK COUNT 4 "));
/// ```
pub struct Oracle {
    engine: RefCell<RepairEngine>,
    session: Session,
    auto_compact: Option<u64>,
}

struct OracleHost<'a> {
    engine: &'a RefCell<RepairEngine>,
    auto_compact: Option<u64>,
}

impl EngineHost for OracleHost<'_> {
    fn with_read<R>(&self, f: impl FnOnce(&RepairEngine) -> R) -> R {
        f(&self.engine.borrow())
    }
    fn with_write<R>(&self, f: impl FnOnce(&mut RepairEngine) -> R) -> R {
        f(&mut self.engine.borrow_mut())
    }
    fn with_batch_permit<R>(&self, f: impl FnOnce() -> R) -> Option<R> {
        Some(f())
    }
    fn chaos(&self) -> bool {
        false
    }
    fn max_batch_commands(&self) -> usize {
        usize::MAX
    }
    fn auto_compact_threshold(&self) -> Option<u64> {
        self.auto_compact
    }
}

impl Oracle {
    /// A reference session over the given engine.
    pub fn new(engine: RepairEngine) -> Self {
        Oracle {
            engine: RefCell::new(engine),
            session: Session::new(),
            auto_compact: None,
        }
    }

    /// Enables the auto-compaction policy with the given waste threshold —
    /// the oracle-side mirror of `cdr-serve --auto-compact`, so replies
    /// stay byte-comparable against a server running the same policy.
    pub fn with_auto_compact(mut self, threshold: u64) -> Self {
        self.auto_compact = Some(threshold);
        self
    }

    /// Executes one wire line, returning the reply lines it produced
    /// (empty for blank lines, comments and open-batch collection).
    pub fn feed(&mut self, line: &str) -> Vec<String> {
        let host = OracleHost {
            engine: &self.engine,
            auto_compact: self.auto_compact,
        };
        match self.session.feed(&host, line) {
            Step::Silent => Vec::new(),
            Step::Replies(replies) => replies,
            Step::Quit(reply) | Step::Shutdown(reply) => vec![reply],
        }
    }

    /// Shared access to the underlying engine (for end-state assertions).
    pub fn with_engine<R>(&self, f: impl FnOnce(&RepairEngine) -> R) -> R {
        f(&self.engine.borrow())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdr_workloads::employee_example;

    fn oracle() -> Oracle {
        let (db, keys) = employee_example();
        Oracle::new(RepairEngine::new(db, keys))
    }

    #[test]
    fn single_command_session() {
        let mut oracle = oracle();
        let replies = oracle.feed("FREQ EXISTS n . Employee(2, n, 'IT')");
        assert_eq!(replies.len(), 1);
        assert!(replies[0].starts_with("OK FREQ 1 "), "{}", replies[0]);
        let replies = oracle.feed("INSERT Employee(2, 'Eve', 'Sales')");
        assert_eq!(
            replies,
            vec!["OK INSERT id=4 applied=1 gen=1 total=6".to_string()]
        );
        let replies = oracle.feed("FREQ EXISTS n . Employee(2, n, 'IT')");
        assert!(replies[0].starts_with("OK FREQ 2/3 "), "{}", replies[0]);
        let replies = oracle.feed("DELETE 4");
        assert_eq!(replies, vec!["OK DELETE id=4 gen=2 total=4".to_string()]);
        // Deleting again is a MISSING error, not a dead session.
        let replies = oracle.feed("DELETE 4");
        assert!(replies[0].starts_with("ERR MISSING "), "{}", replies[0]);
        let replies = oracle.feed("STATS");
        assert!(
            replies[0].starts_with("OK STATS facts=4 ids=5 "),
            "{}",
            replies[0]
        );
    }

    #[test]
    fn blank_lines_and_comments_are_silent() {
        let mut oracle = oracle();
        assert!(oracle.feed("").is_empty());
        assert!(oracle.feed("   ").is_empty());
        assert!(oracle.feed("# comment").is_empty());
    }

    #[test]
    fn mutation_batches_are_atomic() {
        let mut oracle = oracle();
        oracle.feed("BATCH");
        assert!(oracle.feed("INSERT Employee(3, 'Ann', 'IT')").is_empty());
        assert!(oracle.feed("INSERT Employee(3, 'Kim', 'HR')").is_empty());
        let replies = oracle.feed("END");
        assert_eq!(
            replies,
            vec!["OK BATCH applied=2 noops=0 gen=2 total=8".to_string()]
        );
        // A batch with one bad delete changes nothing.
        oracle.feed("BATCH");
        oracle.feed("INSERT Employee(4, 'Joe', 'IT')");
        oracle.feed("DELETE 99");
        let replies = oracle.feed("END");
        assert!(replies[0].starts_with("ERR MISSING "), "{}", replies[0]);
        let stats = oracle.feed("STATS");
        assert!(stats[0].contains("facts=6 "), "{}", stats[0]);
    }

    #[test]
    fn query_batches_reply_per_item_in_order() {
        let mut oracle = oracle();
        oracle.feed("BATCH");
        oracle.feed("COUNT auto EXISTS n . Employee(2, n, 'IT')");
        oracle.feed("CERTAIN EXISTS n . Employee(2, n, 'IT')");
        oracle.feed("DECIDE EXISTS n . Employee(9, n, 'IT')");
        let replies = oracle.feed("END");
        assert_eq!(replies.len(), 4);
        assert_eq!(replies[0], "OK BATCH 3");
        assert!(replies[1].starts_with("OK COUNT 4 "), "{}", replies[1]);
        assert!(replies[2].starts_with("OK CERTAIN true "), "{}", replies[2]);
        assert!(replies[3].starts_with("OK DECIDE false "), "{}", replies[3]);
    }

    #[test]
    fn mixed_batches_and_stray_end_are_errors() {
        let mut oracle = oracle();
        oracle.feed("BATCH");
        oracle.feed("INSERT Employee(3, 'Ann', 'IT')");
        oracle.feed("COUNT auto TRUE");
        let replies = oracle.feed("END");
        assert!(replies[0].starts_with("ERR BATCH "), "{}", replies[0]);
        let replies = oracle.feed("END");
        assert!(replies[0].starts_with("ERR BATCH "), "{}", replies[0]);
        // The failed batch applied nothing.
        assert!(oracle.feed("STATS")[0].contains("facts=4 "));
    }

    #[test]
    fn unknown_verbs_and_parse_errors_keep_the_session_alive() {
        let mut oracle = oracle();
        assert!(oracle.feed("NONSENSE 1 2 3")[0].starts_with("ERR UNKNOWN "));
        assert!(oracle.feed("COUNT warp TRUE")[0].starts_with("ERR PARSE "));
        assert!(oracle.feed("INSERT Unknown(1)")[0].starts_with("ERR RELATION "));
        assert!(oracle.feed("DELETE x")[0].starts_with("ERR PARSE "));
        assert!(oracle.feed("STATS")[0].starts_with("OK STATS "));
    }

    #[test]
    fn quit_replies_bye() {
        let mut oracle = oracle();
        assert_eq!(oracle.feed("QUIT"), vec!["OK BYE".to_string()]);
    }

    #[test]
    fn compact_reclaims_waste_and_reports_deterministically() {
        let mut oracle = oracle();
        oracle.feed("INSERT Employee(9, 'Flux', 'Ops')");
        assert_eq!(
            oracle.feed("DELETE 4"),
            vec!["OK DELETE id=4 gen=2 total=4".to_string()]
        );
        let stats = oracle.feed("STATS");
        assert!(stats[0].contains("ids=5 "), "{}", stats[0]);
        assert!(stats[0].contains("tombstones=1 "), "{}", stats[0]);
        assert!(stats[0].contains("waste=2 "), "{}", stats[0]);
        assert_eq!(
            oracle.feed("COMPACT"),
            vec!["OK COMPACTED facts=4 slots=2 reclaimed=1 gen=3 total=4".to_string()]
        );
        let stats = oracle.feed("STATS");
        assert!(stats[0].contains("ids=4 "), "{}", stats[0]);
        assert!(stats[0].contains("tombstones=0 "), "{}", stats[0]);
        assert!(stats[0].contains("waste=0 "), "{}", stats[0]);
        // Operands are rejected; the session stays alive.
        assert!(oracle.feed("COMPACT now")[0].starts_with("ERR PARSE "));
        assert!(oracle.feed("STATS")[0].starts_with("OK STATS "));
    }

    #[test]
    fn compact_recovers_an_exhausted_session() {
        let (db, keys) = employee_example();
        let mut oracle = Oracle::new(RepairEngine::new(db.with_fact_id_capacity(5), keys));
        oracle.feed("INSERT Employee(3, 'Eve', 'IT')");
        oracle.feed("DELETE 4");
        let replies = oracle.feed("INSERT Employee(3, 'Kim', 'IT')");
        assert!(replies[0].starts_with("ERR EXHAUSTED "), "{}", replies[0]);
        let replies = oracle.feed("COMPACT");
        assert!(replies[0].starts_with("OK COMPACTED "), "{}", replies[0]);
        let replies = oracle.feed("INSERT Employee(3, 'Kim', 'IT')");
        assert_eq!(
            replies,
            vec!["OK INSERT id=4 applied=1 gen=4 total=4".to_string()]
        );
    }

    #[test]
    fn auto_compact_keeps_a_capped_session_alive_indefinitely() {
        let (db, keys) = employee_example();
        let mut oracle =
            Oracle::new(RepairEngine::new(db.with_fact_id_capacity(8), keys)).with_auto_compact(2);
        // 50 insert/delete cycles consume 50 ids against a capacity of 8:
        // without the policy this dies with ERR EXHAUSTED on the 5th.
        for _ in 0..50 {
            let replies = oracle.feed("INSERT Employee(9, 'Flux', 'Ops')");
            assert!(replies[0].starts_with("OK INSERT "), "{}", replies[0]);
            let id = replies[0]
                .strip_prefix("OK INSERT id=")
                .and_then(|r| r.split_whitespace().next())
                .unwrap()
                .to_string();
            let replies = oracle.feed(&format!("DELETE {id}"));
            assert!(replies[0].starts_with("OK DELETE "), "{}", replies[0]);
        }
        let stats = oracle.feed("STATS");
        assert!(stats[0].contains("facts=4 "), "{}", stats[0]);
        oracle.with_engine(|engine| {
            assert!(engine.waste() <= 2, "the policy bounds the waste");
            assert!(engine.database().fact_ids_assigned() <= 8);
        });
    }
}
