//! One protocol session: the line-at-a-time state machine shared by the
//! live TCP connection handler and the single-threaded [`Oracle`] replay.
//!
//! Keeping the server and the oracle on literally the same parsing,
//! scheduling-surface and rendering code is what makes the concurrency
//! tests meaningful: a socket reply can be compared byte-for-byte against
//! the oracle's reply for the same command sequence.

use std::sync::Arc;
use std::thread;
use std::time::Duration;

use cdr_core::{wire, CountRequest, EngineCommand, RepairEngine, ShardedEngine, WireError};
use cdr_repairdb::{Database, FactId, Mutation};

use crate::backend::Backend;
use crate::reply;

/// Longest `SLEEP` a client may request, in milliseconds (the verb exists
/// for diagnostics and backpressure tests, not for parking workers).
const MAX_SLEEP_MS: u64 = 5_000;

/// How many `REMAP old->new` lines `COMPACT VERBOSE` streams when the
/// client does not pass an explicit `LIMIT`.
const DEFAULT_REMAP_LIMIT: usize = 64;

/// How a [`Session`] reaches the engine.  The live server implements this
/// over a [`Backend`] plus a bounded batch-permit pool; the [`Oracle`]
/// implements it over a bare backend with admission always granted.
pub(crate) trait EngineHost {
    /// The backend commands execute against.
    fn backend(&self) -> &Backend;
    /// Runs `f` while holding a batch fan-out permit, or returns `None`
    /// immediately when every permit is in use (the `SERVER BUSY` path).
    fn with_batch_permit<R>(&self, f: impl FnOnce() -> R) -> Option<R>;
    /// Whether the chaos verbs are enabled.
    fn chaos(&self) -> bool;
    /// Most commands one `BATCH … END` may carry.
    fn max_batch_commands(&self) -> usize;
    /// The auto-compaction waste threshold, if the policy is enabled:
    /// before every mutating command the engine compacts when its
    /// reclaimable waste (tombstones + retired slots) has reached this,
    /// or when the fact-id space is exhausted (see
    /// [`RepairEngine::maybe_compact`]).
    fn auto_compact_threshold(&self) -> Option<u64>;
    /// The admin token gating `SHUTDOWN` and the chaos verbs (`SLEEP`,
    /// `PANIC`), if one is configured.  `None` leaves those verbs open —
    /// the legacy behaviour.
    fn admin_token(&self) -> Option<&str>;
}

/// What one fed line produced.
#[derive(Debug)]
pub(crate) enum Step {
    /// Nothing to send (blank lines, comments, open-batch collection).
    Silent,
    /// One or more reply lines to send, in order.
    Replies(Vec<String>),
    /// Reply lines followed by raw bytes sent verbatim (no newline
    /// appended) — a binary `REPL BATCH`/`SNAPSHOT BIN` body.
    RepliesRaw(Vec<String>, Vec<u8>),
    /// Send the line, then close this connection.
    Quit(String),
    /// Send the line, close this connection, and shut the server down.
    Shutdown(String),
}

/// One item of a query `BATCH`.
enum BatchItem {
    Request(CountRequest),
    Sleep(u64),
}

/// The per-connection protocol state machine.
#[derive(Default)]
pub(crate) struct Session {
    /// Collected lines of an open `BATCH … END`, if one is open.
    batch: Option<Vec<String>>,
    /// Whether this connection presented the admin token via `AUTH`.
    authed: bool,
}

/// The `ERR DENIED` reply for an admin verb used without `AUTH`.  The
/// connection stays alive — denial is a reply, not a disconnect.
fn denied(verb: &str) -> String {
    format!("ERR DENIED {verb} requires AUTH on this server")
}

impl Session {
    pub(crate) fn new() -> Self {
        Session::default()
    }

    /// Discards an open `BATCH … END`, if any — the rate limiter calls
    /// this so a throttled connection never commits a half-collected
    /// batch.
    pub(crate) fn abort_batch(&mut self) {
        self.batch = None;
    }

    /// Whether admin verbs are gated off for this connection: a token is
    /// configured and this session has not presented it.
    fn admin_denied<H: EngineHost>(&self, host: &H) -> bool {
        host.admin_token().is_some() && !self.authed
    }

    fn execute_auth<H: EngineHost>(&mut self, host: &H, line: &str) -> String {
        let Some(expected) = host.admin_token() else {
            return "ERR DENIED AUTH is not enabled on this server".to_string();
        };
        let supplied = line.split_whitespace().nth(1).unwrap_or("");
        if supplied == expected {
            self.authed = true;
            "OK AUTH".to_string()
        } else {
            "ERR DENIED bad admin token".to_string()
        }
    }

    /// Feeds one decoded line and says what to send back.
    pub(crate) fn feed<H: EngineHost>(&mut self, host: &H, line: &str) -> Step {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            return Step::Silent;
        }
        let verb = trimmed
            .split_whitespace()
            .next()
            .unwrap_or("")
            .to_ascii_uppercase();
        if self.batch.is_some() {
            return match verb.as_str() {
                "END" => {
                    let lines = self.batch.take().expect("batch is open");
                    let admin_ok = !self.admin_denied(host);
                    execute_batch(host, &lines, admin_ok)
                }
                "BATCH" => {
                    self.batch = None;
                    Step::Replies(vec![
                        "ERR BATCH nested BATCH; the open batch was discarded".to_string()
                    ])
                }
                _ => {
                    let batch = self.batch.as_mut().expect("batch is open");
                    if batch.len() >= host.max_batch_commands() {
                        self.batch = None;
                        Step::Replies(vec![format!(
                            "ERR BATCH batch exceeds {} commands; discarded",
                            host.max_batch_commands()
                        )])
                    } else {
                        batch.push(trimmed.to_string());
                        Step::Silent
                    }
                }
            };
        }
        match verb.as_str() {
            "BATCH" => {
                self.batch = Some(Vec::new());
                Step::Silent
            }
            "END" => Step::Replies(vec!["ERR BATCH END without an open BATCH".to_string()]),
            "STATS" => Step::Replies(vec![host.backend().stats()]),
            "AUTH" => Step::Replies(vec![self.execute_auth(host, trimmed)]),
            "SLEEP" => {
                if self.admin_denied(host) {
                    return Step::Replies(vec![denied("SLEEP")]);
                }
                Step::Replies(vec![execute_sleep(trimmed)])
            }
            "PANIC" if host.chaos() => {
                if self.admin_denied(host) {
                    return Step::Replies(vec![denied("PANIC")]);
                }
                // Crash-recovery regression hook: panic while holding the
                // write-side lock, poisoning it for every later guard.
                host.backend().chaos_panic()
            }
            "QUIT" => Step::Quit("OK BYE".to_string()),
            "REPL" => {
                let reply = host.backend().repl(trimmed, !self.admin_denied(host));
                if reply.raw.is_empty() {
                    Step::Replies(reply.lines)
                } else {
                    Step::RepliesRaw(reply.lines, reply.raw)
                }
            }
            "PROMOTE" => {
                if self.admin_denied(host) {
                    return Step::Replies(vec![denied("PROMOTE")]);
                }
                let operands: Vec<&str> = trimmed.split_whitespace().skip(1).collect();
                let force = match operands.as_slice() {
                    [] => false,
                    [word] if word.eq_ignore_ascii_case("FORCE") => true,
                    _ => {
                        return Step::Replies(vec!["ERR REPL usage: PROMOTE [FORCE]".to_string()]);
                    }
                };
                Step::Replies(vec![host.backend().promote(force)])
            }
            "RETARGET" => {
                if self.admin_denied(host) {
                    return Step::Replies(vec![denied("RETARGET")]);
                }
                Step::Replies(vec![host.backend().retarget(trimmed)])
            }
            "SHUTDOWN" => {
                if self.admin_denied(host) {
                    return Step::Replies(vec![denied("SHUTDOWN")]);
                }
                Step::Shutdown("OK SHUTDOWN".to_string())
            }
            "COMPACT" => {
                let tokens: Vec<&str> = trimmed.split_whitespace().collect();
                if tokens.len() > 1 && tokens[1].eq_ignore_ascii_case("VERBOSE") {
                    execute_compact_verbose(host, &tokens[2..])
                } else {
                    // Bare COMPACT (and malformed operands) go through the
                    // wire parser, preserving its errors.
                    Step::Replies(vec![execute_command(host, trimmed)])
                }
            }
            _ => Step::Replies(vec![execute_command(host, trimmed)]),
        }
    }

    /// Feeds one decoded `BULK` frame body (the bytes after the
    /// `BULK <len>` header line).
    ///
    /// Decoding is all-or-nothing: a defective frame answers a single
    /// `ERR FRAME <why>` line and executes nothing.  A valid frame of
    /// `k` ops answers exactly `k` reply lines, each produced by the
    /// same [`Backend::mutate`] call the textual `INSERT`/`DELETE` path
    /// makes — the byte-identical-replies invariant (including
    /// `gen=`/`cached=` provenance and the follower's `ERR READONLY`)
    /// holds by construction, not by re-rendering.
    ///
    /// A frame arriving inside an open `BATCH … END` discards the batch
    /// and is itself rejected: a batch collects *lines*, and silently
    /// splicing a binary frame into one would blur its atomicity story.
    pub(crate) fn bulk<H: EngineHost>(&mut self, host: &H, frame: &[u8]) -> Step {
        if self.batch.take().is_some() {
            return Step::Replies(vec![reply::frame_error(
                "BULK inside an open BATCH; the batch was discarded",
            )]);
        }
        let db = database_snapshot(host);
        match cdr_core::decode_bulk(frame, &db) {
            Err(e) => Step::Replies(vec![reply::render_frame_error(&e)]),
            Ok(mutations) => {
                let threshold = host.auto_compact_threshold();
                Step::Replies(
                    mutations
                        .into_iter()
                        .map(|m| host.backend().mutate(m, threshold))
                        .collect(),
                )
            }
        }
    }
}

/// `COMPACT VERBOSE [LIMIT <n>]`: compacts, then streams the id
/// translation table as `REMAP <old>-><new>` lines so clients that cached
/// fact ids across the compaction can recover without re-discovery.  The
/// header carries the full remap count; the stream is capped at the limit
/// (ids that did not move are never streamed).
fn execute_compact_verbose<H: EngineHost>(host: &H, rest: &[&str]) -> Step {
    let limit = match rest {
        [] => DEFAULT_REMAP_LIMIT,
        [keyword, n] if keyword.eq_ignore_ascii_case("LIMIT") => match n.parse::<usize>() {
            Ok(n) => n,
            Err(_) => {
                return Step::Replies(vec![format!("ERR PARSE `{n}` is not a remap limit")]);
            }
        },
        _ => {
            return Step::Replies(vec![
                "ERR PARSE usage: COMPACT VERBOSE [LIMIT <n>]".to_string()
            ]);
        }
    };
    let (outcome, total) = match host.backend().compact() {
        Ok(compacted) => compacted,
        Err(refused) => return Step::Replies(vec![refused]),
    };
    let report = &outcome.report;
    let mut remaps: Vec<(usize, usize)> = Vec::new();
    for old in 0..report.fact_ids_before as usize {
        if let Some(new) = report.translate(FactId::new(old)) {
            if new.index() != old {
                remaps.push((old, new.index()));
            }
        }
    }
    let mut lines = Vec::with_capacity(remaps.len().min(limit) + 1);
    lines.push(format!(
        "{} remaps={}",
        reply::render_compaction(&outcome, &total),
        remaps.len()
    ));
    for (old, new) in remaps.iter().take(limit) {
        lines.push(format!("REMAP {old}->{new}"));
    }
    Step::Replies(lines)
}

fn execute_sleep(line: &str) -> String {
    let operand = line.split_whitespace().nth(1).unwrap_or("");
    match operand.parse::<u64>() {
        Ok(ms) if ms <= MAX_SLEEP_MS => {
            thread::sleep(Duration::from_millis(ms));
            format!("OK SLEPT {ms}")
        }
        Ok(ms) => format!("ERR PARSE SLEEP {ms} exceeds the {MAX_SLEEP_MS} ms cap"),
        Err(_) => format!("ERR PARSE `{operand}` is not a sleep duration in ms"),
    }
}

/// Parses against a snapshot of the served database: the schema is fixed
/// at engine construction, so command parsing never needs to hold a lock.
fn database_snapshot<H: EngineHost>(host: &H) -> Arc<Database> {
    host.backend().parse_database()
}

/// Executes one engine command line: queries under shared access,
/// mutations through the backend's write path (the single-lock barrier,
/// or the sharded router).
fn execute_command<H: EngineHost>(host: &H, line: &str) -> String {
    let db = database_snapshot(host);
    let threshold = host.auto_compact_threshold();
    match wire::parse_engine_command(line, &db) {
        Ok(EngineCommand::Query(request)) => match host.backend().run(&request) {
            Ok(report) => reply::render_report(request.semantics(), &report),
            Err(e) => reply::render_count_error(&e),
        },
        Ok(EngineCommand::Mutate(mutation)) => host.backend().mutate(mutation, threshold),
        Ok(EngineCommand::MutateBatch(mutations)) => {
            host.backend().mutate_batch(mutations, threshold)
        }
        Ok(EngineCommand::Compact) => match host.backend().compact() {
            Ok((outcome, total)) => reply::render_compaction(&outcome, &total),
            Err(refused) => refused,
        },
        Err(e) => reply::render_wire_error(&e),
    }
}

/// Executes a closed `BATCH … END`.
///
/// A batch is either *mutations only* — applied atomically through
/// [`RepairEngine::apply_batch`], one aggregated reply — or *queries only*
/// (plus `SLEEP` diagnostics) — admitted through the bounded batch-permit
/// pool and fanned out with [`RepairEngine::run_batch`], one reply line
/// per item after an `OK BATCH <n>` header.  Mixing kinds is an error:
/// the engine's scheduler treats every mutation as a barrier, so a mixed
/// batch has no single atomic meaning.
fn execute_batch<H: EngineHost>(host: &H, lines: &[String], admin_ok: bool) -> Step {
    let db = database_snapshot(host);
    let mut mutations: Vec<Mutation> = Vec::new();
    let mut items: Vec<BatchItem> = Vec::new();
    for line in lines {
        let verb = line
            .split_whitespace()
            .next()
            .unwrap_or("")
            .to_ascii_uppercase();
        let parsed: Result<(), WireError> = match verb.as_str() {
            "INSERT" | "DELETE" => wire::parse_mutation(line, &db).map(|m| mutations.push(m)),
            "SLEEP" => {
                if !admin_ok {
                    return Step::Replies(vec![denied("SLEEP")]);
                }
                match line.split_whitespace().nth(1).unwrap_or("").parse::<u64>() {
                    Ok(ms) if ms <= MAX_SLEEP_MS => {
                        items.push(BatchItem::Sleep(ms));
                        Ok(())
                    }
                    _ => Err(WireError::Syntax {
                        verb: "SLEEP",
                        message: format!("bad duration in `{line}`"),
                    }),
                }
            }
            _ => wire::parse_count_request(line).map(|r| items.push(BatchItem::Request(r))),
        };
        if let Err(e) = parsed {
            return Step::Replies(vec![reply::render_wire_error(&e)]);
        }
    }
    if !mutations.is_empty() && !items.is_empty() {
        return Step::Replies(vec![
            "ERR BATCH a batch must be all mutations or all queries".to_string(),
        ]);
    }
    if !mutations.is_empty() {
        let threshold = host.auto_compact_threshold();
        return Step::Replies(vec![host.backend().mutate_batch(mutations, threshold)]);
    }
    match host.with_batch_permit(|| run_query_batch(host, &items)) {
        Some(mut replies) => {
            let mut lines = Vec::with_capacity(replies.len() + 1);
            lines.push(format!("OK BATCH {}", replies.len()));
            lines.append(&mut replies);
            Step::Replies(lines)
        }
        None => Step::Replies(vec![reply::busy("batch fan-out permits exhausted")]),
    }
}

/// Runs the items of an admitted query batch in order, fanning each
/// maximal run of consecutive requests out through `run_batch`.
fn run_query_batch<H: EngineHost>(host: &H, items: &[BatchItem]) -> Vec<String> {
    let mut replies = Vec::with_capacity(items.len());
    let mut pending: Vec<&CountRequest> = Vec::new();
    let flush = |pending: &mut Vec<&CountRequest>, replies: &mut Vec<String>| {
        if pending.is_empty() {
            return;
        }
        let requests: Vec<CountRequest> = pending.iter().map(|&r| r.clone()).collect();
        let reports = host.backend().run_batch(&requests);
        for (request, report) in requests.iter().zip(reports) {
            replies.push(match report {
                Ok(report) => reply::render_report(request.semantics(), &report),
                Err(e) => reply::render_count_error(&e),
            });
        }
        pending.clear();
    };
    for item in items {
        match item {
            BatchItem::Request(request) => pending.push(request),
            BatchItem::Sleep(ms) => {
                flush(&mut pending, &mut replies);
                thread::sleep(Duration::from_millis(*ms));
                replies.push(format!("OK SLEPT {ms}"));
            }
        }
    }
    flush(&mut pending, &mut replies);
    replies
}

/// A single-threaded reference server: the same parsing, scheduling
/// surface and rendering as the TCP front end, over a bare engine with no
/// sockets, no locks and batch admission always granted.
///
/// Because wire replies are deterministic functions of the engine state
/// and the command sequence (never of wall-clock time), replaying a
/// recorded command interleaving through an `Oracle` reproduces the
/// server's replies byte for byte — the integration tests' ground truth.
///
/// ```
/// use cdr_core::RepairEngine;
/// use cdr_server::Oracle;
/// use cdr_workloads::employee_example;
///
/// let (db, keys) = employee_example();
/// let mut oracle = Oracle::new(RepairEngine::new(db, keys));
/// let replies = oracle.feed("COUNT auto EXISTS n . Employee(2, n, 'IT')");
/// assert!(replies[0].starts_with("OK COUNT 4 "));
/// ```
pub struct Oracle {
    backend: Backend,
    session: Session,
    auto_compact: Option<u64>,
    admin_token: Option<String>,
}

struct OracleHost<'a> {
    backend: &'a Backend,
    auto_compact: Option<u64>,
    admin_token: Option<&'a str>,
}

impl EngineHost for OracleHost<'_> {
    fn backend(&self) -> &Backend {
        self.backend
    }
    fn with_batch_permit<R>(&self, f: impl FnOnce() -> R) -> Option<R> {
        Some(f())
    }
    fn chaos(&self) -> bool {
        false
    }
    fn max_batch_commands(&self) -> usize {
        usize::MAX
    }
    fn auto_compact_threshold(&self) -> Option<u64> {
        self.auto_compact
    }
    fn admin_token(&self) -> Option<&str> {
        self.admin_token
    }
}

impl Oracle {
    /// A reference session over the given engine.
    pub fn new(engine: RepairEngine) -> Self {
        Oracle::over(Backend::single(engine))
    }

    /// A reference session over a sharded engine — the replay ground
    /// truth for `cdr-serve --shards N`, sharing the router and gathered
    /// view code with the live server.
    pub fn sharded(engine: ShardedEngine) -> Self {
        Oracle::over(Backend::sharded(engine))
    }

    /// A reference session over any backend.
    pub fn over(backend: Backend) -> Self {
        Oracle {
            backend,
            session: Session::new(),
            auto_compact: None,
            admin_token: None,
        }
    }

    /// Enables the auto-compaction policy with the given waste threshold —
    /// the oracle-side mirror of `cdr-serve --auto-compact`, so replies
    /// stay byte-comparable against a server running the same policy.
    pub fn with_auto_compact(mut self, threshold: u64) -> Self {
        self.auto_compact = Some(threshold);
        self
    }

    /// Configures the admin token — the oracle-side mirror of
    /// `cdr-serve --admin-token`, gating `SHUTDOWN` and the chaos verbs
    /// behind a per-session `AUTH`.
    pub fn with_admin_token(mut self, token: impl Into<String>) -> Self {
        self.admin_token = Some(token.into());
        self
    }

    /// Executes one wire line, returning the reply lines it produced
    /// (empty for blank lines, comments and open-batch collection).
    pub fn feed(&mut self, line: &str) -> Vec<String> {
        let host = OracleHost {
            backend: &self.backend,
            auto_compact: self.auto_compact,
            admin_token: self.admin_token.as_deref(),
        };
        match self.session.feed(&host, line) {
            Step::Silent => Vec::new(),
            Step::Replies(replies) | Step::RepliesRaw(replies, _) => replies,
            Step::Quit(reply) | Step::Shutdown(reply) => vec![reply],
        }
    }

    /// Executes one `BULK` frame body, returning the reply lines it
    /// produced — one per op on success, a single `ERR FRAME …` line on
    /// a defective frame.  The single-threaded ground truth for the
    /// server's binary ingest path, exactly as [`Oracle::feed`] is for
    /// its line path.
    pub fn feed_bulk(&mut self, frame: &[u8]) -> Vec<String> {
        let host = OracleHost {
            backend: &self.backend,
            auto_compact: self.auto_compact,
            admin_token: self.admin_token.as_deref(),
        };
        match self.session.bulk(&host, frame) {
            Step::Silent => Vec::new(),
            Step::Replies(replies) | Step::RepliesRaw(replies, _) => replies,
            Step::Quit(reply) | Step::Shutdown(reply) => vec![reply],
        }
    }

    /// Shared access to the underlying engine (for end-state assertions).
    /// On a sharded backend this reads the drained gathered view.
    pub fn with_engine<R>(&self, f: impl FnOnce(&RepairEngine) -> R) -> R {
        self.backend.read(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdr_workloads::employee_example;

    fn oracle() -> Oracle {
        let (db, keys) = employee_example();
        Oracle::new(RepairEngine::new(db, keys))
    }

    #[test]
    fn single_command_session() {
        let mut oracle = oracle();
        let replies = oracle.feed("FREQ EXISTS n . Employee(2, n, 'IT')");
        assert_eq!(replies.len(), 1);
        assert!(replies[0].starts_with("OK FREQ 1 "), "{}", replies[0]);
        let replies = oracle.feed("INSERT Employee(2, 'Eve', 'Sales')");
        assert_eq!(
            replies,
            vec!["OK INSERT id=4 applied=1 gen=1 total=6".to_string()]
        );
        let replies = oracle.feed("FREQ EXISTS n . Employee(2, n, 'IT')");
        assert!(replies[0].starts_with("OK FREQ 2/3 "), "{}", replies[0]);
        let replies = oracle.feed("DELETE 4");
        assert_eq!(replies, vec!["OK DELETE id=4 gen=2 total=4".to_string()]);
        // Deleting again is a MISSING error, not a dead session.
        let replies = oracle.feed("DELETE 4");
        assert!(replies[0].starts_with("ERR MISSING "), "{}", replies[0]);
        let replies = oracle.feed("STATS");
        assert!(
            replies[0].starts_with("OK STATS facts=4 ids=5 "),
            "{}",
            replies[0]
        );
    }

    #[test]
    fn blank_lines_and_comments_are_silent() {
        let mut oracle = oracle();
        assert!(oracle.feed("").is_empty());
        assert!(oracle.feed("   ").is_empty());
        assert!(oracle.feed("# comment").is_empty());
    }

    #[test]
    fn mutation_batches_are_atomic() {
        let mut oracle = oracle();
        oracle.feed("BATCH");
        assert!(oracle.feed("INSERT Employee(3, 'Ann', 'IT')").is_empty());
        assert!(oracle.feed("INSERT Employee(3, 'Kim', 'HR')").is_empty());
        let replies = oracle.feed("END");
        assert_eq!(
            replies,
            vec!["OK BATCH applied=2 noops=0 gen=2 total=8".to_string()]
        );
        // A batch with one bad delete changes nothing.
        oracle.feed("BATCH");
        oracle.feed("INSERT Employee(4, 'Joe', 'IT')");
        oracle.feed("DELETE 99");
        let replies = oracle.feed("END");
        assert!(replies[0].starts_with("ERR MISSING "), "{}", replies[0]);
        let stats = oracle.feed("STATS");
        assert!(stats[0].contains("facts=6 "), "{}", stats[0]);
    }

    #[test]
    fn query_batches_reply_per_item_in_order() {
        let mut oracle = oracle();
        oracle.feed("BATCH");
        oracle.feed("COUNT auto EXISTS n . Employee(2, n, 'IT')");
        oracle.feed("CERTAIN EXISTS n . Employee(2, n, 'IT')");
        oracle.feed("DECIDE EXISTS n . Employee(9, n, 'IT')");
        let replies = oracle.feed("END");
        assert_eq!(replies.len(), 4);
        assert_eq!(replies[0], "OK BATCH 3");
        assert!(replies[1].starts_with("OK COUNT 4 "), "{}", replies[1]);
        assert!(replies[2].starts_with("OK CERTAIN true "), "{}", replies[2]);
        assert!(replies[3].starts_with("OK DECIDE false "), "{}", replies[3]);
    }

    #[test]
    fn mixed_batches_and_stray_end_are_errors() {
        let mut oracle = oracle();
        oracle.feed("BATCH");
        oracle.feed("INSERT Employee(3, 'Ann', 'IT')");
        oracle.feed("COUNT auto TRUE");
        let replies = oracle.feed("END");
        assert!(replies[0].starts_with("ERR BATCH "), "{}", replies[0]);
        let replies = oracle.feed("END");
        assert!(replies[0].starts_with("ERR BATCH "), "{}", replies[0]);
        // The failed batch applied nothing.
        assert!(oracle.feed("STATS")[0].contains("facts=4 "));
    }

    #[test]
    fn unknown_verbs_and_parse_errors_keep_the_session_alive() {
        let mut oracle = oracle();
        assert!(oracle.feed("NONSENSE 1 2 3")[0].starts_with("ERR UNKNOWN "));
        assert!(oracle.feed("COUNT warp TRUE")[0].starts_with("ERR PARSE "));
        assert!(oracle.feed("INSERT Unknown(1)")[0].starts_with("ERR RELATION "));
        assert!(oracle.feed("DELETE x")[0].starts_with("ERR PARSE "));
        assert!(oracle.feed("STATS")[0].starts_with("OK STATS "));
    }

    #[test]
    fn quit_replies_bye() {
        let mut oracle = oracle();
        assert_eq!(oracle.feed("QUIT"), vec!["OK BYE".to_string()]);
    }

    #[test]
    fn compact_reclaims_waste_and_reports_deterministically() {
        let mut oracle = oracle();
        oracle.feed("INSERT Employee(9, 'Flux', 'Ops')");
        assert_eq!(
            oracle.feed("DELETE 4"),
            vec!["OK DELETE id=4 gen=2 total=4".to_string()]
        );
        let stats = oracle.feed("STATS");
        assert!(stats[0].contains("ids=5 "), "{}", stats[0]);
        assert!(stats[0].contains("tombstones=1 "), "{}", stats[0]);
        assert!(stats[0].contains("waste=2 "), "{}", stats[0]);
        assert_eq!(
            oracle.feed("COMPACT"),
            vec!["OK COMPACTED facts=4 slots=2 reclaimed=1 gen=3 total=4".to_string()]
        );
        let stats = oracle.feed("STATS");
        assert!(stats[0].contains("ids=4 "), "{}", stats[0]);
        assert!(stats[0].contains("tombstones=0 "), "{}", stats[0]);
        assert!(stats[0].contains("waste=0 "), "{}", stats[0]);
        // Operands are rejected; the session stays alive.
        assert!(oracle.feed("COMPACT now")[0].starts_with("ERR PARSE "));
        assert!(oracle.feed("STATS")[0].starts_with("OK STATS "));
    }

    #[test]
    fn compact_recovers_an_exhausted_session() {
        let (db, keys) = employee_example();
        let mut oracle = Oracle::new(RepairEngine::new(db.with_fact_id_capacity(5), keys));
        oracle.feed("INSERT Employee(3, 'Eve', 'IT')");
        oracle.feed("DELETE 4");
        let replies = oracle.feed("INSERT Employee(3, 'Kim', 'IT')");
        assert!(replies[0].starts_with("ERR EXHAUSTED "), "{}", replies[0]);
        let replies = oracle.feed("COMPACT");
        assert!(replies[0].starts_with("OK COMPACTED "), "{}", replies[0]);
        let replies = oracle.feed("INSERT Employee(3, 'Kim', 'IT')");
        assert_eq!(
            replies,
            vec!["OK INSERT id=4 applied=1 gen=4 total=4".to_string()]
        );
    }

    #[test]
    fn compact_verbose_streams_the_remap_table() {
        let mut oracle = oracle();
        // Tombstone id 1: compaction slides 2->1 and 3->2.
        oracle.feed("DELETE 1");
        let replies = oracle.feed("COMPACT VERBOSE");
        assert!(replies[0].starts_with("OK COMPACTED "), "{}", replies[0]);
        assert!(replies[0].ends_with(" remaps=2"), "{}", replies[0]);
        assert_eq!(replies[1..], ["REMAP 2->1", "REMAP 3->2"]);
        // Nothing moved: an empty stream, not a missing header.
        let replies = oracle.feed("COMPACT VERBOSE");
        assert!(replies[0].ends_with(" remaps=0"), "{}", replies[0]);
        assert_eq!(replies.len(), 1);
    }

    #[test]
    fn compact_verbose_limit_caps_the_stream_not_the_count() {
        let mut oracle = oracle();
        oracle.feed("DELETE 0");
        let replies = oracle.feed("COMPACT VERBOSE LIMIT 1");
        assert!(replies[0].ends_with(" remaps=3"), "{}", replies[0]);
        assert_eq!(replies[1..], ["REMAP 1->0"]);
        oracle.feed("DELETE 0");
        let replies = oracle.feed("compact verbose limit 0");
        assert!(replies[0].ends_with(" remaps=2"), "{}", replies[0]);
        assert_eq!(replies.len(), 1);
    }

    #[test]
    fn compact_verbose_rejects_malformed_operands() {
        let mut oracle = oracle();
        let replies = oracle.feed("COMPACT VERBOSE LIMIT soon");
        assert_eq!(replies, vec!["ERR PARSE `soon` is not a remap limit"]);
        let replies = oracle.feed("COMPACT VERBOSE NOW");
        assert_eq!(
            replies,
            vec!["ERR PARSE usage: COMPACT VERBOSE [LIMIT <n>]"]
        );
        let replies = oracle.feed("COMPACT VERBOSE LIMIT 1 extra");
        assert_eq!(
            replies,
            vec!["ERR PARSE usage: COMPACT VERBOSE [LIMIT <n>]"]
        );
        // A parse error never compacts: the generation is untouched.
        assert!(oracle.feed("STATS")[0].contains(" gen=0 "));
    }

    #[test]
    fn auth_is_denied_when_no_token_is_configured() {
        let mut oracle = oracle();
        let replies = oracle.feed("AUTH whatever");
        assert_eq!(
            replies,
            vec!["ERR DENIED AUTH is not enabled on this server"]
        );
        // Legacy open server: admin verbs still work without AUTH.
        assert_eq!(oracle.feed("SLEEP 0"), vec!["OK SLEPT 0"]);
        assert_eq!(oracle.feed("SHUTDOWN"), vec!["OK SHUTDOWN"]);
    }

    #[test]
    fn admin_verbs_require_auth_when_a_token_is_set() {
        let (db, keys) = employee_example();
        let mut oracle = Oracle::new(RepairEngine::new(db, keys)).with_admin_token("sesame");
        // PANIC is also gated by chaos mode, which the oracle never
        // enables; its AUTH gate is covered by the socket tests.
        for (line, verb) in [("SLEEP 0", "SLEEP"), ("SHUTDOWN", "SHUTDOWN")] {
            assert_eq!(
                oracle.feed(line),
                vec![format!("ERR DENIED {verb} requires AUTH on this server")]
            );
        }
        // Denial is a reply, not a disconnect — and data verbs stay open.
        assert!(oracle.feed("STATS")[0].starts_with("OK STATS "));
        assert!(oracle.feed("COUNT auto TRUE")[0].starts_with("OK COUNT "));
        // A wrong token does not unlock the session.
        assert_eq!(
            oracle.feed("AUTH opensesame"),
            vec!["ERR DENIED bad admin token"]
        );
        assert_eq!(
            oracle.feed("SLEEP 0"),
            vec!["ERR DENIED SLEEP requires AUTH on this server"]
        );
        // The right one does, for the rest of the connection.
        assert_eq!(oracle.feed("AUTH sesame"), vec!["OK AUTH"]);
        assert_eq!(oracle.feed("SLEEP 0"), vec!["OK SLEPT 0"]);
        assert_eq!(oracle.feed("SHUTDOWN"), vec!["OK SHUTDOWN"]);
    }

    #[test]
    fn batch_sleep_is_gated_by_auth() {
        let (db, keys) = employee_example();
        let mut oracle = Oracle::new(RepairEngine::new(db, keys)).with_admin_token("sesame");
        oracle.feed("BATCH");
        oracle.feed("COUNT auto TRUE");
        oracle.feed("SLEEP 0");
        let replies = oracle.feed("END");
        assert_eq!(
            replies,
            vec!["ERR DENIED SLEEP requires AUTH on this server"]
        );
        // Query-only batches never needed admin rights.
        oracle.feed("BATCH");
        oracle.feed("COUNT auto TRUE");
        let replies = oracle.feed("END");
        assert_eq!(replies[0], "OK BATCH 1");
        oracle.feed("AUTH sesame");
        oracle.feed("BATCH");
        oracle.feed("SLEEP 0");
        let replies = oracle.feed("END");
        assert_eq!(replies, vec!["OK BATCH 1", "OK SLEPT 0"]);
    }

    #[test]
    fn sharded_oracle_replies_match_the_single_engine_oracle() {
        let (db, keys) = employee_example();
        let mut single = Oracle::new(RepairEngine::new(db.clone(), keys.clone()));
        let mut sharded = Oracle::sharded(ShardedEngine::new(db, keys, 3));
        let script = [
            "COUNT auto EXISTS n . Employee(2, n, 'IT')",
            "INSERT Employee(2, 'Eve', 'Sales')",
            "FREQ EXISTS n . Employee(2, n, 'IT')",
            "DELETE 4",
            "DELETE 4",
            "BATCH",
            "INSERT Employee(3, 'Ann', 'IT')",
            "INSERT Employee(3, 'Kim', 'HR')",
            "END",
            "DELETE 1",
            "COMPACT VERBOSE",
            "CERTAIN EXISTS n . Employee(2, n, 'IT')",
            "STATS",
        ];
        for line in script {
            let lhs = single.feed(line);
            let rhs = sharded.feed(line);
            if line == "STATS" {
                // The sharded STATS reply is the single reply plus the
                // per-shard gauge tail.
                assert!(rhs[0].starts_with(&lhs[0]), "{} vs {}", lhs[0], rhs[0]);
                assert!(rhs[0].contains(" | shards=3 "), "{}", rhs[0]);
            } else {
                assert_eq!(lhs, rhs, "diverged on `{line}`");
            }
        }
    }

    #[test]
    fn bulk_frames_reply_byte_identically_to_the_textual_lines() {
        let (db, keys) = employee_example();
        let mut textual = Oracle::new(RepairEngine::new(db.clone(), keys.clone()));
        let mut binary = Oracle::new(RepairEngine::new(db.clone(), keys));
        let lines = [
            "INSERT Employee(2, 'Eve', 'Sales')",
            "INSERT Employee(3, 'Ann', 'IT')",
            "DELETE 4",
            "DELETE 4",
            "INSERT Employee(3, 'Ann', 'IT')",
        ];
        let mutations: Vec<_> = lines
            .iter()
            .map(|l| cdr_core::wire::parse_mutation(l, &db).unwrap())
            .collect();
        let frame = cdr_core::encode_bulk(&db, &mutations);
        let mut expected = Vec::new();
        for line in lines {
            expected.extend(textual.feed(line));
        }
        assert_eq!(binary.feed_bulk(&frame), expected);
        assert_eq!(
            binary.feed("STATS"),
            textual.feed("STATS"),
            "final engine state diverged"
        );
    }

    #[test]
    fn a_defective_bulk_frame_executes_nothing() {
        let mut oracle = oracle();
        let replies = oracle.feed_bulk(&[0xDE, 0xAD, 0xBE, 0xEF, 0x01]);
        assert_eq!(replies.len(), 1);
        assert!(replies[0].starts_with("ERR FRAME "), "{}", replies[0]);
        assert!(oracle.feed("STATS")[0].contains(" gen=0 "), "nothing ran");
        // An empty frame is valid and answers nothing at all.
        let empty = {
            let (db, _) = employee_example();
            cdr_core::encode_bulk(&db, &[])
        };
        assert!(oracle.feed_bulk(&empty).is_empty());
    }

    #[test]
    fn a_bulk_frame_discards_an_open_batch() {
        let mut oracle = oracle();
        oracle.feed("BATCH");
        oracle.feed("INSERT Employee(3, 'Ann', 'IT')");
        let frame = {
            let (db, _) = employee_example();
            cdr_core::encode_bulk(&db, &[])
        };
        let replies = oracle.feed_bulk(&frame);
        assert_eq!(
            replies,
            vec!["ERR FRAME BULK inside an open BATCH; the batch was discarded".to_string()]
        );
        // The half-collected batch is gone: END is now a stray.
        assert!(oracle.feed("END")[0].starts_with("ERR BATCH "));
        assert!(oracle.feed("STATS")[0].contains("facts=4 "));
    }

    #[test]
    fn auto_compact_keeps_a_capped_session_alive_indefinitely() {
        let (db, keys) = employee_example();
        let mut oracle =
            Oracle::new(RepairEngine::new(db.with_fact_id_capacity(8), keys)).with_auto_compact(2);
        // 50 insert/delete cycles consume 50 ids against a capacity of 8:
        // without the policy this dies with ERR EXHAUSTED on the 5th.
        for _ in 0..50 {
            let replies = oracle.feed("INSERT Employee(9, 'Flux', 'Ops')");
            assert!(replies[0].starts_with("OK INSERT "), "{}", replies[0]);
            let id = replies[0]
                .strip_prefix("OK INSERT id=")
                .and_then(|r| r.split_whitespace().next())
                .unwrap()
                .to_string();
            let replies = oracle.feed(&format!("DELETE {id}"));
            assert!(replies[0].starts_with("OK DELETE "), "{}", replies[0]);
        }
        let stats = oracle.feed("STATS");
        assert!(stats[0].contains("facts=4 "), "{}", stats[0]);
        oracle.with_engine(|engine| {
            assert!(engine.waste() <= 2, "the policy bounds the waste");
            assert!(engine.database().fact_ids_assigned() <= 8);
        });
    }
}
