//! Rendering engine results and errors as single-line wire replies.
//!
//! Replies are deterministic functions of the engine's state and the
//! command sequence — durations and other wall-clock provenance never
//! appear on the wire — so a concurrent server session can be checked
//! reply-for-reply against an [`Oracle`](crate::Oracle) replay.

use cdr_core::{
    Answer, CompactionOutcome, CountError, CountReport, MutationReport, RepairEngine, Semantics,
    WireError,
};
use cdr_num::BigNat;
use cdr_repairdb::{DbError, FactId};

/// Collapses an error message onto one bounded line so a multi-line or
/// hostile message cannot break the line protocol.
fn single_line(message: &str) -> String {
    let mut out: String = message
        .chars()
        .map(|c| if c.is_control() { ' ' } else { c })
        .collect();
    const MAX: usize = 300;
    if out.chars().count() > MAX {
        out = out.chars().take(MAX).collect::<String>() + "…";
    }
    out
}

/// The wire error code of a counting-layer error.
pub fn error_code(error: &CountError) -> &'static str {
    match error {
        CountError::Query(_) => "QUERY",
        CountError::Db(db) => match db {
            DbError::UnknownRelation(_) => "RELATION",
            DbError::ArityMismatch { .. } => "ARITY",
            DbError::MissingFact(_) => "MISSING",
            DbError::FactIdsExhausted { .. } => "EXHAUSTED",
            DbError::Parse(_) => "PARSE",
            _ => "DB",
        },
        CountError::ExactBudgetExceeded { .. } => "BUDGET",
        CountError::InvalidApproxParameter(_) => "APPROX",
        CountError::UnsupportedStrategy { .. } => "STRATEGY",
    }
}

/// Renders a counting-layer error as an `ERR <code> <message>` reply.
pub fn render_count_error(error: &CountError) -> String {
    format!(
        "ERR {} {}",
        error_code(error),
        single_line(&error.to_string())
    )
}

/// Renders a wire parse error as an `ERR <code> <message>` reply.
pub fn render_wire_error(error: &WireError) -> String {
    let code = match error {
        WireError::Empty => "EMPTY",
        WireError::UnknownVerb(_) => "UNKNOWN",
        WireError::Syntax { .. } | WireError::UnknownStrategy(_) => "PARSE",
        WireError::Count(inner) => error_code(inner),
    };
    format!("ERR {code} {}", single_line(&error.to_string()))
}

/// The `SERVER BUSY` backpressure reply.
pub(crate) fn busy(what: &str) -> String {
    format!("ERR BUSY SERVER BUSY: {what}")
}

/// The deterministic per-connection rate-limit rejection.  One exact
/// string, so throttled clients can match on it.
pub(crate) const RATE_LIMITED: &str = "ERR BUSY RATE LIMITED";

/// The refusal a replicated follower answers to a mutating verb.
pub(crate) fn readonly(verb: &str) -> String {
    format!("ERR READONLY {verb} is not served by a follower; write to the primary")
}

/// The refusal a deposed primary answers to a mutating verb after epoch
/// fencing: a strictly newer epoch was announced over `REPL HELLO`, so
/// accepting this write would be split-brain.  One exact prefix
/// (`ERR FENCED epoch=<e>`) so clients and the supervisor can match it.
pub(crate) fn fenced(verb: &str, epoch: u64) -> String {
    format!("ERR FENCED epoch={epoch} {verb} refused; a newer primary was promoted")
}

/// Renders a bulk-frame defect as the single `ERR FRAME <why>` reply the
/// whole (unexecuted) frame gets.
pub(crate) fn frame_error(why: &str) -> String {
    format!("ERR FRAME {}", single_line(why))
}

/// Renders a [`FrameError`](cdr_core::FrameError) from the bulk decoder.
pub(crate) fn render_frame_error(error: &cdr_core::FrameError) -> String {
    frame_error(&error.to_string())
}

pub(crate) fn render_report(semantics: &Semantics, report: &CountReport) -> String {
    let provenance = format!(
        "strategy={:?} cached={} gen={}",
        report.strategy,
        u8::from(report.plan_cached),
        report.generation
    );
    match (semantics, &report.answer) {
        (Semantics::Exact, Answer::Count(count)) => format!("OK COUNT {count} {provenance}"),
        (Semantics::Decision, Answer::Decision(holds)) => {
            format!("OK DECIDE {holds} {provenance}")
        }
        (Semantics::CertainAnswer, Answer::Decision(holds)) => {
            format!("OK CERTAIN {holds} {provenance}")
        }
        (Semantics::Frequency, Answer::Frequency(ratio)) => {
            format!("OK FREQ {ratio} {provenance}")
        }
        (Semantics::Approximate { .. }, Answer::Estimate(estimate)) => format!(
            "OK APPROX {} samples={}/{} exact={} {provenance}",
            estimate.estimate,
            report.samples_used,
            report.samples_requested,
            u8::from(estimate.exact),
        ),
        // The engine always pairs semantics with the matching answer kind;
        // render something inspectable rather than panicking a worker.
        (_, answer) => format!("OK ANSWER {answer:?} {provenance}"),
    }
}

pub(crate) fn render_insert(
    id: FactId,
    applied: bool,
    report: &MutationReport,
    total: &BigNat,
) -> String {
    format!(
        "OK INSERT id={} applied={} gen={} total={total}",
        id.index(),
        u8::from(applied),
        report.generation
    )
}

pub(crate) fn render_delete(id: FactId, report: &MutationReport, total: &BigNat) -> String {
    format!(
        "OK DELETE id={} gen={} total={total}",
        id.index(),
        report.generation
    )
}

pub(crate) fn render_batch_mutation(report: &MutationReport, total: &BigNat) -> String {
    format!(
        "OK BATCH applied={} noops={} gen={} total={total}",
        report.applied, report.noops, report.generation
    )
}

pub(crate) fn render_compaction(outcome: &CompactionOutcome, total: &BigNat) -> String {
    format!(
        "OK COMPACTED facts={} slots={} reclaimed={} gen={} total={total}",
        outcome.report.live_facts,
        outcome.slots_after,
        outcome.report.ids_reclaimed(),
        outcome.generation
    )
}

/// Renders the `STATS` gauges.  Besides the block/total/generation
/// overview, operators get the fact-id consumption (`ids` of `cap`, so
/// exhaustion is visible *before* `ERR EXHAUSTED`) and the reclaimable
/// waste a `COMPACT` would recover (`tombstones`, retired slots inside
/// `slots`, and the combined `waste` gauge the `--auto-compact` policy
/// watches).
pub(crate) fn render_stats(engine: &RepairEngine) -> String {
    let db = engine.database();
    let blocks = engine.blocks();
    format!(
        "OK STATS facts={} ids={} cap={} tombstones={} blocks={} slots={} conflicts={} \
         waste={} total={} gen={} | {}",
        db.len(),
        db.fact_ids_assigned(),
        db.fact_id_capacity(),
        db.tombstone_count(),
        blocks.len(),
        blocks.slot_count(),
        blocks.conflicting_block_count(),
        engine.waste(),
        engine.total_repairs(),
        engine.generation(),
        engine.cache_stats()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdr_query::QueryError;

    #[test]
    fn error_replies_carry_codes_and_stay_on_one_line() {
        let err = CountError::Db(DbError::FactIdsExhausted { capacity: 9 });
        let line = render_count_error(&err);
        assert!(line.starts_with("ERR EXHAUSTED "), "{line}");
        assert!(!line.contains('\n'));

        let err = CountError::Query(QueryError::Parse("bad\nmulti\nline".into()));
        let line = render_count_error(&err);
        assert!(line.starts_with("ERR QUERY "), "{line}");
        assert!(!line.contains('\n'), "{line}");

        let err = WireError::UnknownVerb("NONSENSE".into());
        let line = render_wire_error(&err);
        assert!(line.starts_with("ERR UNKNOWN "), "{line}");

        let long = "x".repeat(1000);
        let err = WireError::Syntax {
            verb: "INSERT",
            message: long,
        };
        let line = render_wire_error(&err);
        assert!(
            line.len() < 400,
            "long messages are truncated: {}",
            line.len()
        );
    }

    #[test]
    fn busy_replies_name_server_busy() {
        let line = busy("batch queue full");
        assert!(line.starts_with("ERR BUSY SERVER BUSY"), "{line}");
    }
}
