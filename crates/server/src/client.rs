//! A minimal blocking client for the line protocol, used by the
//! integration tests, the `cdr-replay` smoke binary and the examples.
//!
//! Connections are direct by default; callers that expect a flaky or
//! recovering peer (a supervisor probing a dead primary, `cdr-replay
//! --retry` riding through a failover) opt into [`RetryPolicy`] — a
//! bounded, deterministic capped-exponential backoff schedule with
//! seeded jitter, so two runs against the same failure pattern retry at
//! the same instants.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A bounded retry schedule for [`Client::connect_with_retry`]: capped
/// exponential backoff from `base`, plus up to a quarter of the delay in
/// jitter drawn from a ChaCha8 stream seeded with `seed` — fully
/// deterministic, so tests can replay the exact schedule.
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Connection attempts before giving up (at least 1).
    pub attempts: u32,
    /// Delay before the second attempt; later delays double, capped.
    pub base: Duration,
    /// Hard cap on one backoff delay, jitter excluded.
    pub cap: Duration,
    /// Seed of the jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 8,
            base: Duration::from_millis(25),
            cap: Duration::from_secs(2),
            seed: 0xc11e_4e7e,
        }
    }
}

impl RetryPolicy {
    /// The delay slept after failed attempt `n` (0-based): `base * 2^n`
    /// capped at `cap`, plus jitter up to a quarter of that.
    pub fn delay(&self, n: u32, rng: &mut ChaCha8Rng) -> Duration {
        let doublings = n.min(16);
        let base = self.base.saturating_mul(1u32 << doublings).min(self.cap);
        let jitter_budget = (base.as_millis() as u64 / 4).max(1);
        base + Duration::from_millis(rng.gen_range(0..jitter_budget))
    }
}

/// One connection to a `cdr-server`.
pub struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects, with a 30-second read timeout so a wedged server fails a
    /// test instead of hanging it.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        Client::connect_timeout_opts(addr, None, Some(Duration::from_secs(30)))
    }

    /// Connects with explicit connect/read deadlines.  A `connect`
    /// deadline of `None` blocks on the OS default; a `read` deadline of
    /// `None` blocks forever (only sensible for interactive use).
    pub fn connect_timeout_opts(
        addr: impl ToSocketAddrs,
        connect: Option<Duration>,
        read: Option<Duration>,
    ) -> io::Result<Client> {
        let stream = match connect {
            Some(deadline) => {
                let mut last = io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "address resolved to no socket addresses",
                );
                let mut connected = None;
                for resolved in addr.to_socket_addrs()? {
                    match TcpStream::connect_timeout(&resolved, deadline) {
                        Ok(stream) => {
                            connected = Some(stream);
                            break;
                        }
                        Err(e) => last = e,
                    }
                }
                match connected {
                    Some(stream) => stream,
                    None => return Err(last),
                }
            }
            None => TcpStream::connect(addr)?,
        };
        stream.set_nodelay(true)?;
        stream.set_read_timeout(read)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client { stream, reader })
    }

    /// Connects under a [`RetryPolicy`]: up to `policy.attempts` tries,
    /// sleeping the deterministic backoff schedule between failures.
    /// Returns the last connect error when every attempt fails.
    pub fn connect_with_retry(
        addr: SocketAddr,
        connect: Option<Duration>,
        read: Option<Duration>,
        policy: &RetryPolicy,
    ) -> io::Result<Client> {
        let mut rng = ChaCha8Rng::seed_from_u64(policy.seed);
        let attempts = policy.attempts.max(1);
        let mut last = None;
        for n in 0..attempts {
            match Client::connect_timeout_opts(addr, connect, read) {
                Ok(client) => return Ok(client),
                Err(e) => last = Some(e),
            }
            if n + 1 < attempts {
                std::thread::sleep(policy.delay(n, &mut rng));
            }
        }
        Err(last.expect("at least one attempt ran"))
    }

    /// Sends one command line (the newline is added here).
    pub fn send_line(&mut self, line: &str) -> io::Result<()> {
        self.stream.write_all(line.as_bytes())?;
        self.stream.write_all(b"\n")
    }

    /// Sends raw bytes verbatim — for tests exercising partial writes and
    /// malformed framing.
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.stream.write_all(bytes)
    }

    /// Reads one reply line (newline stripped).  EOF is an error: the
    /// protocol always replies to a command unless the peer vanished.
    pub fn read_line(&mut self) -> io::Result<String> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }

    /// Reads exactly `len` raw bytes — the body of a binary reply whose
    /// header line announced its length.  Must go through the same
    /// buffered reader as [`Client::read_line`]: the buffer may already
    /// hold bytes past the header.
    pub fn read_exact(&mut self, len: usize) -> io::Result<Vec<u8>> {
        let mut bytes = vec![0u8; len];
        self.reader.read_exact(&mut bytes)?;
        Ok(bytes)
    }

    /// Sends one command and reads its single-line reply.
    pub fn send(&mut self, line: &str) -> io::Result<String> {
        self.send_line(line)?;
        self.read_line()
    }

    /// Sends a `BATCH … END` and reads the framed replies: the header
    /// line first, then — when the header is `OK BATCH <n>` — the `n`
    /// per-item lines.  An error or busy reply comes back as the single
    /// header line.
    pub fn send_batch(&mut self, items: &[&str]) -> io::Result<Vec<String>> {
        self.send_line("BATCH")?;
        for item in items {
            self.send_line(item)?;
        }
        self.send_line("END")?;
        let header = self.read_line()?;
        let mut replies = vec![header];
        if let Some(n) = replies[0]
            .strip_prefix("OK BATCH ")
            .and_then(|rest| rest.parse::<usize>().ok())
        {
            for _ in 0..n {
                replies.push(self.read_line()?);
            }
        }
        Ok(replies)
    }

    /// Sends one binary bulk frame (`BULK <len>` header plus the frame
    /// bytes) and reads its replies: one line per op in the frame, or
    /// the single `ERR FRAME …` line for a rejected frame.
    ///
    /// `ops` must be the op count the frame encodes — the caller built
    /// the frame, so it knows.  On an `ERR` first line the remaining
    /// `ops - 1` reads are skipped (a rejected frame answers once).
    pub fn send_bulk(&mut self, frame: &[u8], ops: usize) -> io::Result<Vec<String>> {
        self.send_line(&format!("BULK {}", frame.len()))?;
        self.stream.write_all(frame)?;
        let mut replies = Vec::with_capacity(ops);
        for i in 0..ops {
            let line = self.read_line()?;
            let rejected = i == 0 && line.starts_with("ERR FRAME ");
            replies.push(line);
            if rejected {
                break;
            }
        }
        Ok(replies)
    }

    /// The underlying stream (for shutdown/linger tweaks in tests).
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The retry delay schedule is a pure function of the policy: two
    /// seeded replays agree, delays grow from `base` and saturate at
    /// `cap` (plus the bounded jitter).
    #[test]
    fn retry_delays_are_deterministic_and_capped() {
        let policy = RetryPolicy {
            attempts: 10,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(500),
            seed: 42,
        };
        let mut a = ChaCha8Rng::seed_from_u64(policy.seed);
        let mut b = ChaCha8Rng::seed_from_u64(policy.seed);
        let schedule: Vec<Duration> = (0..10).map(|n| policy.delay(n, &mut a)).collect();
        let replay: Vec<Duration> = (0..10).map(|n| policy.delay(n, &mut b)).collect();
        assert_eq!(schedule, replay);
        assert!(schedule[0] >= Duration::from_millis(10));
        assert!(schedule[0] < schedule[4], "delays grow");
        for delay in &schedule {
            assert!(*delay <= Duration::from_millis(500 + 125 + 1), "{delay:?}");
        }
    }

    /// Exhausting the attempts against a dead port surfaces the last
    /// connect error instead of hanging.
    #[test]
    fn connect_with_retry_gives_up_after_the_budget() {
        // Bind then drop a listener so the port is very likely dead.
        let dead = {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap()
        };
        let policy = RetryPolicy {
            attempts: 2,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(2),
            seed: 7,
        };
        let err = Client::connect_with_retry(
            dead,
            Some(Duration::from_millis(200)),
            Some(Duration::from_secs(1)),
            &policy,
        );
        assert!(err.is_err(), "a dropped listener refuses connections");
    }
}
