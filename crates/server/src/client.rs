//! A minimal blocking client for the line protocol, used by the
//! integration tests, the `cdr-replay` smoke binary and the examples.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// One connection to a `cdr-server`.
pub struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects, with a 30-second read timeout so a wedged server fails a
    /// test instead of hanging it.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client { stream, reader })
    }

    /// Sends one command line (the newline is added here).
    pub fn send_line(&mut self, line: &str) -> io::Result<()> {
        self.stream.write_all(line.as_bytes())?;
        self.stream.write_all(b"\n")
    }

    /// Sends raw bytes verbatim — for tests exercising partial writes and
    /// malformed framing.
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.stream.write_all(bytes)
    }

    /// Reads one reply line (newline stripped).  EOF is an error: the
    /// protocol always replies to a command unless the peer vanished.
    pub fn read_line(&mut self) -> io::Result<String> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }

    /// Sends one command and reads its single-line reply.
    pub fn send(&mut self, line: &str) -> io::Result<String> {
        self.send_line(line)?;
        self.read_line()
    }

    /// Sends a `BATCH … END` and reads the framed replies: the header
    /// line first, then — when the header is `OK BATCH <n>` — the `n`
    /// per-item lines.  An error or busy reply comes back as the single
    /// header line.
    pub fn send_batch(&mut self, items: &[&str]) -> io::Result<Vec<String>> {
        self.send_line("BATCH")?;
        for item in items {
            self.send_line(item)?;
        }
        self.send_line("END")?;
        let header = self.read_line()?;
        let mut replies = vec![header];
        if let Some(n) = replies[0]
            .strip_prefix("OK BATCH ")
            .and_then(|rest| rest.parse::<usize>().ok())
        {
            for _ in 0..n {
                replies.push(self.read_line()?);
            }
        }
        Ok(replies)
    }

    /// Sends one binary bulk frame (`BULK <len>` header plus the frame
    /// bytes) and reads its replies: one line per op in the frame, or
    /// the single `ERR FRAME …` line for a rejected frame.
    ///
    /// `ops` must be the op count the frame encodes — the caller built
    /// the frame, so it knows.  On an `ERR` first line the remaining
    /// `ops - 1` reads are skipped (a rejected frame answers once).
    pub fn send_bulk(&mut self, frame: &[u8], ops: usize) -> io::Result<Vec<String>> {
        self.send_line(&format!("BULK {}", frame.len()))?;
        self.stream.write_all(frame)?;
        let mut replies = Vec::with_capacity(ops);
        for i in 0..ops {
            let line = self.read_line()?;
            let rejected = i == 0 && line.starts_with("ERR FRAME ");
            replies.push(line);
            if rejected {
                break;
            }
        }
        Ok(replies)
    }

    /// The underlying stream (for shutdown/linger tweaks in tests).
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }
}
