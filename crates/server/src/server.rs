//! The listener: a bounded worker pool serving thread-per-connection.

use std::collections::VecDeque;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use cdr_core::{RepairEngine, ShardedEngine};

use crate::backend::Backend;
use crate::conn::handle_connection;
use crate::replication::{ReplicatedBackend, TailOutcome};
use crate::scheduler::Shared;
use crate::{reply, ServerConfig};

/// Counters a [`Server`] accumulates over its lifetime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted (including ones refused for backlog overflow).
    pub connections: u64,
    /// Command lines received across all connections.
    pub commands: u64,
    /// `SERVER BUSY` replies sent (batch permits or backlog exhausted).
    pub busy_rejections: u64,
    /// Worker panics caught and recovered from.
    pub recovered_panics: u64,
}

/// The bounded queue of accepted connections awaiting a worker.
#[derive(Default)]
struct ConnQueue {
    queue: Mutex<VecDeque<TcpStream>>,
    ready: Condvar,
}

/// A running line-protocol server over one [`RepairEngine`].
///
/// ```no_run
/// use cdr_core::RepairEngine;
/// use cdr_server::{client::Client, Server, ServerConfig};
/// use cdr_workloads::employee_example;
///
/// let (db, keys) = employee_example();
/// let server = Server::start(RepairEngine::new(db, keys), ServerConfig::default()).unwrap();
/// let mut client = Client::connect(server.addr()).unwrap();
/// let reply = client.send("COUNT auto EXISTS n . Employee(2, n, 'IT')").unwrap();
/// assert!(reply.starts_with("OK COUNT 4 "));
/// server.shutdown();
/// server.join();
/// ```
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `config.addr` (port 0 picks an ephemeral port), spawns the
    /// worker pool and the accept loop, and returns the running server.
    pub fn start(engine: RepairEngine, config: ServerConfig) -> std::io::Result<Server> {
        Server::start_backend(Backend::single(engine), config)
    }

    /// Like [`Server::start`], but serves from a sharded scatter–gather
    /// engine: mutations route to their hash-owned shard, queries run on
    /// the gathered view, and replies stay byte-identical to the
    /// single-engine server fed the same command sequence.
    pub fn start_sharded(engine: ShardedEngine, config: ServerConfig) -> std::io::Result<Server> {
        Server::start_backend(Backend::sharded(engine), config)
    }

    /// Like [`Server::start`], but serves a replicated backend — a
    /// primary over a `--log-dir`, or a bootstrapped follower.  A
    /// follower additionally runs the tailer thread, which keeps pulling
    /// records from the upstream until promotion or shutdown.
    pub fn start_replicated(
        backend: ReplicatedBackend,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        Server::start_backend(Backend::replicated(backend), config)
    }

    fn start_backend(backend: Backend, config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let worker_count = config.workers.max(1);
        let shared = Arc::new(Shared::new(backend, config, addr));
        let queue = Arc::new(ConnQueue::default());

        let mut workers: Vec<JoinHandle<()>> = (0..worker_count)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let queue = Arc::clone(&queue);
                std::thread::Builder::new()
                    .name(format!("cdr-server-worker-{i}"))
                    .spawn(move || worker_loop(&shared, &queue))
                    .expect("spawning a worker thread")
            })
            .collect();

        {
            use crate::session::EngineHost;
            let is_follower = shared
                .backend()
                .replication()
                .is_some_and(|repl| repl.role() == crate::replication::Role::Follower);
            if is_follower {
                let shared = Arc::clone(&shared);
                let tailer = std::thread::Builder::new()
                    .name("cdr-server-tailer".to_string())
                    .spawn(move || tailer_loop(&shared))
                    .expect("spawning the tailer thread");
                workers.push(tailer);
            }
        }

        let accept_thread = {
            let shared = Arc::clone(&shared);
            let queue = Arc::clone(&queue);
            std::thread::Builder::new()
                .name("cdr-server-accept".to_string())
                .spawn(move || accept_loop(&shared, &queue, listener))
                .expect("spawning the accept thread")
        };

        Ok(Server {
            addr,
            shared,
            accept_thread: Some(accept_thread),
            workers,
        })
    }

    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A snapshot of the server's counters.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            connections: self.shared.connections.load(Ordering::Relaxed),
            commands: self.shared.commands.load(Ordering::Relaxed),
            busy_rejections: self.shared.busy_rejections.load(Ordering::Relaxed),
            recovered_panics: self.shared.recovered_panics.load(Ordering::Relaxed),
        }
    }

    /// Initiates shutdown: the accept loop stops, workers drain their
    /// queue and idle connections close at the next poll tick.  Clients
    /// can trigger the same path with the `SHUTDOWN` command.
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Waits for every server thread to exit and returns the final
    /// counters.  Call [`Server::shutdown`] (or have a client send
    /// `SHUTDOWN`) first, or this blocks until one does.
    pub fn join(mut self) -> ServerStats {
        if let Some(accept) = self.accept_thread.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        self.stats()
    }
}

/// The follower's replication pump: pull records from the upstream until
/// the server shuts down or this node is promoted.  A panic inside one
/// iteration is counted and recovered like a connection handler panic —
/// the pump never dies while the node is still a follower.
fn tailer_loop(shared: &Shared) {
    use crate::session::EngineHost;
    while !shared.shutting_down() {
        let Some(repl) = shared.backend().replication() else {
            return;
        };
        match catch_unwind(AssertUnwindSafe(|| repl.tail_once())) {
            Ok(TailOutcome::Progress) => continue,
            Ok(TailOutcome::Idle) => std::thread::sleep(shared.config.poll_interval),
            Ok(TailOutcome::Promoted) => return,
            Err(_) => {
                shared.recovered_panics.fetch_add(1, Ordering::Relaxed);
                eprintln!("cdr-server: tailer recovered from a panic");
                std::thread::sleep(shared.config.poll_interval);
            }
        }
    }
}

fn accept_loop(shared: &Shared, queue: &ConnQueue, listener: TcpListener) {
    for stream in listener.incoming() {
        if shared.shutting_down() {
            break;
        }
        let Ok(stream) = stream else { continue };
        shared.connections.fetch_add(1, Ordering::Relaxed);
        let mut q = queue
            .queue
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if q.len() >= shared.config.backlog {
            drop(q);
            shared.busy_rejections.fetch_add(1, Ordering::Relaxed);
            let mut stream = stream;
            let _ = stream.write_all(
                format!("{}\n", reply::busy("connection backlog full, retry later")).as_bytes(),
            );
            continue;
        }
        q.push_back(stream);
        drop(q);
        queue.ready.notify_one();
    }
    queue.ready.notify_all();
}

fn worker_loop(shared: &Shared, queue: &ConnQueue) {
    loop {
        let job = {
            let mut q = queue
                .queue
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            loop {
                if let Some(stream) = q.pop_front() {
                    break Some(stream);
                }
                if shared.shutting_down() {
                    break None;
                }
                // A timed wait doubles as the shutdown poll, so workers
                // never need an explicit wake-up to exit.
                let (guard, _) = queue
                    .ready
                    .wait_timeout(q, shared.config.poll_interval)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
                q = guard;
            }
        };
        let Some(stream) = job else { break };
        // A panicking handler loses its connection, never its worker: the
        // panic is counted, the engine lock is poison-recovered by the
        // next guard, and the worker moves on to the next connection.
        let caught = catch_unwind(AssertUnwindSafe(|| handle_connection(shared, stream)));
        if caught.is_err() {
            shared.recovered_panics.fetch_add(1, Ordering::Relaxed);
            eprintln!("cdr-server: worker recovered from a connection handler panic");
        }
    }
}
