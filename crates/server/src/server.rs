//! The server handle: one reactor thread over every socket, a bounded
//! worker pool executing commands.

use std::net::{SocketAddr, TcpListener};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;

use cdr_core::{RepairEngine, ShardedEngine};
use cdr_reactor::Waker;

use crate::backend::Backend;
use crate::event_loop::{reactor_loop, worker_loop, JobQueue};
use crate::replication::{ReplicatedBackend, TailOutcome};
use crate::scheduler::Shared;
use crate::ServerConfig;

/// Counters a [`Server`] accumulates over its lifetime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections: u64,
    /// Commands received across all connections (one per line, one per
    /// bulk frame).
    pub commands: u64,
    /// `ERR BUSY` replies sent (batch permits exhausted or rate limit).
    pub busy_rejections: u64,
    /// Worker panics caught and recovered from.
    pub recovered_panics: u64,
}

/// A running line-protocol server over one [`RepairEngine`].
///
/// ```no_run
/// use cdr_core::RepairEngine;
/// use cdr_server::{client::Client, Server, ServerConfig};
/// use cdr_workloads::employee_example;
///
/// let (db, keys) = employee_example();
/// let server = Server::start(RepairEngine::new(db, keys), ServerConfig::default()).unwrap();
/// let mut client = Client::connect(server.addr()).unwrap();
/// let reply = client.send("COUNT auto EXISTS n . Employee(2, n, 'IT')").unwrap();
/// assert!(reply.starts_with("OK COUNT 4 "));
/// server.shutdown();
/// server.join();
/// ```
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    reactor_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `config.addr` (port 0 picks an ephemeral port), spawns the
    /// worker pool and the reactor thread, and returns the running
    /// server.
    pub fn start(engine: RepairEngine, config: ServerConfig) -> std::io::Result<Server> {
        Server::start_backend(Backend::single(engine), config)
    }

    /// Like [`Server::start`], but serves from a sharded scatter–gather
    /// engine: mutations route to their hash-owned shard, queries run on
    /// the gathered view, and replies stay byte-identical to the
    /// single-engine server fed the same command sequence.
    pub fn start_sharded(engine: ShardedEngine, config: ServerConfig) -> std::io::Result<Server> {
        Server::start_backend(Backend::sharded(engine), config)
    }

    /// Like [`Server::start`], but serves a replicated backend — a
    /// primary over a `--log-dir`, or a bootstrapped follower.  A
    /// follower additionally runs the tailer thread, which keeps pulling
    /// records from the upstream until promotion or shutdown.
    pub fn start_replicated(
        backend: ReplicatedBackend,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        Server::start_backend(Backend::replicated(backend), config)
    }

    fn start_backend(backend: Backend, config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let waker = Waker::new()?;
        let worker_count = config.workers.max(1);
        let shared = Arc::new(Shared::new(backend, config, waker));
        let jobs = Arc::new(JobQueue::default());

        let mut workers: Vec<JoinHandle<()>> = (0..worker_count)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let jobs = Arc::clone(&jobs);
                std::thread::Builder::new()
                    .name(format!("cdr-server-worker-{i}"))
                    .spawn(move || worker_loop(&shared, &jobs))
                    .expect("spawning a worker thread")
            })
            .collect();

        {
            use crate::session::EngineHost;
            let is_follower = shared
                .backend()
                .replication()
                .is_some_and(|repl| repl.role() == crate::replication::Role::Follower);
            if is_follower {
                let shared = Arc::clone(&shared);
                let tailer = std::thread::Builder::new()
                    .name("cdr-server-tailer".to_string())
                    .spawn(move || tailer_loop(&shared))
                    .expect("spawning the tailer thread");
                workers.push(tailer);
            }
        }

        let reactor_thread = {
            let shared = Arc::clone(&shared);
            let jobs = Arc::clone(&jobs);
            std::thread::Builder::new()
                .name("cdr-server-reactor".to_string())
                .spawn(move || reactor_loop(&shared, listener, &jobs))
                .expect("spawning the reactor thread")
        };

        Ok(Server {
            addr,
            shared,
            reactor_thread: Some(reactor_thread),
            workers,
        })
    }

    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A snapshot of the server's counters.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            connections: self.shared.connections.load(Ordering::Relaxed),
            commands: self.shared.commands.load(Ordering::Relaxed),
            busy_rejections: self.shared.busy_rejections.load(Ordering::Relaxed),
            recovered_panics: self.shared.recovered_panics.load(Ordering::Relaxed),
        }
    }

    /// Initiates shutdown: the reactor stops accepting and reading,
    /// flushes pending replies (bounded by a grace period), and workers
    /// drain their queue.  Clients can trigger the same path with the
    /// `SHUTDOWN` command.
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Waits for every server thread to exit and returns the final
    /// counters.  Call [`Server::shutdown`] (or have a client send
    /// `SHUTDOWN`) first, or this blocks until one does.
    pub fn join(mut self) -> ServerStats {
        if let Some(reactor) = self.reactor_thread.take() {
            let _ = reactor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        self.stats()
    }
}

/// The follower's replication pump: pull records from the upstream until
/// the server shuts down or this node is promoted.  A panic inside one
/// iteration is counted and recovered like a command handler panic —
/// the pump never dies while the node is still a follower.
fn tailer_loop(shared: &Shared) {
    use crate::session::EngineHost;
    while !shared.shutting_down() {
        let Some(repl) = shared.backend().replication() else {
            return;
        };
        match catch_unwind(AssertUnwindSafe(|| repl.tail_once())) {
            Ok(TailOutcome::Progress) => continue,
            Ok(TailOutcome::Idle) => std::thread::sleep(shared.config.poll_interval),
            Ok(TailOutcome::Promoted) => return,
            Err(_) => {
                shared.recovered_panics.fetch_add(1, Ordering::Relaxed);
                eprintln!("cdr-server: tailer recovered from a panic");
                std::thread::sleep(shared.config.poll_interval);
            }
        }
    }
}
