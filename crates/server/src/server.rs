//! The server handle: one reactor thread over every socket, a bounded
//! worker pool executing commands.

use std::net::{SocketAddr, TcpListener};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use cdr_core::{RepairEngine, ShardedEngine};
use cdr_reactor::Waker;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::backend::Backend;
use crate::event_loop::{reactor_loop, worker_loop, JobQueue};
use crate::replication::{ReplicatedBackend, TailOutcome};
use crate::scheduler::Shared;
use crate::ServerConfig;

/// Counters a [`Server`] accumulates over its lifetime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections: u64,
    /// Commands received across all connections (one per line, one per
    /// bulk frame).
    pub commands: u64,
    /// `ERR BUSY` replies sent (batch permits exhausted or rate limit).
    pub busy_rejections: u64,
    /// Worker panics caught and recovered from.
    pub recovered_panics: u64,
}

/// A running line-protocol server over one [`RepairEngine`].
///
/// ```no_run
/// use cdr_core::RepairEngine;
/// use cdr_server::{client::Client, Server, ServerConfig};
/// use cdr_workloads::employee_example;
///
/// let (db, keys) = employee_example();
/// let server = Server::start(RepairEngine::new(db, keys), ServerConfig::default()).unwrap();
/// let mut client = Client::connect(server.addr()).unwrap();
/// let reply = client.send("COUNT auto EXISTS n . Employee(2, n, 'IT')").unwrap();
/// assert!(reply.starts_with("OK COUNT 4 "));
/// server.shutdown();
/// server.join();
/// ```
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    reactor_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `config.addr` (port 0 picks an ephemeral port), spawns the
    /// worker pool and the reactor thread, and returns the running
    /// server.
    pub fn start(engine: RepairEngine, config: ServerConfig) -> std::io::Result<Server> {
        Server::start_backend(Backend::single(engine), config)
    }

    /// Like [`Server::start`], but serves from a sharded scatter–gather
    /// engine: mutations route to their hash-owned shard, queries run on
    /// the gathered view, and replies stay byte-identical to the
    /// single-engine server fed the same command sequence.
    pub fn start_sharded(engine: ShardedEngine, config: ServerConfig) -> std::io::Result<Server> {
        Server::start_backend(Backend::sharded(engine), config)
    }

    /// Like [`Server::start`], but serves a replicated backend — a
    /// primary over a `--log-dir`, or a bootstrapped follower.  A
    /// follower additionally runs the tailer thread, which keeps pulling
    /// records from the upstream until promotion or shutdown.
    pub fn start_replicated(
        backend: ReplicatedBackend,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        Server::start_backend(Backend::replicated(backend), config)
    }

    fn start_backend(backend: Backend, config: ServerConfig) -> std::io::Result<Server> {
        if let Some(repl) = backend.replication() {
            // The replication sidecar announces (and checks) the serving
            // auto-compaction threshold in the HELLO handshake.
            repl.set_auto_compact(config.auto_compact);
        }
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let waker = Waker::new()?;
        let worker_count = config.workers.max(1);
        let shared = Arc::new(Shared::new(backend, config, waker));
        let jobs = Arc::new(JobQueue::default());

        let mut workers: Vec<JoinHandle<()>> = (0..worker_count)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let jobs = Arc::clone(&jobs);
                std::thread::Builder::new()
                    .name(format!("cdr-server-worker-{i}"))
                    .spawn(move || worker_loop(&shared, &jobs))
                    .expect("spawning a worker thread")
            })
            .collect();

        {
            use crate::session::EngineHost;
            let is_follower = shared
                .backend()
                .replication()
                .is_some_and(|repl| repl.role() == crate::replication::Role::Follower);
            if is_follower {
                let shared = Arc::clone(&shared);
                let tailer = std::thread::Builder::new()
                    .name("cdr-server-tailer".to_string())
                    .spawn(move || tailer_loop(&shared))
                    .expect("spawning the tailer thread");
                workers.push(tailer);
            }
        }

        let reactor_thread = {
            let shared = Arc::clone(&shared);
            let jobs = Arc::clone(&jobs);
            std::thread::Builder::new()
                .name("cdr-server-reactor".to_string())
                .spawn(move || reactor_loop(&shared, listener, &jobs))
                .expect("spawning the reactor thread")
        };

        Ok(Server {
            addr,
            shared,
            reactor_thread: Some(reactor_thread),
            workers,
        })
    }

    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A snapshot of the server's counters.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            connections: self.shared.connections.load(Ordering::Relaxed),
            commands: self.shared.commands.load(Ordering::Relaxed),
            busy_rejections: self.shared.busy_rejections.load(Ordering::Relaxed),
            recovered_panics: self.shared.recovered_panics.load(Ordering::Relaxed),
        }
    }

    /// Initiates shutdown: the reactor stops accepting and reading,
    /// flushes pending replies (bounded by a grace period), and workers
    /// drain their queue.  Clients can trigger the same path with the
    /// `SHUTDOWN` command.
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Waits for every server thread to exit and returns the final
    /// counters.  Call [`Server::shutdown`] (or have a client send
    /// `SHUTDOWN`) first, or this blocks until one does.
    pub fn join(mut self) -> ServerStats {
        if let Some(reactor) = self.reactor_thread.take() {
            let _ = reactor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        self.stats()
    }
}

/// Most doublings of the poll interval a failing tailer backs off to.
const TAILER_BACKOFF_DOUBLINGS: u32 = 5;

/// Hard cap on one tailer backoff sleep, jitter included.
const TAILER_BACKOFF_CAP: Duration = Duration::from_secs(2);

/// Seed of the tailer's jitter stream.  A constant: the whole backoff
/// schedule is a deterministic function of the failure count, which is
/// what lets the tests replay it.
const TAILER_JITTER_SEED: u64 = 0x7a11_b0ff;

/// The capped exponential backoff (plus bounded seeded jitter) a failing
/// tailer sleeps before retrying a dead upstream: `poll * 2^n` up to the
/// cap, plus up to a quarter of that in jitter so a fleet of followers
/// does not reconnect in lockstep.
fn tailer_backoff(poll: Duration, failures: u32, rng: &mut ChaCha8Rng) -> Duration {
    let doublings = failures.min(TAILER_BACKOFF_DOUBLINGS);
    let base = poll
        .saturating_mul(1u32 << doublings)
        .min(TAILER_BACKOFF_CAP);
    let jitter_budget = (base.as_millis() as u64 / 4).max(1);
    base + Duration::from_millis(rng.gen_range(0..jitter_budget))
}

/// Sleeps `total` in poll-interval chunks so a backing-off tailer still
/// notices shutdown promptly.
fn backoff_sleep(shared: &Shared, total: Duration) {
    let chunk = shared.config.poll_interval.max(Duration::from_millis(5));
    let deadline = Instant::now() + total;
    loop {
        if shared.shutting_down() {
            return;
        }
        let now = Instant::now();
        if now >= deadline {
            return;
        }
        std::thread::sleep(chunk.min(deadline - now));
    }
}

/// The follower's replication pump: pull records from the upstream until
/// the server shuts down or this node is promoted.  A panic inside one
/// iteration is counted and recovered like a command handler panic —
/// the pump never dies while the node is still a follower.  Upstream
/// failures back off exponentially (capped, seeded jitter) instead of
/// hammering a dead primary on the hot poll interval.
fn tailer_loop(shared: &Shared) {
    use crate::session::EngineHost;
    let mut rng = ChaCha8Rng::seed_from_u64(TAILER_JITTER_SEED);
    let mut failures: u32 = 0;
    while !shared.shutting_down() {
        let Some(repl) = shared.backend().replication() else {
            return;
        };
        match catch_unwind(AssertUnwindSafe(|| repl.tail_once())) {
            Ok(TailOutcome::Progress) => {
                failures = 0;
                continue;
            }
            Ok(TailOutcome::Idle) => {
                failures = 0;
                std::thread::sleep(shared.config.poll_interval);
            }
            Ok(TailOutcome::Failed) => {
                let backoff = tailer_backoff(shared.config.poll_interval, failures, &mut rng);
                failures = failures.saturating_add(1);
                backoff_sleep(shared, backoff);
            }
            Ok(TailOutcome::Promoted) => return,
            Err(_) => {
                shared.recovered_panics.fetch_add(1, Ordering::Relaxed);
                eprintln!("cdr-server: tailer recovered from a panic");
                std::thread::sleep(shared.config.poll_interval);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The backoff schedule is deterministic given the seed, grows
    /// exponentially from the poll interval and saturates at the cap —
    /// jitter included, two replays agree byte for byte.
    #[test]
    fn tailer_backoff_is_capped_exponential_and_deterministic() {
        let poll = Duration::from_millis(25);
        let mut a = ChaCha8Rng::seed_from_u64(TAILER_JITTER_SEED);
        let mut b = ChaCha8Rng::seed_from_u64(TAILER_JITTER_SEED);
        let schedule: Vec<Duration> = (0..12).map(|n| tailer_backoff(poll, n, &mut a)).collect();
        let replay: Vec<Duration> = (0..12).map(|n| tailer_backoff(poll, n, &mut b)).collect();
        assert_eq!(schedule, replay, "the jitter stream is seeded");
        for (n, delay) in schedule.iter().enumerate() {
            let doublings = (n as u32).min(TAILER_BACKOFF_DOUBLINGS);
            let base = poll.saturating_mul(1 << doublings).min(TAILER_BACKOFF_CAP);
            assert!(*delay >= base, "attempt {n}: {delay:?} under base {base:?}");
            assert!(
                *delay <= base + base / 4 + Duration::from_millis(1),
                "attempt {n}: {delay:?} over the jitter budget"
            );
        }
        assert!(schedule[0] < schedule[5], "the schedule grows");
        assert!(
            schedule[11] <= TAILER_BACKOFF_CAP + TAILER_BACKOFF_CAP / 4,
            "the schedule saturates at the cap"
        );
    }
}
