//! The shared serving state: the engine behind its read/write lock, the
//! bounded batch-permit pool, shutdown signalling and counters.

use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, RwLock};
use std::time::Duration;

use cdr_core::RepairEngine;

use crate::session::EngineHost;
use crate::ServerConfig;

/// Everything worker threads share.
///
/// The engine sits behind an [`RwLock`]: queries take read guards and run
/// concurrently; a mutation's write guard drains every in-flight query and
/// applies atomically (the engine's `&mut self` mutation barrier, realised
/// at the network layer).  Both guard helpers *recover* from poisoning —
/// a panicking handler is caught by its worker, counted, and must not
/// wedge the whole server.  Recovery is sound because handlers only panic
/// outside engine mutation paths (the engine's own `apply` returns errors
/// rather than panicking since the fact-id exhaustion fix), so a poisoned
/// lock still guards a consistent engine.
pub(crate) struct Shared {
    pub(crate) config: ServerConfig,
    engine: RwLock<RepairEngine>,
    /// Remaining `BATCH` fan-out permits (see [`ServerConfig::batch_permits`]).
    batch_permits: Mutex<usize>,
    shutdown: AtomicBool,
    /// Where the accept loop listens — used to wake it on shutdown.
    addr: SocketAddr,
    pub(crate) connections: AtomicU64,
    pub(crate) commands: AtomicU64,
    pub(crate) busy_rejections: AtomicU64,
    pub(crate) recovered_panics: AtomicU64,
}

fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl Shared {
    pub(crate) fn new(engine: RepairEngine, config: ServerConfig, addr: SocketAddr) -> Self {
        Shared {
            batch_permits: Mutex::new(config.batch_permits),
            config,
            engine: RwLock::new(engine),
            shutdown: AtomicBool::new(false),
            addr,
            connections: AtomicU64::new(0),
            commands: AtomicU64::new(0),
            busy_rejections: AtomicU64::new(0),
            recovered_panics: AtomicU64::new(0),
        }
    }

    pub(crate) fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Flags shutdown and pokes the accept loop awake with a throwaway
    /// connection so it notices without waiting for outside traffic.
    pub(crate) fn begin_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // An unspecified bind address (0.0.0.0 / ::) is not connectable on
        // every platform; the loopback of the same family always reaches
        // the listener.
        let mut addr = self.addr;
        if addr.ip().is_unspecified() {
            addr.set_ip(match addr {
                SocketAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                SocketAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
            });
        }
        let _ = TcpStream::connect_timeout(&addr, Duration::from_millis(250));
    }
}

/// Puts a taken batch permit back even if the batch panics.
struct PermitGuard<'a>(&'a Mutex<usize>);

impl Drop for PermitGuard<'_> {
    fn drop(&mut self) {
        *lock(self.0) += 1;
    }
}

impl EngineHost for Shared {
    fn with_read<R>(&self, f: impl FnOnce(&RepairEngine) -> R) -> R {
        let guard = self
            .engine
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        f(&guard)
    }

    fn with_write<R>(&self, f: impl FnOnce(&mut RepairEngine) -> R) -> R {
        let mut guard = self
            .engine
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        f(&mut guard)
    }

    fn with_batch_permit<R>(&self, f: impl FnOnce() -> R) -> Option<R> {
        {
            let mut permits = lock(&self.batch_permits);
            if *permits == 0 {
                self.busy_rejections.fetch_add(1, Ordering::Relaxed);
                return None;
            }
            *permits -= 1;
        }
        let guard = PermitGuard(&self.batch_permits);
        let result = f();
        drop(guard);
        Some(result)
    }

    fn chaos(&self) -> bool {
        self.config.chaos
    }

    fn max_batch_commands(&self) -> usize {
        self.config.max_batch_commands
    }

    fn auto_compact_threshold(&self) -> Option<u64> {
        self.config.auto_compact
    }
}
