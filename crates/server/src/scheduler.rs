//! The shared serving state: the engine behind its read/write lock, the
//! bounded batch-permit pool, shutdown signalling and counters.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use cdr_reactor::Waker;

use crate::backend::Backend;
use crate::session::EngineHost;
use crate::ServerConfig;

/// Everything worker threads share.
///
/// The engine sits behind a [`Backend`]: classically one `RwLock` whose
/// read guards run queries concurrently and whose write guard drains
/// every in-flight query and applies atomically (the engine's `&mut self`
/// mutation barrier, realised at the network layer); with `--shards N`, a
/// sharded router whose writers contend per shard.  Every guard helper
/// *recovers* from poisoning — a panicking handler is caught by its
/// worker, counted, and must not wedge the whole server.  Recovery is
/// sound because handlers only panic outside engine mutation paths (the
/// engine's own `apply` returns errors rather than panicking since the
/// fact-id exhaustion fix), so a poisoned lock still guards a consistent
/// engine.
pub(crate) struct Shared {
    pub(crate) config: ServerConfig,
    backend: Backend,
    /// Remaining `BATCH` fan-out permits (see [`ServerConfig::batch_permits`]).
    batch_permits: Mutex<usize>,
    shutdown: AtomicBool,
    /// The reactor's waker — workers nudge it after buffering replies,
    /// and shutdown uses it so the event loop notices without traffic.
    waker: Waker,
    pub(crate) connections: AtomicU64,
    pub(crate) commands: AtomicU64,
    pub(crate) busy_rejections: AtomicU64,
    pub(crate) recovered_panics: AtomicU64,
}

fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl Shared {
    pub(crate) fn new(backend: Backend, config: ServerConfig, waker: Waker) -> Self {
        Shared {
            batch_permits: Mutex::new(config.batch_permits),
            config,
            backend,
            shutdown: AtomicBool::new(false),
            waker,
            connections: AtomicU64::new(0),
            commands: AtomicU64::new(0),
            busy_rejections: AtomicU64::new(0),
            recovered_panics: AtomicU64::new(0),
        }
    }

    pub(crate) fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    pub(crate) fn waker(&self) -> &Waker {
        &self.waker
    }

    /// Flags shutdown and wakes the reactor so it notices without
    /// waiting for outside traffic or the next poll tick.
    pub(crate) fn begin_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        self.waker.wake();
    }
}

/// Puts a taken batch permit back even if the batch panics.
struct PermitGuard<'a>(&'a Mutex<usize>);

impl Drop for PermitGuard<'_> {
    fn drop(&mut self) {
        *lock(self.0) += 1;
    }
}

impl EngineHost for Shared {
    fn backend(&self) -> &Backend {
        &self.backend
    }

    fn with_batch_permit<R>(&self, f: impl FnOnce() -> R) -> Option<R> {
        {
            let mut permits = lock(&self.batch_permits);
            if *permits == 0 {
                self.busy_rejections.fetch_add(1, Ordering::Relaxed);
                return None;
            }
            *permits -= 1;
        }
        let guard = PermitGuard(&self.batch_permits);
        let result = f();
        drop(guard);
        Some(result)
    }

    fn chaos(&self) -> bool {
        self.config.chaos
    }

    fn max_batch_commands(&self) -> usize {
        self.config.max_batch_commands
    }

    fn auto_compact_threshold(&self) -> Option<u64> {
        self.config.auto_compact
    }

    fn admin_token(&self) -> Option<&str> {
        self.config.admin_token.as_deref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdr_core::ShardedEngine;
    use cdr_workloads::employee_example;

    fn sharded_shared(permits: usize) -> Shared {
        let (db, keys) = employee_example();
        let mut config = ServerConfig::bind("127.0.0.1:0");
        config.batch_permits = permits;
        let waker = Waker::new().expect("loopback waker");
        Shared::new(
            Backend::sharded(ShardedEngine::new(db, keys, 4)),
            config,
            waker,
        )
    }

    /// The permit-pool audit for the sharded path: a batch that panics
    /// mid-scatter must put its permit back on unwind (the
    /// [`PermitGuard`] drop), or the pool would leak down to permanent
    /// `ERR BUSY`.
    #[test]
    fn a_panicking_batch_returns_its_permit_on_the_sharded_backend() {
        let shared = sharded_shared(1);
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            shared.with_batch_permit(|| -> () { panic!("scatter phase blew up") })
        }));
        assert!(unwound.is_err());
        assert_eq!(shared.with_batch_permit(|| 7), Some(7));
        assert_eq!(shared.busy_rejections.load(Ordering::Relaxed), 0);
    }

    /// An exhausted pool refuses immediately (counted as a busy
    /// rejection) and recovers as soon as the holder finishes — error or
    /// not, the permit travels back through the normal return path.
    #[test]
    fn an_exhausted_pool_rejects_then_recovers_on_the_sharded_backend() {
        let shared = sharded_shared(1);
        let held = shared.with_batch_permit(|| {
            assert_eq!(shared.with_batch_permit(|| ()), None);
            let failed: Result<(), &str> = Err("every item of the batch failed");
            failed
        });
        assert_eq!(held, Some(Err("every item of the batch failed")));
        assert_eq!(shared.busy_rejections.load(Ordering::Relaxed), 1);
        assert_eq!(shared.with_batch_permit(|| 7), Some(7));
    }
}
