//! The failover supervisor: health-checked auto-promotion with epoch
//! fencing.
//!
//! A [`Supervisor`] watches one primary and an ordered follower list
//! over the line protocol itself — no side channel: liveness probes are
//! `STATS` round-trips on fresh connections under connect/read
//! deadlines, and fencing announcements are `REPL HELLO epoch=<e>`
//! lines, the same handshake followers use.
//!
//! The failure detector is deliberately conservative: a primary is
//! declared dead only after `misses_to_fail` *consecutive* missed
//! heartbeats **and** a confirming probe on a second fresh socket (a
//! bare `REPL HELLO`), so one dropped packet or a slow accept queue
//! never triggers a promotion.  While misses accumulate, the probe
//! cadence backs off exponentially (capped, with bounded jitter from
//! the vendored seeded RNG) instead of hammering a dead host.
//!
//! Failover picks the most-caught-up follower by its `repl end=` gauge
//! (ties resolve to configuration order), waits — bounded by
//! `catch_up` — for that follower to reach the dead primary's last
//! acknowledged offset, then drives `AUTH` + `PROMOTE`, retrying while
//! the follower still answers `ERR REPL BEHIND …` (the tailer may be
//! applying its final fetched records).  Once the catch-up budget is
//! spent the supervisor escalates to `PROMOTE FORCE`, accepting the
//! documented loss of records the dead primary acknowledged but never
//! served to a fetch — a cluster with a primary that dropped a tail it
//! provably could not recover beats a cluster stranded forever.  An
//! `ERR REPL already primary` reply counts as success, too: it means an
//! earlier `PROMOTE` landed but its reply was lost in flight.
//!
//! Surviving followers are re-pointed at the new primary with
//! `RETARGET`; one that is unreachable at that instant is retried on
//! later ticks until it acknowledges.  The deposed primary's address
//! joins the fence list: ticks keep announcing the new epoch to it
//! (authenticated — fencing is an admin-grade side effect), so a
//! revived stale primary is fenced (its writes answer `ERR FENCED
//! epoch=<e>`) before any client can reach it with a write.  Both kinds
//! of nudges run *after* the heartbeat probe and back off per target
//! while it stays unreachable, so a pile of dead addresses cannot
//! stretch the heartbeat period and slow detection of the next
//! failure.
//!
//! The supervisor exposes its own state on a small status socket: any
//! line sent to it answers `OK SUPERVISOR state=… primary=… epoch=…
//! probes=… misses=… promotions=… last_acked=…`.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::client::Client;
use crate::replication::field_u64;

/// What a [`Supervisor`] is doing right now.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SupervisorState {
    /// Heartbeating a live primary.
    Watching,
    /// The primary is declared dead; a promotion is in flight.
    FailingOver,
    /// No follower was promotable; the cluster has no primary.
    Stranded,
}

impl SupervisorState {
    fn as_str(self) -> &'static str {
        match self {
            SupervisorState::Watching => "watching",
            SupervisorState::FailingOver => "failing_over",
            SupervisorState::Stranded => "stranded",
        }
    }
}

/// A snapshot of the supervisor's counters and topology view.
#[derive(Clone, Debug)]
pub struct SupervisorStatus {
    /// Current state.
    pub state: SupervisorState,
    /// The node currently believed primary.
    pub primary: SocketAddr,
    /// Highest epoch observed or created by a promotion.
    pub epoch: u64,
    /// Heartbeat probes sent (successful or not).
    pub probes: u64,
    /// Heartbeat probes that failed, cumulative.
    pub misses: u64,
    /// Promotions driven to completion.
    pub promotions: u64,
    /// The primary's `repl end=` gauge at the last successful probe —
    /// the offset a promotion candidate must reach.
    pub last_acked: u64,
}

impl SupervisorStatus {
    /// The one-line status-socket rendering.
    pub fn render(&self) -> String {
        format!(
            "OK SUPERVISOR state={} primary={} epoch={} probes={} misses={} promotions={} \
             last_acked={}",
            self.state.as_str(),
            self.primary,
            self.epoch,
            self.probes,
            self.misses,
            self.promotions,
            self.last_acked
        )
    }
}

/// Tuning for a [`Supervisor`].
#[derive(Clone, Debug)]
pub struct SupervisorConfig {
    /// The primary to watch.
    pub primary: SocketAddr,
    /// Followers, in promotion-preference order (ties on catch-up
    /// resolve to the earlier entry).
    pub followers: Vec<SocketAddr>,
    /// Heartbeat period while the primary answers.
    pub interval: Duration,
    /// Consecutive missed heartbeats before the confirm probe runs.
    pub misses_to_fail: u32,
    /// Probe connect deadline.
    pub connect_timeout: Duration,
    /// Probe read deadline.
    pub read_timeout: Duration,
    /// Admin token sent via `AUTH` before `PROMOTE` / `RETARGET`, when
    /// the watched servers gate admin verbs.
    pub auth: Option<String>,
    /// Seed of the backoff jitter stream.
    pub seed: u64,
    /// Longest wait for the promotion candidate to reach the dead
    /// primary's last acknowledged offset before escalating to
    /// `PROMOTE FORCE`, which promotes anyway (async replication:
    /// records the dead primary acknowledged but never served to a
    /// fetch are unrecoverable, and the forced reply reports them as
    /// `dropped=<n>`).
    pub catch_up: Duration,
    /// Status socket bind address (`127.0.0.1:0` for an ephemeral
    /// port).
    pub status_addr: String,
}

impl SupervisorConfig {
    /// A config for watching `primary` with the given followers,
    /// otherwise default tuning: 50 ms heartbeats, 3 misses to fail,
    /// 250 ms probe deadlines, 5 s catch-up budget.
    pub fn watch(primary: SocketAddr, followers: Vec<SocketAddr>) -> SupervisorConfig {
        SupervisorConfig {
            primary,
            followers,
            interval: Duration::from_millis(50),
            misses_to_fail: 3,
            connect_timeout: Duration::from_millis(250),
            read_timeout: Duration::from_millis(250),
            auth: None,
            seed: 0x5afe_cafe,
            catch_up: Duration::from_secs(5),
            status_addr: "127.0.0.1:0".to_string(),
        }
    }
}

/// Most doublings the inter-probe delay grows through while the
/// primary is missing.
const PROBE_BACKOFF_DOUBLINGS: u32 = 3;

/// Most doublings a nudged peer's skip count grows through while it
/// stays unreachable (so a dead peer costs one connect timeout every
/// 2^5 = 32 ticks at worst, not every tick).
const PEER_BACKOFF_DOUBLINGS: u32 = 5;

/// A peer the watch loop keeps nudging between heartbeats — a fence
/// target it announces epochs to, or a survivor whose `RETARGET` has
/// not been acknowledged yet — with per-target backoff so unreachable
/// peers cannot stretch the heartbeat period.
struct Peer {
    addr: SocketAddr,
    /// Consecutive nudges that drew no reply.
    failures: u32,
    /// Ticks to sit out before the next nudge.
    skip: u32,
    /// A refused (but delivered) nudge was already reported.
    warned: bool,
}

impl Peer {
    fn new(addr: SocketAddr) -> Peer {
        Peer {
            addr,
            failures: 0,
            skip: 0,
            warned: false,
        }
    }

    /// Whether this tick should nudge the peer (counts down the skip).
    fn due(&mut self) -> bool {
        if self.skip > 0 {
            self.skip -= 1;
            false
        } else {
            true
        }
    }

    fn delivered(&mut self) {
        self.failures = 0;
    }

    fn unreachable(&mut self) {
        self.failures += 1;
        self.skip = 1 << self.failures.min(PEER_BACKOFF_DOUBLINGS);
    }
}

struct Shared {
    stopping: AtomicBool,
    status: Mutex<SupervisorStatus>,
}

fn lock_status(shared: &Shared) -> std::sync::MutexGuard<'_, SupervisorStatus> {
    shared
        .status
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A running failover supervisor.  Dropping the handle does *not* stop
/// it; call [`Supervisor::shutdown`] then [`Supervisor::join`].
pub struct Supervisor {
    status_addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl Supervisor {
    /// Binds the status socket and starts the watch loop.
    pub fn start(config: SupervisorConfig) -> std::io::Result<Supervisor> {
        let listener = TcpListener::bind(&config.status_addr)?;
        let status_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            stopping: AtomicBool::new(false),
            status: Mutex::new(SupervisorStatus {
                state: SupervisorState::Watching,
                primary: config.primary,
                epoch: 0,
                probes: 0,
                misses: 0,
                promotions: 0,
                last_acked: 0,
            }),
        });
        let mut threads = Vec::new();
        {
            let shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name("cdr-supervisor-status".to_string())
                    .spawn(move || status_loop(&shared, &listener))
                    .expect("spawning the status thread"),
            );
        }
        {
            let shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name("cdr-supervisor-watch".to_string())
                    .spawn(move || watch_loop(&shared, config))
                    .expect("spawning the watch thread"),
            );
        }
        Ok(Supervisor {
            status_addr,
            shared,
            threads,
        })
    }

    /// The status socket's address.
    pub fn status_addr(&self) -> SocketAddr {
        self.status_addr
    }

    /// A snapshot of the supervisor's state.
    pub fn status(&self) -> SupervisorStatus {
        lock_status(&self.shared).clone()
    }

    /// Asks both threads to stop.
    pub fn shutdown(&self) {
        self.shared.stopping.store(true, Ordering::SeqCst);
        // Wake the blocking status accept.
        let _ = TcpStream::connect(self.status_addr);
    }

    /// Waits for the threads to exit and returns the final status.
    pub fn join(mut self) -> SupervisorStatus {
        for thread in self.threads.drain(..) {
            let _ = thread.join();
        }
        lock_status(&self.shared).clone()
    }
}

fn status_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    loop {
        let Ok((stream, _)) = listener.accept() else {
            return;
        };
        if shared.stopping.load(Ordering::SeqCst) {
            return;
        }
        let shared = Arc::clone(shared);
        let _ = std::thread::Builder::new()
            .name("cdr-supervisor-status-conn".to_string())
            .spawn(move || {
                let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
                let Ok(reader_stream) = stream.try_clone() else {
                    return;
                };
                let mut reader = BufReader::new(reader_stream);
                let mut writer = stream;
                let mut line = String::new();
                while reader.read_line(&mut line).is_ok_and(|n| n > 0) {
                    let reply = lock_status(&shared).render();
                    if writer.write_all(reply.as_bytes()).is_err()
                        || writer.write_all(b"\n").is_err()
                    {
                        return;
                    }
                    line.clear();
                }
            });
    }
}

/// One probe round-trip on a fresh socket: connect under the deadline,
/// send `line`, read one reply line.
fn probe(addr: SocketAddr, line: &str, config: &SupervisorConfig) -> std::io::Result<String> {
    let mut client = Client::connect_timeout_opts(
        addr,
        Some(config.connect_timeout),
        Some(config.read_timeout),
    )?;
    client.send(line)
}

/// Authenticates (when a token is configured) and sends `line` on a
/// fresh connection.
fn admin_send(addr: SocketAddr, line: &str, config: &SupervisorConfig) -> std::io::Result<String> {
    let mut client = Client::connect_timeout_opts(
        addr,
        Some(config.connect_timeout),
        Some(config.read_timeout),
    )?;
    if let Some(token) = &config.auth {
        let reply = client.send(&format!("AUTH {token}"))?;
        if !reply.starts_with("OK AUTH") {
            return Ok(reply);
        }
    }
    client.send(line)
}

/// The capped-exponential inter-probe delay while the primary is
/// missing, with bounded seeded jitter.
fn probe_backoff(interval: Duration, consecutive: u32, rng: &mut ChaCha8Rng) -> Duration {
    let doublings = consecutive.min(PROBE_BACKOFF_DOUBLINGS);
    let base = interval.saturating_mul(1u32 << doublings);
    let jitter_budget = (base.as_millis() as u64 / 4).max(1);
    base + Duration::from_millis(rng.gen_range(0..jitter_budget))
}

/// Sleeps `total` in short chunks so shutdown is noticed promptly.
fn chunked_sleep(shared: &Shared, total: Duration) {
    let deadline = Instant::now() + total;
    let chunk = Duration::from_millis(10);
    while !shared.stopping.load(Ordering::SeqCst) {
        let now = Instant::now();
        if now >= deadline {
            return;
        }
        std::thread::sleep(chunk.min(deadline - now));
    }
}

fn watch_loop(shared: &Arc<Shared>, config: SupervisorConfig) {
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let mut primary = config.primary;
    let mut followers = config.followers.clone();
    let mut fence_targets: Vec<Peer> = Vec::new();
    let mut pending_retargets: Vec<Peer> = Vec::new();
    let mut epoch: u64 = 0;
    let mut last_acked: u64 = 0;
    let mut consecutive: u32 = 0;

    while !shared.stopping.load(Ordering::SeqCst) {
        match probe(primary, "STATS", &config) {
            Ok(stats) => {
                consecutive = 0;
                if let Some(end) = field_u64(&stats, "end=") {
                    last_acked = end;
                }
                if let Some(seen) = field_u64(&stats, "epoch=") {
                    epoch = epoch.max(seen);
                }
                let mut status = lock_status(shared);
                status.state = SupervisorState::Watching;
                status.probes += 1;
                status.last_acked = last_acked;
                status.epoch = epoch;
            }
            Err(_) => {
                consecutive += 1;
                {
                    let mut status = lock_status(shared);
                    status.probes += 1;
                    status.misses += 1;
                }
                // Confirm over a second probe path (a bare `REPL HELLO`
                // on a fresh socket) before declaring the primary dead.
                if consecutive >= config.misses_to_fail.max(1)
                    && probe(primary, "REPL HELLO", &config).is_err()
                {
                    lock_status(shared).state = SupervisorState::FailingOver;
                    match fail_over(
                        shared,
                        &config,
                        &mut followers,
                        &mut pending_retargets,
                        last_acked,
                        epoch,
                    ) {
                        Some((new_primary, new_epoch)) => {
                            fence_targets.push(Peer::new(primary));
                            fence_targets.retain(|t| t.addr != new_primary);
                            pending_retargets
                                .retain(|t| t.addr != new_primary && t.addr != primary);
                            primary = new_primary;
                            epoch = new_epoch;
                            consecutive = 0;
                            let mut status = lock_status(shared);
                            status.state = SupervisorState::Watching;
                            status.primary = primary;
                            status.epoch = epoch;
                            status.promotions += 1;
                        }
                        None => {
                            lock_status(shared).state = if followers.is_empty() {
                                SupervisorState::Stranded
                            } else {
                                SupervisorState::FailingOver
                            };
                        }
                    }
                }
            }
        }

        // Nudge peers *after* the heartbeat, so their connect timeouts
        // never delay failure detection on the primary.
        //
        // Fence announcements: a strictly newer epoch fences a deposed
        // primary that revived, so every fence target keeps hearing the
        // cluster epoch (authenticated — fencing is admin-grade).
        if epoch > 0 {
            for target in &mut fence_targets {
                if !target.due() {
                    continue;
                }
                match admin_send(target.addr, &format!("REPL HELLO epoch={epoch}"), &config) {
                    Ok(reply) => {
                        target.delivered();
                        if !reply.starts_with("OK REPL HELLO") && !target.warned {
                            target.warned = true;
                            eprintln!(
                                "cdr-supervisor: fence announcement to {} refused: {reply}",
                                target.addr
                            );
                        }
                    }
                    Err(_) => target.unreachable(),
                }
            }
        }
        // Survivors whose RETARGET was missed during the promotion:
        // keep re-pointing them at the current primary until one
        // acknowledges.
        pending_retargets.retain_mut(|survivor| {
            if !survivor.due() {
                return true;
            }
            match admin_send(survivor.addr, &format!("RETARGET {primary}"), &config) {
                Ok(reply) if reply.starts_with("OK RETARGET") => false,
                Ok(_) => {
                    survivor.delivered();
                    true
                }
                Err(_) => {
                    survivor.unreachable();
                    true
                }
            }
        });

        let delay = if consecutive == 0 {
            config.interval
        } else {
            probe_backoff(config.interval, consecutive, &mut rng)
        };
        chunked_sleep(shared, delay);
    }
}

/// Drives one promotion: pick the most-caught-up follower, wait for it
/// to reach `last_acked` (bounded by the catch-up budget), promote it —
/// escalating to `PROMOTE FORCE` once the budget is spent — and
/// retarget the survivors, queueing any that do not acknowledge onto
/// `pending` for the watch loop to retry.  Returns the new primary and
/// epoch.
fn fail_over(
    shared: &Shared,
    config: &SupervisorConfig,
    followers: &mut Vec<SocketAddr>,
    pending: &mut Vec<Peer>,
    last_acked: u64,
    epoch: u64,
) -> Option<(SocketAddr, u64)> {
    // Most-caught-up follower; configuration order breaks ties (strict
    // `>` keeps the earliest of an equal pair).
    let mut best: Option<(usize, u64)> = None;
    for (index, &follower) in followers.iter().enumerate() {
        if let Ok(stats) = probe(follower, "STATS", config) {
            let end = field_u64(&stats, "end=").unwrap_or(0);
            if best.is_none_or(|(_, best_end)| end > best_end) {
                best = Some((index, end));
            }
        }
    }
    let (index, mut candidate_end) = best?;
    let candidate = followers[index];

    let deadline = Instant::now() + config.catch_up;
    // Wait for the candidate to reach the dead primary's last
    // acknowledged offset; a tailer that already fetched the records is
    // still applying them, so this converges quickly when the data made
    // it off the primary at all.
    while candidate_end < last_acked && Instant::now() < deadline {
        if shared.stopping.load(Ordering::SeqCst) {
            return None;
        }
        chunked_sleep(shared, config.interval.min(Duration::from_millis(20)));
        if let Ok(stats) = probe(candidate, "STATS", config) {
            candidate_end = field_u64(&stats, "end=").unwrap_or(candidate_end);
        }
    }

    loop {
        if shared.stopping.load(Ordering::SeqCst) {
            return None;
        }
        // Once the catch-up budget is spent, promote anyway: `PROMOTE
        // FORCE` accepts dropping the acknowledged-but-unfetched suffix
        // (reported as `dropped=<n>`) rather than stranding the cluster
        // on records no surviving node ever held.
        let overdue = Instant::now() >= deadline;
        let verb = if overdue { "PROMOTE FORCE" } else { "PROMOTE" };
        match admin_send(candidate, verb, config) {
            // `already primary` means an earlier PROMOTE landed but its
            // reply was lost in flight — the promotion succeeded, so
            // carry on to retargeting instead of wedging in retries.
            Ok(reply)
                if reply.starts_with("OK PROMOTED")
                    || reply.starts_with("ERR REPL already primary") =>
            {
                if let Some(dropped) = field_u64(&reply, "dropped=") {
                    eprintln!(
                        "cdr-supervisor: forced promotion of {candidate} dropped {dropped} \
                         unfetched record(s) the dead primary had acknowledged"
                    );
                }
                let new_epoch = field_u64(&reply, "epoch=").unwrap_or(epoch + 1);
                followers.remove(index);
                for &survivor in followers.iter() {
                    match admin_send(survivor, &format!("RETARGET {candidate}"), config) {
                        Ok(reply) if reply.starts_with("OK RETARGET") => {}
                        // Unreachable (or refusing) right now: the watch
                        // loop keeps retrying until it acknowledges.
                        Ok(_) | Err(_) => {
                            if !pending.iter().any(|peer| peer.addr == survivor) {
                                pending.push(Peer::new(survivor));
                            }
                        }
                    }
                }
                return Some((candidate, new_epoch));
            }
            // The tailer is mid-apply on its final fetch; retry inside
            // the catch-up budget.
            Ok(reply) if reply.starts_with("ERR REPL BEHIND") => {}
            // Any other reply (denied, readonly refusal race, …) is
            // retried the same way until the budget runs out.
            Ok(_) | Err(_) => {}
        }
        if overdue {
            // The forced attempt was the budget's last word; the next
            // tick re-probes and starts a fresh failover if needed.
            return None;
        }
        chunked_sleep(shared, config.interval.min(Duration::from_millis(20)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The probe backoff is deterministic given the seed, grows with
    /// consecutive misses and stays within base + a quarter jitter.
    #[test]
    fn probe_backoff_is_seeded_and_bounded() {
        let interval = Duration::from_millis(40);
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        let first: Vec<Duration> = (1..8).map(|n| probe_backoff(interval, n, &mut a)).collect();
        let again: Vec<Duration> = (1..8).map(|n| probe_backoff(interval, n, &mut b)).collect();
        assert_eq!(first, again);
        for (i, delay) in first.iter().enumerate() {
            let doublings = (i as u32 + 1).min(PROBE_BACKOFF_DOUBLINGS);
            let base = interval.saturating_mul(1 << doublings);
            assert!(*delay >= base && *delay <= base + base / 4 + Duration::from_millis(1));
        }
    }

    /// An unreachable nudged peer backs off exponentially (capped) and
    /// snaps back to every-tick nudging once a reply gets through.
    #[test]
    fn peer_nudges_back_off_while_unreachable() {
        let mut peer = Peer::new("127.0.0.1:7801".parse().unwrap());
        assert!(peer.due(), "a fresh peer is nudged immediately");
        for failures in 1..10u32 {
            peer.unreachable();
            let expected_skip = 1u32 << failures.min(PEER_BACKOFF_DOUBLINGS);
            let mut skipped = 0;
            while !peer.due() {
                skipped += 1;
            }
            assert_eq!(skipped, expected_skip, "after {failures} failures");
        }
        peer.delivered();
        peer.unreachable();
        assert!(!peer.due());
        assert!(!peer.due());
        assert!(peer.due(), "delivery reset the backoff to one doubling");
    }

    /// The status line renders every counter under stable keys.
    #[test]
    fn status_line_renders_all_gauges() {
        let status = SupervisorStatus {
            state: SupervisorState::Watching,
            primary: "127.0.0.1:7800".parse().unwrap(),
            epoch: 2,
            probes: 41,
            misses: 3,
            promotions: 1,
            last_acked: 17,
        };
        assert_eq!(
            status.render(),
            "OK SUPERVISOR state=watching primary=127.0.0.1:7800 epoch=2 probes=41 misses=3 \
             promotions=1 last_acked=17"
        );
    }
}
