//! A minimal `poll(2)` readiness reactor for the serving layer.
//!
//! The build environment has no crates.io access, so this crate vendors
//! the few dozen lines of event-loop substrate `cdr-server` needs
//! instead of depending on `mio`/`polling`: a safe wrapper over the
//! `poll(2)` system call plus a cross-thread [`Waker`].  It exists as
//! its own crate because the syscall needs one small `unsafe` FFI block
//! and `cdr-server` forbids unsafe code crate-wide — the boundary keeps
//! that guarantee intact.
//!
//! The model is deliberately the simplest correct one:
//!
//! - **Level-triggered.**  A fd polls ready for as long as the condition
//!   holds; missing an event costs one loop iteration, never a stall.
//! - **Stateless registration.**  The caller rebuilds the
//!   [`PollEntry`] slice every iteration from its own connection table;
//!   there is no kernel-side registration to keep in sync.  `poll(2)` is
//!   O(fds) per call, which is fine for the few thousand connections a
//!   single serving process handles (epoll would buy nothing below
//!   ~10^4 mostly-idle fds and costs registration bookkeeping).
//! - **One waker.**  Worker threads finish commands and must nudge the
//!   reactor to flush replies; [`Waker`] is a nonblocking loopback
//!   socket pair whose read end joins the poll set.
//!
//! ```
//! use cdr_reactor::{poll, Interest, PollEntry, Waker};
//! use std::time::Duration;
//!
//! let waker = Waker::new().unwrap();
//! waker.wake();
//! let mut entries = [PollEntry::new(waker.raw_fd(), Interest::READ)];
//! let ready = poll(&mut entries, Some(Duration::from_secs(1))).unwrap();
//! assert_eq!(ready, 1);
//! assert!(entries[0].ready.readable);
//! waker.drain();
//! ```

#![deny(missing_docs)]
#![cfg(unix)]

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::{AsRawFd, RawFd};
use std::time::Duration;

mod sys {
    //! The one unsafe block in the workspace's serving stack: the
    //! `poll(2)` FFI declaration and its wrapper.

    use std::io;
    use std::os::raw::{c_int, c_short};

    #[cfg(target_os = "macos")]
    type NfdsT = std::os::raw::c_uint;
    #[cfg(not(target_os = "macos"))]
    type NfdsT = std::os::raw::c_ulong;

    pub const POLLIN: c_short = 0x001;
    pub const POLLOUT: c_short = 0x004;
    pub const POLLERR: c_short = 0x008;
    pub const POLLHUP: c_short = 0x010;
    pub const POLLNVAL: c_short = 0x020;

    /// `struct pollfd` as `poll(2)` expects it.
    #[repr(C)]
    pub struct PollFd {
        pub fd: c_int,
        pub events: c_short,
        pub revents: c_short,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: NfdsT, timeout: c_int) -> c_int;
    }

    /// Calls `poll(2)` over `fds`, returning the number of entries with
    /// non-zero `revents`.  `timeout_ms < 0` blocks indefinitely.
    pub fn poll_raw(fds: &mut [PollFd], timeout_ms: c_int) -> io::Result<usize> {
        // SAFETY: `fds` is a valid, exclusively borrowed slice of
        // `#[repr(C)]` pollfd structs for the duration of the call, and
        // `len()` is its true length.  The kernel only writes `revents`.
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as NfdsT, timeout_ms) };
        if rc < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(rc as usize)
        }
    }
}

/// Which readiness conditions a [`PollEntry`] asks about.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd has bytes to read (or the peer hung up).
    pub read: bool,
    /// Wake when the fd can accept writes without blocking.
    pub write: bool,
}

impl Interest {
    /// Read readiness only.
    pub const READ: Interest = Interest {
        read: true,
        write: false,
    };
    /// Write readiness only.
    pub const WRITE: Interest = Interest {
        read: false,
        write: true,
    };
    /// Both directions.
    pub const READ_WRITE: Interest = Interest {
        read: true,
        write: true,
    };
}

/// Which conditions `poll(2)` reported for a [`PollEntry`].
///
/// `hangup`/`error`/`invalid` are reported regardless of the requested
/// [`Interest`] (the kernel always surfaces them); a caller should treat
/// any of the three as "close this connection after a final read".
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Readiness {
    /// A read will not block (data, pending accept, or EOF).
    pub readable: bool,
    /// A write will not block.
    pub writable: bool,
    /// The peer closed its end.
    pub hangup: bool,
    /// The fd is in an error state.
    pub error: bool,
    /// The fd was not open — the caller's table is stale.
    pub invalid: bool,
}

impl Readiness {
    /// True if any condition at all was reported.
    pub fn any(&self) -> bool {
        self.readable || self.writable || self.hangup || self.error || self.invalid
    }

    /// True if the connection is past saving (error/hangup/invalid).
    pub fn is_dead(&self) -> bool {
        self.hangup || self.error || self.invalid
    }
}

/// One fd's slot in a [`poll`] call: what to watch, and (after the call
/// returns) what was observed.
#[derive(Clone, Copy, Debug)]
pub struct PollEntry {
    /// The file descriptor to watch.
    pub fd: RawFd,
    /// The conditions to watch for.
    pub interest: Interest,
    /// What the last [`poll`] call observed; zeroed on entry.
    pub ready: Readiness,
}

impl PollEntry {
    /// A fresh entry with no readiness recorded yet.
    pub fn new(fd: RawFd, interest: Interest) -> Self {
        PollEntry {
            fd,
            interest,
            ready: Readiness::default(),
        }
    }
}

/// Waits until at least one entry is ready or the timeout elapses,
/// filling in each entry's [`Readiness`].  Returns how many entries have
/// at least one condition set; `0` means the timeout elapsed.
///
/// `None` blocks until an event arrives.  A timeout longer than
/// `i32::MAX` milliseconds is clamped.  `EINTR` is retried internally,
/// reusing the same timeout (acceptable drift: the serving loop passes
/// short poll intervals and re-checks its shutdown flag every pass).
pub fn poll(entries: &mut [PollEntry], timeout: Option<Duration>) -> io::Result<usize> {
    let timeout_ms: i32 = match timeout {
        None => -1,
        Some(d) => d.as_millis().min(i32::MAX as u128) as i32,
    };
    let mut fds: Vec<sys::PollFd> = entries
        .iter()
        .map(|e| {
            let mut events = 0;
            if e.interest.read {
                events |= sys::POLLIN;
            }
            if e.interest.write {
                events |= sys::POLLOUT;
            }
            sys::PollFd {
                fd: e.fd,
                events,
                revents: 0,
            }
        })
        .collect();
    let ready = loop {
        match sys::poll_raw(&mut fds, timeout_ms) {
            Ok(n) => break n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    };
    for (entry, fd) in entries.iter_mut().zip(&fds) {
        entry.ready = Readiness {
            readable: fd.revents & sys::POLLIN != 0,
            writable: fd.revents & sys::POLLOUT != 0,
            hangup: fd.revents & sys::POLLHUP != 0,
            error: fd.revents & sys::POLLERR != 0,
            invalid: fd.revents & sys::POLLNVAL != 0,
        };
    }
    Ok(ready)
}

/// A cross-thread nudge for a [`poll`] loop.
///
/// Built from a nonblocking loopback TCP pair (no further FFI needed):
/// the read end joins the poll set; any thread holding a reference calls
/// [`Waker::wake`] to make the next (or current) `poll` return
/// immediately.  Wakes coalesce — a thousand `wake()` calls cost at most
/// the socket buffer in bytes and one readable event.
pub struct Waker {
    reader: TcpStream,
    writer: TcpStream,
}

impl Waker {
    /// Creates the loopback pair.  Fails only if the host cannot bind a
    /// loopback socket at all.
    pub fn new() -> io::Result<Waker> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let writer = TcpStream::connect(listener.local_addr()?)?;
        let (reader, _) = listener.accept()?;
        reader.set_nonblocking(true)?;
        writer.set_nonblocking(true)?;
        writer.set_nodelay(true)?;
        Ok(Waker { reader, writer })
    }

    /// The fd to register with [`Interest::READ`] in the poll set.
    pub fn raw_fd(&self) -> RawFd {
        self.reader.as_raw_fd()
    }

    /// Makes the poll loop's next wait return immediately.  Infallible
    /// by design: a full socket buffer means a wake is already pending.
    pub fn wake(&self) {
        match (&self.writer).write(&[1]) {
            Ok(_) => {}
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
            Err(_) => {}
        }
    }

    /// Consumes pending wake bytes so the fd stops polling readable.
    /// Call once per loop iteration when the waker fd reports readable.
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        loop {
            match (&self.reader).read(&mut buf) {
                Ok(0) => break,
                Ok(_) => continue,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn an_unwoken_waker_times_out() {
        let waker = Waker::new().unwrap();
        let mut entries = [PollEntry::new(waker.raw_fd(), Interest::READ)];
        let start = Instant::now();
        let ready = poll(&mut entries, Some(Duration::from_millis(30))).unwrap();
        assert_eq!(ready, 0);
        assert!(!entries[0].ready.any());
        assert!(start.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn a_wake_makes_the_poll_return_and_drain_clears_it() {
        let waker = Waker::new().unwrap();
        waker.wake();
        waker.wake(); // coalesces
        let mut entries = [PollEntry::new(waker.raw_fd(), Interest::READ)];
        let ready = poll(&mut entries, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(ready, 1);
        assert!(entries[0].ready.readable);
        waker.drain();
        let mut entries = [PollEntry::new(waker.raw_fd(), Interest::READ)];
        let ready = poll(&mut entries, Some(Duration::from_millis(20))).unwrap();
        assert_eq!(ready, 0, "drained waker polls idle again");
    }

    #[test]
    fn a_wake_from_another_thread_interrupts_a_blocked_poll() {
        let waker = std::sync::Arc::new(Waker::new().unwrap());
        let nudger = std::sync::Arc::clone(&waker);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(40));
            nudger.wake();
        });
        let mut entries = [PollEntry::new(waker.raw_fd(), Interest::READ)];
        let ready = poll(&mut entries, Some(Duration::from_secs(10))).unwrap();
        assert_eq!(ready, 1);
        handle.join().unwrap();
    }

    #[test]
    fn write_readiness_and_peer_hangup_are_observed() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (served, _) = listener.accept().unwrap();
        served.set_nonblocking(true).unwrap();

        // A fresh connected socket is writable.
        let mut entries = [PollEntry::new(served.as_raw_fd(), Interest::READ_WRITE)];
        let ready = poll(&mut entries, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(ready, 1);
        assert!(entries[0].ready.writable);
        assert!(!entries[0].ready.readable);

        // After the peer disconnects, read interest reports readiness
        // (EOF) and usually POLLHUP; either way `is_dead() || readable`.
        drop(client);
        let mut entries = [PollEntry::new(served.as_raw_fd(), Interest::READ)];
        let ready = poll(&mut entries, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(ready, 1);
        assert!(entries[0].ready.readable || entries[0].ready.is_dead());
    }

    #[test]
    fn a_listener_polls_readable_when_a_connection_is_pending() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let mut entries = [PollEntry::new(listener.as_raw_fd(), Interest::READ)];
        let ready = poll(&mut entries, Some(Duration::from_millis(20))).unwrap();
        assert_eq!(ready, 0, "no pending accept yet");
        let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let mut entries = [PollEntry::new(listener.as_raw_fd(), Interest::READ)];
        let ready = poll(&mut entries, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(ready, 1);
        assert!(entries[0].ready.readable);
        assert!(listener.accept().is_ok());
    }
}
