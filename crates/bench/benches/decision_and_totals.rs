//! Criterion benches behind experiments E3 and E11a: the decision problem
//! `#CQA>0` (certificate search) and the total repair count, both of which
//! must scale polynomially.

use cdr_bench::{uniform_workload, union_workload};
use cdr_core::RepairCounter;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_decision(c: &mut Criterion) {
    let mut group = c.benchmark_group("decision/certificate_search");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(500));
    for &blocks in &[100usize, 400, 1600] {
        let (db, keys, q) = union_workload(blocks, 3, 3, 29);
        let counter = RepairCounter::new(&db, &keys);
        group.bench_with_input(BenchmarkId::from_parameter(blocks), &blocks, |b, _| {
            b.iter(|| counter.holds_in_some_repair(&q).unwrap());
        });
    }
    group.finish();
}

fn bench_total_repairs(c: &mut Criterion) {
    let mut group = c.benchmark_group("totals/count_repairs");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(500));
    for &blocks in &[1_000usize, 5_000, 20_000] {
        let (db, keys, _) = uniform_workload(blocks, 4, 0, 31);
        let counter = RepairCounter::new(&db, &keys);
        group.bench_with_input(BenchmarkId::from_parameter(blocks), &blocks, |b, _| {
            b.iter(|| counter.total_repairs());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_decision, bench_total_repairs);
criterion_main!(benches);
