//! Criterion benches behind experiments E3 and E11a: the decision problem
//! `#CQA>0` (certificate search) and the total repair count, both of which
//! must scale polynomially.

use cdr_bench::{uniform_workload, union_workload};
use cdr_core::{CountRequest, RepairEngine};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_decision(c: &mut Criterion) {
    let mut group = c.benchmark_group("decision/certificate_search");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(500));
    for &blocks in &[100usize, 400, 1600] {
        let (db, keys, q) = union_workload(blocks, 3, 3, 29);
        let (db, keys) = (std::sync::Arc::new(db), std::sync::Arc::new(keys));
        let request = CountRequest::decision(q);
        // A fresh engine per iteration keeps the certificate search itself
        // under measurement; a shared engine would only measure cache hits.
        group.bench_with_input(BenchmarkId::from_parameter(blocks), &blocks, |b, _| {
            b.iter(|| {
                RepairEngine::from_arcs(db.clone(), keys.clone())
                    .run(&request)
                    .unwrap()
            });
        });
    }
    group.finish();
}

fn bench_total_repairs(c: &mut Criterion) {
    let mut group = c.benchmark_group("totals/count_repairs");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(500));
    for &blocks in &[1_000usize, 5_000, 20_000] {
        let (db, keys, _) = uniform_workload(blocks, 4, 0, 31);
        let (db, keys) = (std::sync::Arc::new(db), std::sync::Arc::new(keys));
        // The total is computed at engine construction; sharing the data
        // via Arc keeps the per-iteration cost to the precomputation pass
        // (partition + product) itself, not a database copy.
        group.bench_with_input(BenchmarkId::from_parameter(blocks), &blocks, |b, _| {
            b.iter(|| {
                RepairEngine::from_arcs(db.clone(), keys.clone())
                    .total_repairs()
                    .clone()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_decision, bench_total_repairs);
criterion_main!(benches);
