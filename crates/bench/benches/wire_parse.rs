//! Criterion bench for the server's parse path:
//! [`cdr_core::wire::parse_engine_command`] on the line shapes a serving
//! session is made of.  INSERT lines dominate ingest-heavy workloads, and
//! their cost is value parsing plus fact construction — exactly the path
//! symbol interning accelerates — so the suite tracks them alongside the
//! query verbs.

use cdr_core::wire::parse_engine_command;
use cdr_repairdb::{Database, Schema};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn serving_database() -> Database {
    let mut schema = Schema::new();
    schema.add_relation("Reading", 3).expect("fresh schema");
    schema.add_relation("Employee", 3).expect("fresh schema");
    Database::new(schema)
}

/// A deterministic block of INSERT lines shaped like the streaming-sensor
/// serving workload: integer keys, short quoted string payloads.
fn insert_lines(count: usize) -> Vec<String> {
    (0..count)
        .map(|i| {
            format!(
                "INSERT Reading({}, 'sensor_{}', 'v{}')",
                i % 97,
                i % 13,
                (i * 31) % 1000
            )
        })
        .collect()
}

fn bench_parse_inserts(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire/parse_insert");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(300));
    let db = serving_database();
    for &batch in &[64usize, 512] {
        let lines = insert_lines(batch);
        group.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, _| {
            b.iter(|| {
                for line in &lines {
                    criterion::black_box(parse_engine_command(line, &db).expect("valid line"));
                }
            });
        });
    }
    group.finish();
}

fn bench_parse_query_verbs(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire/parse_query");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(300));
    let db = serving_database();
    let lines = [
        ("count", "COUNT boxes EXISTS n, d . Employee(1, n, d)"),
        (
            "decide",
            "DECIDE Employee(1, 'Bob', 'HR') OR Employee(2, 'Eve', 'IT')",
        ),
        (
            "approx",
            "APPROX 0.1 0.05 42 EXISTS n . Reading(3, n, 'v7')",
        ),
        ("delete", "DELETE 123456"),
    ];
    for (name, line) in lines {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| criterion::black_box(parse_engine_command(line, &db).expect("valid line")));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parse_inserts, bench_parse_query_verbs);
criterion_main!(benches);
