//! Criterion benches behind experiment E10: exact counting by repair
//! enumeration vs the certificate/box algorithm as the database grows.

use cdr_bench::{uniform_workload, union_workload};
use cdr_core::{count_by_boxes, count_by_enumeration, CountRequest, RepairEngine};
use cdr_query::rewrite_to_ucq;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_enumeration_vs_boxes(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact/enumeration_vs_boxes");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(500));
    for &blocks in &[6usize, 9, 12] {
        let (db, keys, q) = union_workload(blocks, 3, 3, 41);
        let ucq = rewrite_to_ucq(&q).unwrap();
        group.bench_with_input(BenchmarkId::new("enumeration", blocks), &blocks, |b, _| {
            b.iter(|| count_by_enumeration(&db, &keys, &q, u64::MAX).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("boxes", blocks), &blocks, |b, _| {
            b.iter(|| count_by_boxes(&db, &keys, &ucq, u64::MAX).unwrap());
        });
    }
    group.finish();
}

fn bench_boxes_on_large_databases(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact/boxes_large");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(500));
    for &blocks in &[100usize, 400, 1600] {
        let (db, keys, q) = uniform_workload(blocks, 3, 3, 43);
        let engine = RepairEngine::new(db, keys);
        let request = CountRequest::exact(q);
        group.bench_with_input(BenchmarkId::from_parameter(blocks), &blocks, |b, _| {
            b.iter(|| engine.run(&request).unwrap());
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_enumeration_vs_boxes,
    bench_boxes_on_large_databases
);
criterion_main!(benches);
