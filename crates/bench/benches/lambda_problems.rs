//! Criterion benches behind experiments E8, E9 and E5: the companion
//! problems `#DisjPoskDNF` and `#kForbColoring`, counted directly and
//! through the Theorem 5.1 reduction to `#CQA(Q_k, Σ_k)`.

use cdr_lambda::reduce_compactor_to_cqa;
use cdr_workloads::{random_disj_pos_dnf, random_forbidden_coloring, DnfConfig, HypergraphConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

/// Smoke runs verify each benchmark works; the larger instances are for
/// real measurement only (a single large iteration takes minutes).
fn sizes(smoke: &'static [usize]) -> &'static [usize] {
    if criterion::is_smoke() {
        smoke
    } else {
        &[20, 60, 180]
    }
}

fn bench_disj_pos_dnf(c: &mut Criterion) {
    let mut group = c.benchmark_group("lambda/disj_pos_kdnf");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(500));
    for &classes in sizes(&[20, 60]) {
        let f = random_disj_pos_dnf(&DnfConfig {
            classes,
            class_size: 3,
            clauses: classes / 2,
            clause_width: 2,
            seed: 3,
        });
        group.bench_with_input(BenchmarkId::new("direct", classes), &classes, |b, _| {
            b.iter(|| f.count_satisfying(u64::MAX).unwrap());
        });
        group.bench_with_input(
            BenchmarkId::new("via_reduction", classes),
            &classes,
            |b, _| {
                b.iter(|| {
                    reduce_compactor_to_cqa(&f)
                        .unwrap()
                        .count(u64::MAX)
                        .unwrap()
                });
            },
        );
    }
    group.finish();
}

fn bench_forbidden_coloring(c: &mut Criterion) {
    let mut group = c.benchmark_group("lambda/forbidden_coloring");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(500));
    for &vertices in sizes(&[20]) {
        let f = random_forbidden_coloring(&HypergraphConfig {
            vertices,
            colors_per_vertex: 3,
            edges: vertices / 2,
            edge_size: 2,
            forbidden_per_edge: 2,
            seed: 5,
        });
        group.bench_with_input(BenchmarkId::from_parameter(vertices), &vertices, |b, _| {
            b.iter(|| f.count_forbidden(u64::MAX).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_disj_pos_dnf, bench_forbidden_coloring);
criterion_main!(benches);
