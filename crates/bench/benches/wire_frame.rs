//! Criterion bench for the binary bulk-ingest path: wire bytes to
//! `Vec<Mutation>` through one `BULK` frame versus through the textual
//! line protocol.
//!
//! Both arms start from the bytes a client actually ships and end at the
//! decoded mutations, so the comparison covers everything the frame
//! skips: newline scanning, per-line `String` materialisation (the
//! server's decoder hands each line to the session as an owned string),
//! verb dispatch, value tokenising and quote handling, and per-occurrence
//! symbol interning — against one CRC pass, one dictionary intern per
//! distinct string, and fixed-width tuple reads.
//!
//! Two stream shapes:
//! * `ingest` — the `wire_parse/parse_insert` stream (continuity with
//!   that suite): a nearly-unique string per row, the worst case for the
//!   dictionary, which then carries almost every payload exactly once.
//! * `bulk_load` — a loader-shaped stream over a bounded vocabulary
//!   (rack/status style labels), where the dictionary amortises across
//!   the frame.  This is the headline bulk-ingest number.

use cdr_core::wire::parse_mutation;
use cdr_core::{decode_bulk, encode_bulk};
use cdr_repairdb::{Database, Mutation, Schema};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn serving_database() -> Database {
    let mut schema = Schema::new();
    schema.add_relation("Reading", 3).expect("fresh schema");
    schema.add_relation("Employee", 3).expect("fresh schema");
    Database::new(schema)
}

/// The `wire_parse` insert stream: integer keys, short quoted payloads,
/// `v{}` nearly unique per row.
fn ingest_lines(count: usize) -> Vec<String> {
    (0..count)
        .map(|i| {
            format!(
                "INSERT Reading({}, 'sensor_{}', 'v{}')",
                i % 97,
                i % 13,
                (i * 31) % 1000
            )
        })
        .collect()
}

/// A loader-shaped stream: realistic label payloads drawn from a bounded
/// vocabulary (16 racks × 23 statuses), repeated across the batch.
fn bulk_load_lines(count: usize) -> Vec<String> {
    (0..count)
        .map(|i| {
            format!(
                "INSERT Reading({}, 'rack_{:02}_shelf_{:02}', 'status_nominal_{:02}')",
                i,
                i % 16,
                (i / 16) % 4,
                i % 23
            )
        })
        .collect()
}

fn mutations(db: &Database, lines: &[String]) -> Vec<Mutation> {
    lines
        .iter()
        .map(|line| parse_mutation(line, db).expect("valid line"))
        .collect()
}

/// The textual ingest path as the server runs it: scan the byte stream
/// for newlines, materialise each line as an owned `String` (what the
/// connection decoder hands the session), and parse it.
fn ingest_textual(bytes: &[u8], db: &Database) -> Vec<Mutation> {
    bytes
        .split(|&b| b == b'\n')
        .filter(|line| !line.is_empty())
        .map(|line| {
            let text = String::from_utf8_lossy(line).into_owned();
            parse_mutation(&text, db).expect("valid line")
        })
        .collect()
}

fn bench_stream(
    c: &mut Criterion,
    group_name: &str,
    make: fn(usize) -> Vec<String>,
    sizes: &[usize],
) {
    let mut group = c.benchmark_group(group_name);
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(300));
    let db = serving_database();
    for &batch in sizes {
        let lines = make(batch);
        let text_bytes = lines.join("\n").into_bytes();
        let ops = mutations(&db, &lines);
        let frame = encode_bulk(&db, &ops);
        // Both arms produce the same `Vec<Mutation>`, so its destruction
        // cost is an identical additive constant; `iter_with_large_drop`
        // keeps it out of the timed window on both sides and the numbers
        // compare the ingest paths themselves.
        group.bench_with_input(BenchmarkId::new("textual", batch), &batch, |b, _| {
            b.iter_with_large_drop(|| criterion::black_box(ingest_textual(&text_bytes, &db)));
        });
        group.bench_with_input(BenchmarkId::new("decode_bulk", batch), &batch, |b, _| {
            b.iter_with_large_drop(|| {
                criterion::black_box(decode_bulk(&frame, &db).expect("valid frame"))
            });
        });
    }
    group.finish();
}

fn bench_ingest(c: &mut Criterion) {
    bench_stream(c, "frame/ingest", ingest_lines, &[64, 512]);
}

fn bench_bulk_load(c: &mut Criterion) {
    // 4096 ops ≈ one loader chunk (~94 KiB frame, far under the 8 MiB
    // cap); the dictionary cost then vanishes into the op stream.
    bench_stream(c, "frame/bulk_load", bulk_load_lines, &[512, 4096]);
}

/// Frame construction: what a bulk-loading client (or `cdr-replay
/// --bulk`) pays to build each frame before shipping it.
fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("frame/encode");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(300));
    let db = serving_database();
    for &batch in &[64usize, 512] {
        let ops = mutations(&db, &ingest_lines(batch));
        group.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, _| {
            b.iter(|| criterion::black_box(encode_bulk(&db, &ops)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ingest, bench_bulk_load, bench_encode);
criterion_main!(benches);
