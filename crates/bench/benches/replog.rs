//! Criterion bench for the replicated command log: record codec
//! throughput, framed disk appends (the per-mutation overhead a
//! `--log-dir` primary pays on its write path), and snapshot
//! encode/decode at 10k and 100k facts (the cost of a compaction-time
//! snapshot and of a follower bootstrap / cold restart, respectively).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use cdr_core::replog::{frame, LogOp, LogRecord, LogWriter};
use cdr_repairdb::{Database, KeySet, Mutation, Schema, Snapshot};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

static LOG_SEQ: AtomicU64 = AtomicU64::new(0);

/// A dense `facts`-fact database: `facts / 2` conflicting two-fact `R`
/// blocks — the shape a compaction-time snapshot captures.
fn dense_db(facts: usize) -> (Database, KeySet) {
    let mut schema = Schema::new();
    schema.add_relation("R", 2).expect("fresh schema");
    let keys = KeySet::builder(&schema)
        .key("R", 1)
        .expect("valid key")
        .build();
    let mut db = Database::new(schema);
    for k in 0..facts / 2 {
        db.insert_parsed(&format!("R({k}, 'a')")).expect("valid");
        db.insert_parsed(&format!("R({k}, 'b')")).expect("valid");
    }
    (db, keys)
}

/// The record a typical replicated mutation produces.
fn insert_record(db: &Database, offset: u64) -> LogRecord {
    let fact = db.parse_fact("R(17, 'replicated')").expect("valid fact");
    LogRecord {
        epoch: 3,
        offset,
        op: LogOp::Mutation(Mutation::Insert(fact)),
    }
}

fn bench_record_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("replog/record");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(300));
    let (db, _) = dense_db(64);
    let record = insert_record(&db, 123_456);
    let payload = record.encode();
    let schema = db.schema().clone();

    group.bench_function("encode", |b| b.iter(|| record.encode()));
    group.bench_function("decode", |b| {
        b.iter(|| LogRecord::decode(&payload, &schema).expect("round trip"))
    });
    group.bench_function("frame", |b| b.iter(|| frame(&payload)));
    group.finish();
}

fn bench_framed_append(c: &mut Criterion) {
    let mut group = c.benchmark_group("replog/append");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(300));
    let (db, _) = dense_db(64);
    let payload = insert_record(&db, 0).encode();

    let path = std::env::temp_dir().join(format!(
        "cdr-replog-bench-{}-{}.log",
        std::process::id(),
        LOG_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let mut writer = LogWriter::open(&path).expect("open bench log");
    group.bench_function("framed_record", |b| {
        b.iter(|| writer.append(&payload).expect("append"))
    });
    writer.truncate().expect("truncate bench log");
    drop(writer);
    std::fs::remove_file(&path).ok();
    group.finish();
}

fn bench_snapshot_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("replog/snapshot");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(500));

    for facts in [10_000usize, 100_000] {
        let (db, keys) = dense_db(facts);
        let snapshot = Snapshot {
            epoch: 1,
            offset: 42,
            generation: 7,
            rel_generations: vec![7],
            db,
            keys,
        };
        let bytes = snapshot.encode().expect("dense images encode");
        group.bench_function(BenchmarkId::new("encode", facts), |b| {
            b.iter(|| snapshot.encode().expect("dense images encode"))
        });
        group.bench_function(BenchmarkId::new("decode", facts), |b| {
            b.iter(|| Snapshot::decode(&bytes).expect("round trip"))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_record_codec,
    bench_framed_append,
    bench_snapshot_codec
);
criterion_main!(benches);
