//! Criterion bench for the compaction subsystem: the in-place
//! [`Database::compact`] + [`BlockPartition::rebuild_compacted`] path
//! versus the only pre-compaction alternative — materialising a fresh
//! database from the live fact set and rebuilding the partition from
//! scratch.
//!
//! Both arms are measured on a "dirty" database at 10k and 100k live
//! facts where half the id space is tombstones and half the slot table
//! is retired (the state a delete-heavy serving session reaches), and
//! both end by recomputing `∏ |Bᵢ|` — the cross-check the engine performs
//! after a compaction.  The compact arm additionally pays a full clone of
//! the dirty structures *per iteration* (compaction mutates in place and
//! criterion's `iter` has no per-iteration setup hook), so its measured
//! medians are an upper bound on the true in-place cost.

use std::time::Duration;

use cdr_repairdb::{count_repairs, BlockPartition, Database, KeySet, Mutation, Schema};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// A churned database with `live` live facts: `live / 2` conflicting
/// blocks of two facts each, plus `live` transient single-fact keys that
/// were inserted and deleted again — leaving `live` tombstones and
/// `live` retired slots behind.
fn dirty_workload(live: usize) -> (Database, BlockPartition, KeySet) {
    let mut schema = Schema::new();
    schema.add_relation("R", 2).expect("fresh schema");
    let keys = KeySet::builder(&schema)
        .key("R", 1)
        .expect("valid key")
        .build();
    let mut db = Database::new(schema);
    let mut blocks = BlockPartition::new(&db, &keys);
    let apply = |db: &mut Database, blocks: &mut BlockPartition, m: Mutation| {
        let applied = db.apply(m).expect("workload mutations apply");
        blocks.apply(&keys, &applied);
    };
    for k in 0..live / 2 {
        for payload in ["a", "b"] {
            let fact = db
                .parse_fact(&format!("R({k}, '{payload}')"))
                .expect("valid fact");
            apply(&mut db, &mut blocks, Mutation::Insert(fact));
        }
    }
    for k in 0..live {
        let fact = db
            .parse_fact(&format!("R({}, 'transient')", 1_000_000 + k))
            .expect("valid fact");
        apply(&mut db, &mut blocks, Mutation::Insert(fact.clone()));
        let id = db.fact_id(&fact).expect("just inserted");
        apply(&mut db, &mut blocks, Mutation::Delete(id));
    }
    assert_eq!(db.len(), live);
    assert_eq!(db.tombstone_count() as usize, live);
    assert_eq!(blocks.slot_count() - blocks.len(), live);
    (db, blocks, keys)
}

fn bench_compact_vs_rebuild(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/compaction");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(500));
    for &live in &[10_000usize, 100_000] {
        let (db, blocks, keys) = dirty_workload(live);

        // In-place compaction (plus the per-iteration clone, see module
        // docs) and the engine's post-compaction total cross-check.
        group.bench_function(BenchmarkId::new("compact", live), |b| {
            b.iter(|| {
                let mut db = db.clone();
                let mut blocks = blocks.clone();
                let report = db.compact();
                blocks.rebuild_compacted(&report);
                count_repairs(&blocks)
            });
        });

        // The pre-compaction alternative: a fresh database over the live
        // fact set and a from-scratch partition + total.
        group.bench_function(BenchmarkId::new("full_rebuild", live), |b| {
            b.iter(|| {
                let fresh = db.subset(db.iter().map(|(id, _)| id));
                let blocks = BlockPartition::new(&fresh, &keys);
                count_repairs(&blocks)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_compact_vs_rebuild);
criterion_main!(benches);
