//! Criterion bench for the [`RepairEngine`] plan cache: the same exact
//! count served cold (a fresh engine per run, so every run replans — the
//! old `RepairCounter` behaviour) vs warm (one shared engine, so every run
//! after the first hits the plan cache and skips the UCQ rewrite, the
//! keywidth computation and the certificate enumeration).

use cdr_bench::{uniform_workload, union_workload};
use cdr_core::{CountRequest, RepairEngine};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_cold_vs_warm_exact(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/plan_cache_exact");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(500));
    for &blocks in &[100usize, 400, 1600] {
        let (db, keys, q) = union_workload(blocks, 3, 3, 47);
        let request = CountRequest::exact(q);
        group.bench_with_input(BenchmarkId::new("cold", blocks), &blocks, |b, _| {
            b.iter(|| {
                let engine = RepairEngine::new(db.clone(), keys.clone());
                engine.run(&request).unwrap()
            });
        });
        let engine = RepairEngine::new(db.clone(), keys.clone());
        engine.run(&request).unwrap();
        group.bench_with_input(BenchmarkId::new("warm", blocks), &blocks, |b, _| {
            b.iter(|| engine.run(&request).unwrap());
        });
    }
    group.finish();
}

fn bench_cold_vs_warm_frequency(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/plan_cache_frequency");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(500));
    let (db, keys, q) = uniform_workload(800, 3, 3, 53);
    let request = CountRequest::frequency(q);
    group.bench_function(BenchmarkId::new("cold", 800), |b| {
        b.iter(|| {
            let engine = RepairEngine::new(db.clone(), keys.clone());
            engine.run(&request).unwrap()
        });
    });
    let engine = RepairEngine::new(db.clone(), keys.clone());
    engine.run(&request).unwrap();
    group.bench_function(BenchmarkId::new("warm", 800), |b| {
        b.iter(|| engine.run(&request).unwrap());
    });
    group.finish();
}

fn bench_batch_shares_plans(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/run_batch");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(500));
    let (db, keys, q) = union_workload(400, 3, 3, 59);
    let requests: Vec<CountRequest> = (0..16).map(|_| CountRequest::exact(q.clone())).collect();
    let engine = RepairEngine::new(db, keys);
    group.bench_function(BenchmarkId::from_parameter("16x_same_query"), |b| {
        b.iter(|| engine.run_batch(&requests));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_cold_vs_warm_exact,
    bench_cold_vs_warm_frequency,
    bench_batch_shares_plans
);
criterion_main!(benches);
