//! Criterion bench for mutable engine sessions: incremental
//! [`RepairEngine::apply`] plus a warm re-query versus rebuilding the whole
//! engine on the mutated database (the only option before the
//! `EngineCommand` API).
//!
//! Three flavours on a 10k-fact database with single-block edits:
//!
//! * `untouched_plan` — the mutation hits a relation the query never
//!   mentions, so the cached plan (and its certificate boxes) survives and
//!   only the touched block and the running total move;
//! * `touched_plan` — the mutation hits the query's own relation, so the
//!   warm re-query lazily re-derives the certificate boxes;
//! * `rebuild` — the pre-redesign baseline: a fresh engine per edit
//!   (partition, total and plan recomputed from scratch).

use std::sync::Arc;

use cdr_core::{CountRequest, RepairEngine};
use cdr_query::parse_query;
use cdr_repairdb::{Database, Fact, KeySet, Mutation, Schema};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

/// A 2·`blocks`-fact database: `blocks` conflicting `R` blocks of two
/// facts, plus a small consistent `Audit` relation the queries ignore.
fn mutation_workload(blocks: usize) -> (Database, KeySet) {
    let mut schema = Schema::new();
    schema.add_relation("R", 2).expect("fresh schema");
    schema.add_relation("Audit", 2).expect("fresh schema");
    let keys = KeySet::builder(&schema)
        .key("R", 1)
        .expect("valid key")
        .key("Audit", 1)
        .expect("valid key")
        .build();
    let mut db = Database::new(schema);
    for k in 0..blocks {
        db.insert_parsed(&format!("R({k}, 'a')"))
            .expect("valid fact");
        db.insert_parsed(&format!("R({k}, 'b')"))
            .expect("valid fact");
    }
    db.insert_parsed("Audit(0, 'boot')").expect("valid fact");
    (db, keys)
}

/// One insert + warm query + one delete + warm query (self-resetting), so
/// each iteration measures two single-block edits with their re-queries.
fn edit_and_requery(engine: &mut RepairEngine, fact: &Fact, request: &CountRequest) {
    engine
        .apply(Mutation::Insert(fact.clone()))
        .expect("insert applies");
    engine.run(request).expect("query succeeds");
    let id = engine
        .database()
        .fact_id(fact)
        .expect("the fact was just inserted");
    engine.apply(Mutation::Delete(id)).expect("delete applies");
    engine.run(request).expect("query succeeds");
}

fn bench_incremental_vs_rebuild(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/mutation");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(500));
    // 5_000 R-blocks of 2 facts each: the 10k-fact database of the
    // acceptance bar.
    let blocks = 5_000usize;
    let (db, keys) = mutation_workload(blocks);
    let db = Arc::new(db);
    let keys = Arc::new(keys);
    let query = parse_query("R(0, 'a') OR R(1, 'a') OR R(2, 'a')").expect("valid query");
    let request = CountRequest::exact(query);

    // Incremental, plan untouched: edit the Audit relation.
    {
        let mut engine = RepairEngine::from_arcs(Arc::clone(&db), Arc::clone(&keys));
        engine.run(&request).expect("warm the plan");
        let fact = engine
            .database()
            .parse_fact("Audit(999, 'late')")
            .expect("valid fact");
        group.bench_function(
            BenchmarkId::new("incremental_untouched_plan", blocks),
            |b| {
                b.iter(|| edit_and_requery(&mut engine, &fact, &request));
            },
        );
    }

    // Incremental, plan invalidated: edit the query's own relation.
    {
        let mut engine = RepairEngine::from_arcs(Arc::clone(&db), Arc::clone(&keys));
        engine.run(&request).expect("warm the plan");
        let fact = engine
            .database()
            .parse_fact("R(0, 'late')")
            .expect("valid fact");
        group.bench_function(BenchmarkId::new("incremental_touched_plan", blocks), |b| {
            b.iter(|| edit_and_requery(&mut engine, &fact, &request));
        });
    }

    // Full rebuild: a fresh engine (partition + total + plan) per edit,
    // twice per iteration to match the two edits above.
    group.bench_function(BenchmarkId::new("rebuild", blocks), |b| {
        b.iter(|| {
            for _ in 0..2 {
                let engine = RepairEngine::from_arcs(Arc::clone(&db), Arc::clone(&keys));
                engine.run(&request).expect("query succeeds");
            }
        });
    });
    group.finish();
}

fn bench_apply_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/apply_throughput");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(500));
    for &blocks in &[1_000usize, 5_000] {
        let (db, keys) = mutation_workload(blocks);
        let mut engine = RepairEngine::new(db, keys);
        let fact = engine
            .database()
            .parse_fact("R(0, 'c')")
            .expect("valid fact");
        group.bench_with_input(
            BenchmarkId::new("insert_delete_pair", blocks),
            &blocks,
            |b, _| {
                b.iter(|| {
                    engine
                        .apply(Mutation::Insert(fact.clone()))
                        .expect("insert applies");
                    let id = engine.database().fact_id(&fact).expect("live");
                    engine.apply(Mutation::Delete(id)).expect("delete applies");
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_incremental_vs_rebuild,
    bench_apply_throughput
);
criterion_main!(benches);
