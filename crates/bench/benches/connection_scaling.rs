//! Criterion bench for connection scaling: the cost an active client
//! pays for a `STATS` round-trip while the server multiplexes a crowd of
//! mostly-idle connections.  Under the readiness-driven event loop the
//! idle crowd costs file descriptors in one poll set — not threads — so
//! the round-trip should barely move between the empty server and the
//! 200-connection one.  The held connections are opened *outside* the
//! timed loop; only the round-trip is measured.

use cdr_core::RepairEngine;
use cdr_server::{client::Client, Server, ServerConfig};
use cdr_workloads::employee_example;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

const IDLE_CROWD: usize = 200;

fn boot() -> Server {
    let (db, keys) = employee_example();
    Server::start(RepairEngine::new(db, keys), ServerConfig::default()).expect("in-process server")
}

/// Opens `count` connections and proves each is served (one `STATS`
/// round-trip apiece) before handing them back to idle.
fn idle_crowd(server: &Server, count: usize) -> Vec<Client> {
    (0..count)
        .map(|_| {
            let mut client = Client::connect(server.addr()).expect("idle connection");
            let reply = client.send("STATS").expect("idle STATS");
            assert!(reply.starts_with("OK STATS "), "unexpected reply {reply}");
            client
        })
        .collect()
}

fn bench_stats_round_trip(c: &mut Criterion) {
    let mut group = c.benchmark_group("conn/stats_rtt");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(300));
    for &idle in &[0usize, IDLE_CROWD] {
        let server = boot();
        let held = idle_crowd(&server, idle);
        let mut active = Client::connect(server.addr()).expect("active connection");
        group.bench_with_input(BenchmarkId::new("idle", idle), &idle, |b, _| {
            b.iter(|| {
                let reply = active.send("STATS").expect("round trip");
                criterion::black_box(reply);
            });
        });
        drop(active);
        drop(held);
        server.shutdown();
        server.join();
    }
    group.finish();
}

criterion_group!(benches, bench_stats_round_trip);
criterion_main!(benches);
