//! Criterion bench for the replication feed codecs: a follower
//! catch-up over textual `REPL RECORD <hex>` lines versus framed binary
//! record batches (one CRC per batch instead of one checksummed hex
//! line per record), at 4k- and 64k-record log suffixes, plus a
//! snapshot bootstrap decoded from hex chunk lines versus binary
//! frames.  The wire-byte footprint of both encodings is printed
//! alongside, since the feed's win is bytes as much as cycles.
//!
//! The catch-up arms cover exactly the layers the encodings differ in —
//! rendering the stored payloads onto the wire and getting verified
//! payload bytes back off it.  `LogRecord` decoding and engine apply
//! are byte-identical on both feeds (the parity suite's invariant), are
//! benchmarked in `replog/record`, and would otherwise just dilute the
//! comparison; the `apply` group times that shared tail here too, so
//! the end-to-end picture stays one file away.

use std::time::Duration;

use cdr_core::replog::{
    chunk_header, decode_record_batch, encode_record_batch, frame, from_hex, to_hex,
    unwrap_checksummed, verify_chunk, wrap_checksummed, LogOp, LogRecord,
};
use cdr_repairdb::{Database, FactId, KeySet, Mutation, Schema, Snapshot};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// Records per `REPL FETCH` round trip (the tailer's default batch).
const FETCH: usize = 64;

/// Bytes of snapshot per textual `REPL CHUNK` line.
const HEX_CHUNK: usize = 8192;

/// Bytes of snapshot per binary chunk frame.
const BIN_CHUNK: usize = 64 * 1024;

fn feed_schema() -> (Database, KeySet) {
    let mut schema = Schema::new();
    schema.add_relation("R", 2).expect("fresh schema");
    let keys = KeySet::builder(&schema)
        .key("R", 1)
        .expect("valid key")
        .build();
    (Database::new(schema), keys)
}

/// The encoded payloads of an `n`-record churn suffix — what a primary
/// holds in memory and a stale follower must pull.  Three short-string
/// inserts to one delete, mirroring the replication-parity trace.
fn suffix_payloads(db: &Database, n: usize) -> Vec<Vec<u8>> {
    (0..n)
        .map(|i| {
            let op = if i % 4 == 3 {
                LogOp::Mutation(Mutation::Delete(FactId::new(i % 48)))
            } else {
                let fact = db
                    .parse_fact(&format!("R({}, 'p{i}')", i % 16))
                    .expect("valid fact");
                LogOp::Mutation(Mutation::Insert(fact))
            };
            LogRecord {
                epoch: 1,
                offset: i as u64,
                op,
            }
            .encode()
        })
        .collect()
}

/// Wire bytes an `n`-record catch-up costs per encoding: reply headers
/// plus hex record lines, versus reply headers plus batch frames.
fn wire_footprint(payloads: &[Vec<u8>]) -> (u64, u64) {
    let (mut text, mut bin) = (0u64, 0u64);
    for batch in payloads.chunks(FETCH) {
        let header = format!(
            "OK REPL RECORDS n={} next={} end={}\n",
            batch.len(),
            payloads.len(),
            payloads.len()
        );
        text += header.len() as u64;
        for payload in batch {
            text += "REPL RECORD \n".len() as u64 + to_hex(&wrap_checksummed(payload)).len() as u64;
        }
        let encoded = encode_record_batch(batch);
        let header = format!(
            "OK REPL BATCH {} n={} next={} end={}\n",
            encoded.len(),
            batch.len(),
            payloads.len(),
            payloads.len()
        );
        bin += header.len() as u64 + encoded.len() as u64;
    }
    (text, bin)
}

fn bench_catchup(c: &mut Criterion) {
    let mut group = c.benchmark_group("repl_feed/catchup");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(300));
    let (db, _) = feed_schema();

    for suffix in [4_096usize, 65_536] {
        let payloads = suffix_payloads(&db, suffix);
        let (text, bin) = wire_footprint(&payloads);
        println!(
            "repl_feed: suffix={suffix} wire bytes text={text} bin={bin} ratio={:.2}x",
            text as f64 / bin as f64
        );

        // Textual leg, both ends of the wire as the server and tailer
        // really run them: the primary checksums and hex-encodes each
        // record into its own `REPL RECORD` line (an owned `String` per
        // line — the reply the session hands the event loop) and
        // flattens the reply onto the wire; the follower materialises
        // each line as an owned `String` (what `read_line` hands back)
        // and reverses all three layers per record to recover verified
        // payload bytes.
        group.bench_function(BenchmarkId::new("text", suffix), |b| {
            b.iter(|| {
                let mut shipped = 0usize;
                for (i, batch) in payloads.chunks(FETCH).enumerate() {
                    // Serve: render the reply, then flatten it.
                    let mut lines = vec![format!(
                        "OK REPL RECORDS n={} next={} end={}",
                        batch.len(),
                        (i + 1) * FETCH,
                        payloads.len()
                    )];
                    for payload in batch {
                        lines.push(format!(
                            "REPL RECORD {}",
                            to_hex(&wrap_checksummed(payload))
                        ));
                    }
                    let mut wire = Vec::new();
                    for line in &lines {
                        wire.extend_from_slice(line.as_bytes());
                        wire.push(b'\n');
                    }
                    // Tail: one owned line at a time.
                    for raw in wire.split(|&b| b == b'\n').filter(|l| !l.is_empty()) {
                        let line = String::from_utf8_lossy(raw).into_owned();
                        let Some(hex) = line.strip_prefix("REPL RECORD ") else {
                            continue; // the header line
                        };
                        let bytes = from_hex(hex).expect("own hex");
                        let payload = unwrap_checksummed(&bytes).expect("own checksum");
                        shipped += payload.len();
                    }
                }
                shipped
            })
        });

        // Binary leg: the primary frames each batch once (one CRC over
        // the lot) behind one header line; the follower parses the
        // header, slices the announced frame off the wire, and takes
        // the verified payloads straight out of it.
        group.bench_function(BenchmarkId::new("bin", suffix), |b| {
            b.iter(|| {
                let mut shipped = 0usize;
                for (i, batch) in payloads.chunks(FETCH).enumerate() {
                    // Serve: one header line, then the raw frame.
                    let encoded = encode_record_batch(batch);
                    let mut wire = format!(
                        "OK REPL BATCH {} n={} next={} end={}\n",
                        encoded.len(),
                        batch.len(),
                        (i + 1) * FETCH,
                        payloads.len()
                    )
                    .into_bytes();
                    wire.extend_from_slice(&encoded);
                    // Tail: header line, then the announced bytes.
                    let eol = wire.iter().position(|&b| b == b'\n').expect("own header");
                    let header = String::from_utf8_lossy(&wire[..eol]).into_owned();
                    let len: usize = header
                        .strip_prefix("OK REPL BATCH ")
                        .and_then(|rest| rest.split_whitespace().next())
                        .and_then(|token| token.parse().ok())
                        .expect("own header");
                    let frame = &wire[eol + 1..eol + 1 + len];
                    for payload in decode_record_batch(frame).expect("own frame") {
                        shipped += payload.len();
                    }
                }
                shipped
            })
        });
    }
    group.finish();
}

/// The shared tail both feeds pay after the codec: decoding each
/// verified payload into a `LogRecord` ready for engine apply.
fn bench_apply(c: &mut Criterion) {
    let mut group = c.benchmark_group("repl_feed/apply");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(300));
    let (db, _) = feed_schema();
    let schema = db.schema().clone();
    let payloads = suffix_payloads(&db, 4_096);
    group.bench_function(BenchmarkId::new("decode_records", 4_096), |b| {
        b.iter(|| {
            let mut applied = 0u64;
            for payload in &payloads {
                let record = LogRecord::decode(payload, &schema).expect("own record");
                applied += record.offset & 1;
            }
            applied
        })
    });
    group.finish();
}

fn bench_bootstrap(c: &mut Criterion) {
    let mut group = c.benchmark_group("repl_feed/bootstrap");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(500));

    let (mut db, keys) = feed_schema();
    for k in 0..50_000 {
        db.insert_parsed(&format!("R({k}, 'a')")).expect("valid");
        db.insert_parsed(&format!("R({k}, 'b')")).expect("valid");
    }
    let snapshot = Snapshot {
        epoch: 1,
        offset: 42,
        generation: 7,
        rel_generations: vec![7],
        db,
        keys,
    };
    let bytes = snapshot.encode().expect("dense images encode");
    let facts = 100_000usize;

    // Pre-render both served forms: the bench times the follower's side
    // of the bootstrap — reassembling and decoding the image.
    let hex_chunks: Vec<String> = bytes.chunks(HEX_CHUNK).map(to_hex).collect();
    let bin_chunks: Vec<Vec<u8>> = bytes.chunks(BIN_CHUNK).map(frame).collect();
    println!(
        "repl_feed: bootstrap={} bytes, wire text={} bin={}",
        bytes.len(),
        hex_chunks.iter().map(|c| c.len() + 12).sum::<usize>(),
        bin_chunks.iter().map(Vec::len).sum::<usize>()
    );

    group.bench_function(BenchmarkId::new("text", facts), |b| {
        b.iter(|| {
            let mut image = Vec::with_capacity(bytes.len());
            for chunk in &hex_chunks {
                image.extend_from_slice(&from_hex(chunk).expect("own hex"));
            }
            Snapshot::decode(&image).expect("own image")
        })
    });
    group.bench_function(BenchmarkId::new("bin", facts), |b| {
        b.iter(|| {
            let mut image = Vec::with_capacity(bytes.len());
            for chunk in &bin_chunks {
                let (len, crc) = chunk_header(&chunk[..8]).expect("own header");
                let payload = &chunk[8..8 + len];
                verify_chunk(crc, payload).expect("own checksum");
                image.extend_from_slice(payload);
            }
            Snapshot::decode(&image).expect("own image")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_catchup, bench_apply, bench_bootstrap);
criterion_main!(benches);
