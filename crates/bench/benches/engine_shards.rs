//! Criterion bench for the sharded scatter–gather engine.
//!
//! Two suites over the same conflicting-block workload at 1/2/4/8
//! shards:
//!
//! * `disjoint_writers` — four writer threads, each looping
//!   insert/delete pairs over keys pinned to its own shard.  On one shard
//!   every apply serialises on the single shard lock; with shards the
//!   writers only serialise on the router's short id-assignment commit,
//!   so throughput scales with cores × shards.
//! * `count` — warm scatter–gather query latency: the gathered view is
//!   already drained, so this prices the read path's routing overhead
//!   (drain check + gathered read lock) on top of the cached plan.
//!
//! Writers never drain the gathered view: the mutation log accumulates
//! like it would on a write-heavy server between queries, which is the
//! throughput being claimed.
//!
//! Reading the numbers: the speedup has two independent sources — (a)
//! thread parallelism across shard locks, worth up to
//! `min(writers, shards, cores)`×, and (b) smaller per-shard slices,
//! whose per-apply block-product update touches `blocks/N` limbs instead
//! of `blocks`.  On a single-core host only (b) is observable (the four
//! writers timeslice one CPU), which caps the measured 4-shard ratio
//! around 1.5× regardless of lock design; the committed baseline records
//! the host it was measured on, and the ≥2× disjoint-writer target is a
//! multi-core claim.

use std::time::Duration;

use cdr_core::{CountRequest, ShardedEngine};
use cdr_query::parse_query;
use cdr_repairdb::{Fact, Mutation};
use cdr_workloads::conflicting_blocks;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const WRITERS: usize = 4;
/// Enough pairs per iteration that the four `thread::scope` spawns and
/// joins are amortised into the noise.
const PAIRS_PER_WRITER: usize = 64;

fn bench_disjoint_writers(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/shards/disjoint_writers");
    group.sample_size(10);
    // Writers never drain, so the router's replay log grows for the
    // whole measurement; a short window keeps the accumulated log from
    // dominating the late samples (the drift would penalise whichever
    // shard count criterion hands the most iterations).
    group.measurement_time(Duration::from_secs(1));
    group.warm_up_time(Duration::from_millis(300));
    let blocks = 4_096usize;
    for &shards in &SHARD_COUNTS {
        let (db, keys) = conflicting_blocks(blocks, 2);
        let engine = ShardedEngine::new(db, keys, shards);
        let parse_db = engine.parse_database();
        // Disjoint keys alone are not disjoint *shards*: the route hash
        // spreads a contiguous key range over every shard, so naive
        // striping would have all four writers contending on all four
        // shard locks.  Instead, pin each writer to one shard and give
        // writers that share a shard (shards < WRITERS) disjoint slices
        // of that shard's key pool.
        let mut keys_by_shard: Vec<Vec<Fact>> = vec![Vec::new(); shards];
        for k in 0..blocks {
            let fact = parse_db
                .parse_fact(&format!("R({k}, 'c')"))
                .expect("valid fact");
            keys_by_shard[engine.shard_of(&fact)].push(fact);
        }
        let fact_sets: Vec<Vec<Fact>> = (0..WRITERS)
            .map(|w| {
                let pool = &keys_by_shard[w % shards];
                let sharers = WRITERS.div_ceil(shards).min(WRITERS);
                let chunk = pool.len() / sharers;
                let slice = &pool[(w / shards) * chunk..(w / shards + 1) * chunk];
                (0..PAIRS_PER_WRITER)
                    .map(|i| slice[i % slice.len()].clone())
                    .collect()
            })
            .collect();
        group.bench_function(BenchmarkId::from_parameter(shards), |b| {
            b.iter(|| {
                std::thread::scope(|scope| {
                    for facts in &fact_sets {
                        let engine = &engine;
                        scope.spawn(move || {
                            for fact in facts {
                                let applied = engine
                                    .apply(Mutation::Insert(fact.clone()))
                                    .expect("insert applies");
                                engine
                                    .apply(Mutation::Delete(applied.id))
                                    .expect("delete applies");
                            }
                        });
                    }
                });
            });
        });
    }
    group.finish();
}

fn bench_scatter_gather_count(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/shards/count");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(500));
    for &shards in &SHARD_COUNTS {
        let (db, keys) = conflicting_blocks(4_096, 2);
        let engine = ShardedEngine::new(db, keys, shards);
        let query = parse_query("R(0, 'v0') OR R(1, 'v0') OR R(2, 'v0')").expect("valid query");
        let request = CountRequest::exact(query);
        engine.run(&request).expect("warm the plan");
        group.bench_function(BenchmarkId::from_parameter(shards), |b| {
            b.iter(|| engine.run(&request).expect("query succeeds"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_disjoint_writers, bench_scatter_gather_count);
criterion_main!(benches);
