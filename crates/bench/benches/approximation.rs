//! Criterion benches behind experiments E6 and E7: the paper's FPRAS vs
//! the Karp–Luby baseline, across ε and database size, driven through a
//! warm [`RepairEngine`] so only the sampling itself is measured.

use cdr_bench::union_workload;
use cdr_core::{CountRequest, RepairEngine, Strategy};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn request(q: &cdr_query::Query, epsilon: f64) -> CountRequest {
    CountRequest::approximate(q.clone(), epsilon, 0.05)
        .with_seed(7)
        .with_sample_cap(100_000)
}

fn bench_fpras_vs_karp_luby(c: &mut Criterion) {
    let mut group = c.benchmark_group("approx/fpras_vs_karp_luby");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(500));
    for &blocks in &[50usize, 200, 800] {
        let (db, keys, q) = union_workload(blocks, 3, 3, 17);
        let engine = RepairEngine::new(db, keys);
        let fpras = request(&q, 0.2);
        let kl = request(&q, 0.2).with_strategy(Strategy::KarpLuby);
        group.bench_with_input(BenchmarkId::new("fpras", blocks), &blocks, |b, _| {
            b.iter(|| engine.run(&fpras).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("karp_luby", blocks), &blocks, |b, _| {
            b.iter(|| engine.run(&kl).unwrap());
        });
    }
    group.finish();
}

fn bench_fpras_epsilon_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("approx/fpras_epsilon");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(500));
    let (db, keys, q) = union_workload(100, 3, 3, 19);
    let engine = RepairEngine::new(db, keys);
    for &epsilon in &[0.5f64, 0.2, 0.1] {
        let req = request(&q, epsilon);
        group.bench_with_input(BenchmarkId::from_parameter(epsilon), &epsilon, |b, _| {
            b.iter(|| engine.run(&req).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fpras_vs_karp_luby, bench_fpras_epsilon_sweep);
criterion_main!(benches);
