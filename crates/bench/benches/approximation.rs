//! Criterion benches behind experiments E6 and E7: the paper's FPRAS vs
//! the Karp–Luby baseline, across ε and database size.

use cdr_bench::union_workload;
use cdr_core::{ApproxConfig, FprasEstimator, KarpLubyEstimator};
use cdr_query::rewrite_to_ucq;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn config(epsilon: f64) -> ApproxConfig {
    ApproxConfig {
        epsilon,
        delta: 0.05,
        max_samples: 100_000,
        seed: 7,
    }
}

fn bench_fpras_vs_karp_luby(c: &mut Criterion) {
    let mut group = c.benchmark_group("approx/fpras_vs_karp_luby");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(500));
    for &blocks in &[50usize, 200, 800] {
        let (db, keys, q) = union_workload(blocks, 3, 3, 17);
        let ucq = rewrite_to_ucq(&q).unwrap();
        let fpras = FprasEstimator::new(&db, &keys, &ucq).unwrap();
        let kl = KarpLubyEstimator::new(&db, &keys, &ucq).unwrap();
        group.bench_with_input(BenchmarkId::new("fpras", blocks), &blocks, |b, _| {
            b.iter(|| fpras.estimate(&config(0.2)).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("karp_luby", blocks), &blocks, |b, _| {
            b.iter(|| kl.estimate(&config(0.2)).unwrap());
        });
    }
    group.finish();
}

fn bench_fpras_epsilon_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("approx/fpras_epsilon");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(500));
    let (db, keys, q) = union_workload(100, 3, 3, 19);
    let ucq = rewrite_to_ucq(&q).unwrap();
    let fpras = FprasEstimator::new(&db, &keys, &ucq).unwrap();
    for &epsilon in &[0.5f64, 0.2, 0.1] {
        group.bench_with_input(
            BenchmarkId::from_parameter(epsilon),
            &epsilon,
            |b, &eps| {
                b.iter(|| fpras.estimate(&config(eps)).unwrap());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fpras_vs_karp_luby, bench_fpras_epsilon_sweep);
criterion_main!(benches);
