//! Experiment harness: regenerates every table recorded in EXPERIMENTS.md.
//!
//! All `#CQA` operations run through the [`RepairEngine`] request/report
//! API, so each experiment plans its queries once and repeated runs hit
//! the engine's cache.
//!
//! Usage:
//!
//! ```text
//! cargo run -p cdr-bench --release --bin experiments -- all
//! cargo run -p cdr-bench --release --bin experiments -- e6 e7
//! ```

use std::time::Instant;

use cdr_bench::{accuracy_point, header, row, uniform_workload, union_workload};
use cdr_core::{count_by_enumeration, ApproxConfig, CountRequest, RepairEngine, Strategy};
use cdr_lambda::{
    compactor_fpras, reduce_compactor_to_cqa, unfold_count, CompactOutput, Compactor, CqaCompactor,
    ExplicitCompactor,
};
use cdr_num::BigNat;
use cdr_query::{keywidth, parse_query, rewrite_to_ucq, Query};
use cdr_workloads::{
    employee_example, random_cnf3, random_disj_pos_dnf, random_forbidden_coloring,
    random_point_query_union, sensor_readings, two_source_customers, Cnf3Config, DnfConfig,
    HypergraphConfig, QueryGenConfig,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).map(|a| a.to_lowercase()).collect();
    let wants = |id: &str| args.is_empty() || args.iter().any(|a| a == id || a == "all");

    println!("# repair-count experiment harness");
    println!("# (experiment ids follow EXPERIMENTS.md; all numbers are deterministic per seed)");

    if wants("e1") {
        e1_example();
    }
    if wants("e2") {
        e2_fo_exact();
    }
    if wants("e3") {
        e3_decision();
    }
    if wants("e4") {
        e4_membership();
    }
    if wants("e5") {
        e5_reduction();
    }
    if wants("e6") {
        e6_fpras();
    }
    if wants("e7") {
        e7_baseline();
    }
    if wants("e8") {
        e8_dnf();
    }
    if wants("e9") {
        e9_coloring();
    }
    if wants("e10") {
        e10_scaling();
    }
    if wants("e11") {
        e11_lower_bound();
    }
}

fn exact_count(engine: &RepairEngine, q: &Query) -> BigNat {
    engine
        .run(&CountRequest::exact(q.clone()))
        .expect("exact count")
        .answer
        .as_count()
        .expect("count")
        .clone()
}

/// E1 — Example 1.1: 4 repairs, 2 entail the query, frequency 1/2.
fn e1_example() {
    let (db, keys) = employee_example();
    let engine = RepairEngine::new(db, keys);
    let q = parse_query("EXISTS x, y, z . Employee(1, x, y) AND Employee(2, z, y)").unwrap();
    header(
        "E1  Example 1.1 (Employee)",
        &["total repairs", "entailing Q", "frequency", "kw(Q,Sigma)"],
    );
    let frequency = engine
        .run(&CountRequest::frequency(q.clone()))
        .unwrap()
        .answer
        .as_frequency()
        .unwrap()
        .clone();
    row(&[
        engine.total_repairs().to_string(),
        exact_count(&engine, &q).to_string(),
        frequency.to_string(),
        engine.keywidth(&q).to_string(),
    ]);
}

/// E2 — Theorem 3.3 membership: the enumeration counter (the `acceptM`
/// machine) agrees with the box counter on FO-expressible positive queries
/// and handles negation where the box counter cannot.
fn e2_fo_exact() {
    let (db, keys) = employee_example();
    let engine = RepairEngine::new(db, keys);
    header(
        "E2  FO counting by repair enumeration (Theorem 3.3)",
        &["query", "enumeration", "boxes", "agree"],
    );
    for (label, text) in [
        (
            "same department",
            "EXISTS x, y, z . Employee(1, x, y) AND Employee(2, z, y)",
        ),
        ("nobody in HR", "NOT EXISTS i, n . Employee(i, n, 'HR')"),
        ("Bob certain", "EXISTS d . Employee(1, 'Bob', d)"),
    ] {
        let q = parse_query(text).unwrap();
        let by_enum = engine
            .run(&CountRequest::exact(q.clone()).with_strategy(Strategy::Enumeration))
            .unwrap()
            .answer
            .as_count()
            .unwrap()
            .clone();
        let by_boxes = if q.is_positive_existential() {
            engine
                .run(&CountRequest::exact(q.clone()).with_strategy(Strategy::CertificateBoxes))
                .unwrap()
                .answer
                .as_count()
                .unwrap()
                .to_string()
        } else {
            "n/a (FO)".to_string()
        };
        let agree = by_boxes == "n/a (FO)" || by_boxes == by_enum.to_string();
        row(&[
            label.to_string(),
            by_enum.to_string(),
            by_boxes,
            agree.to_string(),
        ]);
    }
}

/// E3 — Theorem 3.4: the certificate-based decision procedure scales
/// polynomially while agreeing with the ground truth.
fn e3_decision() {
    header(
        "E3  Decision problem #CQA>0 (Theorem 3.4)",
        &["blocks", "repairs (log10)", "decision", "time (ms)"],
    );
    for blocks in [50usize, 200, 800, 3200] {
        let (db, keys, q) = union_workload(blocks, 3, 3, 11);
        let engine = RepairEngine::new(db, keys);
        let report = engine.run(&CountRequest::decision(q)).unwrap();
        let holds = report.answer.as_bool().unwrap();
        let elapsed = report.duration.as_secs_f64() * 1000.0;
        let log10 = engine.total_repairs().ln() / std::f64::consts::LN_10;
        row(&[
            blocks.to_string(),
            format!("{log10:.0}"),
            holds.to_string(),
            format!("{elapsed:.2}"),
        ]);
    }
}

/// E4 — Theorem 5.1 membership: Algorithm 2's compactor unfolding equals
/// the exact #CQA count, for queries of keywidth 0–3.
fn e4_membership() {
    header(
        "E4  #CQA(Q,Sigma) in Lambda[kw] (Theorem 5.1, membership)",
        &["keywidth", "exact #CQA", "unfold count", "agree"],
    );
    let (db, keys) = two_source_customers(12, 2);
    let engine = RepairEngine::new(db.clone(), keys.clone());
    let queries = [
        (0usize, "TRUE"),
        (1, "Customer(0, c, 'dormant')"),
        (
            2,
            "EXISTS c, d . Customer(0, c, 'dormant') AND Customer(2, d, 'dormant')",
        ),
        (
            3,
            "EXISTS c, d, e . Customer(0, c, 'dormant') AND Customer(2, d, 'dormant') \
             AND Customer(4, e, 'active')",
        ),
    ];
    for (k, text) in queries {
        let q = parse_query(text).unwrap();
        let ucq = rewrite_to_ucq(&q).unwrap();
        let exact = exact_count(&engine, &q);
        let compactor = CqaCompactor::new(&db, &keys, &ucq).unwrap();
        let unfolded = unfold_count(&compactor, 10_000_000).unwrap();
        row(&[
            k.to_string(),
            exact.to_string(),
            unfolded.to_string(),
            (exact == unfolded).to_string(),
        ]);
    }
}

/// E5 — Theorem 5.1 hardness: the reduction from synthetic Λ\[k\] functions
/// to #CQA(Q_k, Σ_k) preserves counts for k = 0..4.
fn e5_reduction() {
    header(
        "E5  Lambda[k] -> #CQA(Q_k, Sigma_k) (Theorem 5.1, hardness)",
        &["k", "unfold count", "#CQA count", "kw(Q_k)"],
    );
    for k in 0..=4usize {
        let domains = vec![3usize; 6];
        let outputs: Vec<CompactOutput> = (0..5usize)
            .map(|c| {
                if c == 3 {
                    CompactOutput::Empty
                } else {
                    CompactOutput::pins((0..k).map(|i| ((c + 2 * i) % 6, (c + i) % 3)))
                }
            })
            .collect();
        let compactor = ExplicitCompactor::new(domains, outputs, Some(k));
        let expected = unfold_count(&compactor, 10_000_000).unwrap();
        let instance = reduce_compactor_to_cqa(&compactor).unwrap();
        let actual = instance.count(10_000_000).unwrap();
        let kw = keywidth(&instance.query, instance.db.schema(), &instance.keys);
        row(&[
            k.to_string(),
            expected.to_string(),
            actual.to_string(),
            kw.to_string(),
        ]);
    }
}

/// E6 — Theorem 6.2 / Corollary 6.4: FPRAS accuracy and sample counts as
/// epsilon shrinks.
fn e6_fpras() {
    header(
        "E6  FPRAS accuracy (Theorem 6.2 / Corollary 6.4)",
        &["epsilon", "requested t", "samples used", "rel. error"],
    );
    let (db, keys, q) = union_workload(10, 3, 3, 21);
    let engine = RepairEngine::new(db, keys);
    let exact = exact_count(&engine, &q);
    for epsilon in [0.5, 0.2, 0.1, 0.05] {
        let report = engine
            .run(
                &CountRequest::approximate(q.clone(), epsilon, 0.05)
                    .with_seed(99)
                    .with_sample_cap(2_000_000),
            )
            .unwrap();
        let estimate = report.answer.as_estimate().unwrap();
        row(&[
            format!("{epsilon}"),
            report.samples_requested.to_string(),
            report.samples_used.to_string(),
            format!("{:.4}", estimate.relative_error(&exact)),
        ]);
    }
}

/// E7 — Section 6 discussion: natural-sample-space FPRAS vs the
/// Karp–Luby/\[5\]-style estimator — accuracy, samples and time.
fn e7_baseline() {
    header(
        "E7  FPRAS vs Karp-Luby baseline",
        &[
            "workload",
            "exact",
            "fpras err",
            "kl err",
            "fpras ms",
            "kl ms",
        ],
    );
    let workloads: Vec<(&str, _, _, _)> = vec![
        {
            let (db, keys, q) = union_workload(10, 3, 3, 31);
            ("uniform 10x3", db, keys, q)
        },
        {
            let (db, keys) = two_source_customers(24, 3);
            let q = parse_query(
                "Customer(0, c, 'dormant') OR Customer(3, d, 'dormant') OR Customer(9, e, 'dormant')",
            )
            .unwrap();
            ("integration", db, keys, q)
        },
        {
            let (db, keys) = sensor_readings(60, 10, 5);
            // Sensor 0 at tick 0 and sensor 3 at tick 1 both have the
            // conflicting readings {0, 5, 10}; ask for one specific choice.
            let q = parse_query("Reading(0, 0, 5) AND Reading(3, 1, 10)").unwrap();
            ("sensors", db, keys, q)
        },
    ];
    for (label, db, keys, q) in workloads {
        let engine = RepairEngine::new(db, keys);
        let exact = exact_count(&engine, &q);
        let request = CountRequest::approximate(q.clone(), 0.1, 0.05)
            .with_seed(5)
            .with_sample_cap(300_000);
        let fpras = engine.run(&request).unwrap();
        let kl = engine
            .run(&request.clone().with_strategy(Strategy::KarpLuby))
            .unwrap();
        row(&[
            label.to_string(),
            exact.to_string(),
            format!(
                "{:.4}",
                fpras.answer.as_estimate().unwrap().relative_error(&exact)
            ),
            format!(
                "{:.4}",
                kl.answer.as_estimate().unwrap().relative_error(&exact)
            ),
            format!("{:.1}", fpras.duration.as_secs_f64() * 1000.0),
            format!("{:.1}", kl.duration.as_secs_f64() * 1000.0),
        ]);
    }
}

/// E8 — Theorem 7.1: #DisjPoskDNF counts, four ways.
fn e8_dnf() {
    header(
        "E8  #DisjPoskDNF (Theorem 7.1)",
        &["k", "brute force", "union boxes", "via #CQA", "via Q_k"],
    );
    for k in 1..=3usize {
        let f = random_disj_pos_dnf(&DnfConfig {
            classes: 5,
            class_size: 3,
            clauses: 6,
            clause_width: k,
            seed: 7,
        });
        let brute = f.count_satisfying_brute_force();
        let direct = f.count_satisfying(10_000_000).unwrap();
        let via_cqa = f.count_via_cqa(10_000_000).unwrap();
        let via_reduction = reduce_compactor_to_cqa(&f)
            .unwrap()
            .count(10_000_000)
            .unwrap();
        row(&[
            k.to_string(),
            brute.to_string(),
            direct.to_string(),
            via_cqa.to_string(),
            via_reduction.to_string(),
        ]);
    }
}

/// E9 — Theorem 7.2: #kForbColoring counts, four ways.
fn e9_coloring() {
    header(
        "E9  #kForbColoring (Theorem 7.2)",
        &["k", "brute force", "union boxes", "via #CQA", "via Q_k"],
    );
    for k in 1..=3usize {
        let f = random_forbidden_coloring(&HypergraphConfig {
            vertices: 7,
            colors_per_vertex: 3,
            edges: 5,
            edge_size: k,
            forbidden_per_edge: 2,
            seed: 13,
        });
        let brute = f.count_forbidden_brute_force();
        let direct = f.count_forbidden(10_000_000).unwrap();
        let via_cqa = f.count_via_cqa(10_000_000).unwrap();
        let via_reduction = reduce_compactor_to_cqa(&f)
            .unwrap()
            .count(10_000_000)
            .unwrap();
        row(&[
            k.to_string(),
            brute.to_string(),
            direct.to_string(),
            via_cqa.to_string(),
            via_reduction.to_string(),
        ]);
    }
}

/// E10 — exact vs approximate as the instance grows: enumeration blows up,
/// the box counter and the FPRAS stay fast.
fn e10_scaling() {
    header(
        "E10  Exact vs approximate scaling",
        &[
            "blocks",
            "repairs(log10)",
            "enum ms",
            "boxes ms",
            "fpras ms",
            "fpras err",
        ],
    );
    for blocks in [8usize, 11, 14, 200, 1000] {
        let (db, keys, q) = union_workload(blocks, 3, 3, 41);
        let engine = RepairEngine::new(db.clone(), keys.clone());
        let log10 = engine.total_repairs().ln() / std::f64::consts::LN_10;

        let enum_ms = if blocks <= 14 {
            let started = Instant::now();
            let _ = count_by_enumeration(&db, &keys, &q, u64::MAX).unwrap();
            format!("{:.1}", started.elapsed().as_secs_f64() * 1000.0)
        } else {
            "infeasible".to_string()
        };
        let report = engine.run(&CountRequest::exact(q.clone())).unwrap();
        let boxes_ms = report.duration.as_secs_f64() * 1000.0;
        let started = Instant::now();
        let (_, fpras_err, _, _, _) = accuracy_point(&db, &keys, &q, 0.1, 3);
        let fpras_ms = started.elapsed().as_secs_f64() * 1000.0;
        row(&[
            blocks.to_string(),
            format!("{log10:.0}"),
            enum_ms,
            format!("{boxes_ms:.1}"),
            format!("{fpras_ms:.1}"),
            format!("{fpras_err:.4}"),
        ]);
    }
}

/// E11 — the easy denominator and the FO lower bound: total repair counts
/// are instantaneous even when huge, and #3SAT equals #CQA(FO) through the
/// Theorem 3.2/3.3 reduction.
fn e11_lower_bound() {
    header(
        "E11a Total repair count is easy (Section 1.1)",
        &["blocks", "block size", "repairs (digits)", "time (ms)"],
    );
    for (blocks, size) in [(1_000usize, 3usize), (10_000, 3), (50_000, 5)] {
        let (db, keys, _) = uniform_workload(blocks, size, 0, 51);
        let started = Instant::now();
        // The engine precomputes the total at construction; this measures
        // exactly that polynomial-time pass.
        let engine = RepairEngine::new(db, keys);
        let elapsed = started.elapsed().as_secs_f64() * 1000.0;
        row(&[
            blocks.to_string(),
            size.to_string(),
            engine.total_repairs().to_string().len().to_string(),
            format!("{elapsed:.1}"),
        ]);
    }

    header(
        "E11b #3SAT = #CQA(FO) through the reduction (Theorems 3.2/3.3)",
        &["variables", "clauses", "#3SAT", "#CQA(FO)", "agree"],
    );
    for (vars, clauses, seed) in [(5usize, 6usize, 1u64), (6, 8, 2), (7, 9, 3)] {
        let f = random_cnf3(&Cnf3Config {
            variables: vars,
            clauses,
            seed,
        });
        let brute = f.count_models_brute_force();
        let via = f.count_models_via_cqa(10_000_000).unwrap();
        row(&[
            vars.to_string(),
            clauses.to_string(),
            brute.to_string(),
            via.to_string(),
            (brute == via).to_string(),
        ]);
    }

    // Also exercise the generic Λ[k] FPRAS once so the harness covers it.
    let f = random_disj_pos_dnf(&DnfConfig {
        classes: 6,
        class_size: 3,
        clauses: 5,
        clause_width: 2,
        seed: 61,
    });
    let exact = f.count_satisfying(10_000_000).unwrap();
    let approx = compactor_fpras(
        &f,
        &ApproxConfig {
            epsilon: 0.1,
            delta: 0.05,
            ..ApproxConfig::default()
        },
    )
    .unwrap();
    header(
        "E11c Generic Lambda[k] FPRAS sanity check (Theorem 6.2)",
        &["exact", "estimate", "rel. error", "pin bound k"],
    );
    row(&[
        exact.to_string(),
        approx.estimate.to_string(),
        format!("{:.4}", approx.relative_error(&exact)),
        format!("{:?}", f.pin_bound().unwrap()),
    ]);

    // And one query over a random union to tie E11 back to #CQA decision
    // hardness for FO (the NP witness search still works on small inputs).
    let (db, keys) = employee_example();
    let q = random_point_query_union(&db, &QueryGenConfig { size: 2, seed: 71 });
    let _ = RepairEngine::new(db, keys)
        .run(&CountRequest::decision(q))
        .unwrap();
}
