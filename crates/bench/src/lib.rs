//! Shared harness for the experiments and benchmarks.
//!
//! The paper has no empirical section (experiments are future work,
//! Section 8); EXPERIMENTS.md defines the experiments E1–E11 that validate
//! each theorem, and this crate regenerates their tables:
//!
//! * `cargo run -p cdr-bench --release --bin experiments -- all` prints
//!   every table (or pass an experiment id such as `e6`).
//! * `cargo bench -p cdr-bench` runs the Criterion micro-benchmarks that
//!   back the scaling experiments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use cdr_core::{CountRequest, RepairEngine, Strategy};
use cdr_num::BigNat;
use cdr_query::{parse_query, Query};
use cdr_repairdb::{Database, KeySet};
use cdr_workloads::{BlockSizeDistribution, InconsistentDbConfig, QueryGenConfig, RelationSpec};

/// Prints a table row with `|`-separated cells, padding each cell.
pub fn row(cells: &[String]) {
    let rendered: Vec<String> = cells.iter().map(|c| format!("{c:>14}")).collect();
    println!("| {} |", rendered.join(" | "));
}

/// Prints a table header followed by a separator line.
pub fn header(title: &str, cells: &[&str]) {
    println!("\n### {title}\n");
    row(&cells.iter().map(|c| c.to_string()).collect::<Vec<_>>());
    println!("|{}|", vec!["-".repeat(16); cells.len()].join("|"));
}

/// A standard workload: one keyed relation with `blocks` blocks of exactly
/// `block_size` facts each, plus the Boolean query "the first `atoms` keys
/// all chose their first payload value".
pub fn uniform_workload(
    blocks: usize,
    block_size: usize,
    atoms: usize,
    seed: u64,
) -> (Database, KeySet, Query) {
    let (db, keys) = InconsistentDbConfig {
        relations: vec![RelationSpec::keyed("R", blocks)],
        block_sizes: BlockSizeDistribution::Fixed(block_size),
        payload_domain: 10_000, // large pool: block sizes are exact
        seed,
    }
    .generate();
    // Pin the first payload value of the first `atoms` blocks.
    let mut disjunct_atoms = Vec::new();
    for key in 0..atoms.min(blocks) {
        let rel = db.schema().relation_id("R").expect("generated relation");
        let first_fact = db
            .facts_of(rel)
            .iter()
            .map(|&f| db.fact(f))
            .find(|f| f.arg(0) == &cdr_repairdb::Value::int(key as i64))
            .expect("every block has a fact");
        disjunct_atoms.push(format!("R({}, {})", key, first_fact.arg(1)));
    }
    let text = if disjunct_atoms.is_empty() {
        "TRUE".to_string()
    } else {
        disjunct_atoms.join(" AND ")
    };
    let query = parse_query(&text).expect("generated query is valid");
    (db, keys, query)
}

/// A disjunctive workload: the union of `disjuncts` single-atom point
/// queries over distinct blocks ("key i chose its first payload value").
pub fn union_workload(
    blocks: usize,
    block_size: usize,
    disjuncts: usize,
    seed: u64,
) -> (Database, KeySet, Query) {
    let (db, keys) = InconsistentDbConfig {
        relations: vec![RelationSpec::keyed("R", blocks)],
        block_sizes: BlockSizeDistribution::Fixed(block_size),
        payload_domain: 10_000,
        seed,
    }
    .generate();
    let rel = db.schema().relation_id("R").expect("generated relation");
    let mut parts = Vec::new();
    for key in 0..disjuncts.min(blocks) {
        let first_fact = db
            .facts_of(rel)
            .iter()
            .map(|&f| db.fact(f))
            .find(|f| f.arg(0) == &cdr_repairdb::Value::int(key as i64))
            .expect("every block has a fact");
        parts.push(format!("R({}, {})", key, first_fact.arg(1)));
    }
    let text = if parts.is_empty() {
        "FALSE".to_string()
    } else {
        parts.join(" OR ")
    };
    let query = parse_query(&text).expect("generated query is valid");
    (db, keys, query)
}

/// Convenience: a random join/point workload from the generators (used by
/// the benches so they exercise less regular shapes too).
pub fn random_workload(blocks: usize, block_size: usize, seed: u64) -> (Database, KeySet, Query) {
    let (db, keys) = InconsistentDbConfig {
        relations: vec![
            RelationSpec::keyed("R", blocks),
            RelationSpec::keyed("S", blocks),
        ],
        block_sizes: BlockSizeDistribution::Fixed(block_size),
        payload_domain: 6,
        seed,
    }
    .generate();
    let query = cdr_workloads::random_join_query(&db, &keys, &QueryGenConfig { size: 2, seed });
    (db, keys, query)
}

/// Runs the exact counter and both estimators on a workload through one
/// [`RepairEngine`] (so the plan is computed once) and returns
/// `(exact, fpras_error, kl_error, fpras_samples, kl_samples)`.
pub fn accuracy_point(
    db: &Database,
    keys: &KeySet,
    query: &Query,
    epsilon: f64,
    seed: u64,
) -> (BigNat, f64, f64, u64, u64) {
    let engine = RepairEngine::new(db.clone(), keys.clone());
    let exact = engine
        .run(&CountRequest::exact(query.clone()))
        .expect("exact count")
        .answer
        .as_count()
        .expect("count")
        .clone();
    let approx_request = CountRequest::approximate(query.clone(), epsilon, 0.05).with_seed(seed);
    let fpras = engine.run(&approx_request).expect("fpras");
    let kl = engine
        .run(&approx_request.clone().with_strategy(Strategy::KarpLuby))
        .expect("karp-luby");
    (
        exact.clone(),
        fpras
            .answer
            .as_estimate()
            .expect("estimate")
            .relative_error(&exact),
        kl.answer
            .as_estimate()
            .expect("estimate")
            .relative_error(&exact),
        fpras.samples_used,
        kl.samples_used,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine_count(db: &Database, keys: &KeySet, q: &Query) -> Option<u64> {
        RepairEngine::new(db.clone(), keys.clone())
            .run(&CountRequest::exact(q.clone()))
            .unwrap()
            .answer
            .as_count()
            .unwrap()
            .to_u64()
    }

    #[test]
    fn uniform_workload_has_predictable_counts() {
        let (db, keys, q) = uniform_workload(6, 3, 2, 1);
        let engine = RepairEngine::new(db.clone(), keys.clone());
        assert_eq!(engine.total_repairs().to_u64(), Some(3u64.pow(6)));
        // Two pinned blocks: 3^4 repairs entail the conjunction.
        assert_eq!(engine_count(&db, &keys, &q), Some(3u64.pow(4)));
    }

    #[test]
    fn union_workload_has_predictable_counts() {
        let (db, keys, q) = union_workload(5, 2, 2, 1);
        let engine = RepairEngine::new(db.clone(), keys.clone());
        assert_eq!(engine.total_repairs().to_u64(), Some(32));
        // |A ∪ B| = 16 + 16 - 8 = 24.
        assert_eq!(engine_count(&db, &keys, &q), Some(24));
    }

    #[test]
    fn accuracy_point_reports_small_errors() {
        let (db, keys, q) = union_workload(8, 3, 3, 2);
        let (exact, fe, ke, fs, ks) = accuracy_point(&db, &keys, &q, 0.1, 7);
        assert!(!exact.is_zero());
        assert!(fe <= 0.1);
        assert!(ke <= 0.1);
        assert!(fs > 0 && ks > 0);
    }

    #[test]
    fn random_workload_is_well_formed() {
        let (db, keys, q) = random_workload(4, 2, 3);
        assert!(engine_count(&db, &keys, &q).is_some());
    }
}
