//! A deterministic fault-injection TCP proxy.
//!
//! [`ChaosProxy`] sits between a client and an upstream server and
//! forwards bytes in both directions.  Each accepted connection is
//! assigned a *fault plan* — possibly none — drawn from a ChaCha8
//! stream seeded with the proxy seed and the connection index, so the
//! whole fault schedule is a pure function of `(seed, connection
//! index)`: two runs of the same test inject exactly the same faults at
//! exactly the same byte offsets.
//!
//! The fault menu:
//!
//! - **Delay** — forwarding pauses once, at a chosen byte offset, for a
//!   chosen duration, then resumes.  Safe on any leg: bytes are late,
//!   never lost.
//! - **Truncate** — the stream is cut mid-flight at the chosen offset
//!   (both directions are closed), leaving the peer with a partial
//!   line or frame.
//! - **Blackhole** — bytes past the offset are silently swallowed while
//!   both sockets stay open; the peer sees a stall, not a close, until
//!   its read deadline fires.
//! - **HalfClose** — the faulted direction is shut down at the offset
//!   while the opposite direction keeps flowing.
//!
//! The replication link (`REPL FETCH` pulls) is idempotent, so the full
//! menu is safe there: a cut or stalled pull is retried by the
//! follower's tailer and the records re-fetch from the same offsets.
//! On a client leg only delays preserve reply-for-reply parity — a
//! truncated command would have to be resent, changing the trace.

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// What a fault does to its direction of the stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Pause forwarding once at the trigger offset, then resume.
    Delay,
    /// Cut the whole connection at the trigger offset.
    Truncate,
    /// Swallow bytes past the trigger offset, keeping sockets open.
    Blackhole,
    /// Shut down this direction at the trigger offset; the opposite
    /// direction keeps flowing.
    HalfClose,
}

impl FaultKind {
    /// Parses the lowercase menu token used by `cdr-chaos --menu`.
    pub fn parse(token: &str) -> Option<FaultKind> {
        match token {
            "delay" => Some(FaultKind::Delay),
            "truncate" => Some(FaultKind::Truncate),
            "blackhole" => Some(FaultKind::Blackhole),
            "halfclose" => Some(FaultKind::HalfClose),
            _ => None,
        }
    }
}

/// Which pump of a proxied connection a fault applies to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Bytes flowing from the accepted client toward the upstream.
    ClientToServer,
    /// Bytes flowing from the upstream back to the client.
    ServerToClient,
}

/// One planned fault on one proxied connection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Fault {
    /// What happens.
    pub kind: FaultKind,
    /// Which pump it happens on.
    pub direction: Direction,
    /// How many bytes that pump forwards before the fault triggers.
    pub after_bytes: u64,
    /// The pause length, for [`FaultKind::Delay`].
    pub delay: Duration,
}

/// The seeded fault schedule: per-connection plans are a pure function
/// of `(seed, connection index)` and this configuration.
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// Seed of the plan stream.
    pub seed: u64,
    /// Probability an accepted connection gets a fault at all.
    pub fault_probability: f64,
    /// Fault kinds to draw from; empty disables injection entirely.
    pub menu: Vec<FaultKind>,
    /// Directions to draw from; empty disables injection entirely.
    pub directions: Vec<Direction>,
    /// Trigger-offset range in bytes, `min..=max`.
    pub trigger_bytes: (u64, u64),
    /// Delay range in milliseconds, `min..=max` (Delay faults only).
    pub delay_ms: (u64, u64),
}

impl ChaosConfig {
    /// A menu-less pass-through configuration (no faults ever).
    pub fn passthrough() -> ChaosConfig {
        ChaosConfig {
            seed: 0,
            fault_probability: 0.0,
            menu: Vec::new(),
            directions: Vec::new(),
            trigger_bytes: (0, 0),
            delay_ms: (0, 0),
        }
    }

    /// The plan for connection `index` — deterministic: the same
    /// `(config, index)` always yields the same plan.
    pub fn plan(&self, index: u64) -> Option<Fault> {
        if self.menu.is_empty() || self.directions.is_empty() {
            return None;
        }
        let mut rng =
            ChaCha8Rng::seed_from_u64(self.seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        if !rng.gen_bool(self.fault_probability) {
            return None;
        }
        let kind = self.menu[rng.gen_range(0..self.menu.len())];
        let direction = self.directions[rng.gen_range(0..self.directions.len())];
        let (lo, hi) = self.trigger_bytes;
        let after_bytes = rng.gen_range(lo..=hi.max(lo));
        let (dlo, dhi) = self.delay_ms;
        let delay = Duration::from_millis(rng.gen_range(dlo..=dhi.max(dlo)));
        Some(Fault {
            kind,
            direction,
            after_bytes,
            delay,
        })
    }
}

struct ProxyShared {
    config: ChaosConfig,
    upstream: SocketAddr,
    stopping: AtomicBool,
    connections: AtomicU64,
    faults: AtomicU64,
    /// Live sockets, shut down on proxy shutdown so pump threads exit.
    live: Mutex<Vec<TcpStream>>,
}

/// A running fault-injection proxy in front of one upstream address.
pub struct ChaosProxy {
    addr: SocketAddr,
    shared: Arc<ProxyShared>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Binds an ephemeral loopback port in front of `upstream` and
    /// starts proxying.
    pub fn start(upstream: SocketAddr, config: ChaosConfig) -> io::Result<ChaosProxy> {
        ChaosProxy::start_on("127.0.0.1:0", upstream, config)
    }

    /// Like [`ChaosProxy::start`], but binds the given listen address
    /// (`cdr-chaos --listen`).
    pub fn start_on(
        listen: &str,
        upstream: SocketAddr,
        config: ChaosConfig,
    ) -> io::Result<ChaosProxy> {
        let listener = TcpListener::bind(listen)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(ProxyShared {
            config,
            upstream,
            stopping: AtomicBool::new(false),
            connections: AtomicU64::new(0),
            faults: AtomicU64::new(0),
            live: Mutex::new(Vec::new()),
        });
        let accept_thread = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("cdr-chaos-accept".to_string())
                .spawn(move || accept_loop(&shared, &listener))
                .expect("spawning the chaos accept thread")
        };
        Ok(ChaosProxy {
            addr,
            shared,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections accepted so far.
    pub fn connections(&self) -> u64 {
        self.shared.connections.load(Ordering::Relaxed)
    }

    /// Faults actually injected so far (triggered, not just planned).
    pub fn faults(&self) -> u64 {
        self.shared.faults.load(Ordering::Relaxed)
    }

    /// Stops accepting, tears down every proxied connection and joins
    /// the accept thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.stopping.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        for stream in lock_live(&self.shared).drain(..) {
            let _ = stream.shutdown(Shutdown::Both);
        }
        if let Some(thread) = self.accept_thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.stop();
        }
    }
}

fn lock_live(shared: &ProxyShared) -> std::sync::MutexGuard<'_, Vec<TcpStream>> {
    shared
        .live
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn accept_loop(shared: &Arc<ProxyShared>, listener: &TcpListener) {
    loop {
        let Ok((client, _)) = listener.accept() else {
            return;
        };
        if shared.stopping.load(Ordering::SeqCst) {
            return;
        }
        let index = shared.connections.fetch_add(1, Ordering::Relaxed);
        let plan = shared.config.plan(index);
        let Ok(upstream) = TcpStream::connect(shared.upstream) else {
            // A dead upstream closes the client straight away — exactly
            // what a direct connection would see.
            let _ = client.shutdown(Shutdown::Both);
            continue;
        };
        let _ = client.set_nodelay(true);
        let _ = upstream.set_nodelay(true);
        {
            let mut live = lock_live(shared);
            if let (Ok(c), Ok(u)) = (client.try_clone(), upstream.try_clone()) {
                live.push(c);
                live.push(u);
            }
        }
        spawn_pump(
            shared,
            index,
            Direction::ClientToServer,
            &client,
            &upstream,
            plan,
        );
        spawn_pump(
            shared,
            index,
            Direction::ServerToClient,
            &upstream,
            &client,
            plan,
        );
    }
}

fn spawn_pump(
    shared: &Arc<ProxyShared>,
    index: u64,
    direction: Direction,
    from: &TcpStream,
    to: &TcpStream,
    plan: Option<Fault>,
) {
    let (Ok(from), Ok(to)) = (from.try_clone(), to.try_clone()) else {
        return;
    };
    let shared = Arc::clone(shared);
    let fault = plan.filter(|f| f.direction == direction);
    let side = match direction {
        Direction::ClientToServer => "up",
        Direction::ServerToClient => "down",
    };
    let _ = std::thread::Builder::new()
        .name(format!("cdr-chaos-{index}-{side}"))
        .spawn(move || pump(&shared, from, to, fault));
}

/// Forwards bytes `from` → `to`, enacting at most one fault at its
/// trigger offset.  Exits on EOF, error, or a stream-ending fault; the
/// paired sockets are shut down so the opposite pump exits too (except
/// for Blackhole and HalfClose, which deliberately keep the peer up).
fn pump(shared: &ProxyShared, mut from: TcpStream, mut to: TcpStream, fault: Option<Fault>) {
    let mut buf = [0u8; 4096];
    let mut forwarded: u64 = 0;
    let mut pending = fault;
    loop {
        let n = match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        let mut chunk = &buf[..n];
        if let Some(f) = pending {
            let until_trigger = f.after_bytes.saturating_sub(forwarded);
            if (chunk.len() as u64) >= until_trigger {
                let head = until_trigger as usize;
                shared.faults.fetch_add(1, Ordering::Relaxed);
                match f.kind {
                    FaultKind::Delay => {
                        if head > 0 && to.write_all(&chunk[..head]).is_err() {
                            break;
                        }
                        forwarded += head as u64;
                        chunk = &chunk[head..];
                        std::thread::sleep(f.delay);
                        pending = None;
                        // Fall through: the rest of the chunk forwards
                        // below like any other bytes.
                    }
                    FaultKind::Truncate => {
                        if head > 0 {
                            let _ = to.write_all(&chunk[..head]);
                        }
                        let _ = to.shutdown(Shutdown::Both);
                        let _ = from.shutdown(Shutdown::Both);
                        return;
                    }
                    FaultKind::Blackhole => {
                        if head > 0 && to.write_all(&chunk[..head]).is_err() {
                            break;
                        }
                        // Swallow everything from here on, keeping both
                        // sockets open: the peer stalls until its own
                        // read deadline fires.
                        loop {
                            match from.read(&mut buf) {
                                Ok(0) | Err(_) => return,
                                Ok(_) => {}
                            }
                        }
                    }
                    FaultKind::HalfClose => {
                        if head > 0 {
                            let _ = to.write_all(&chunk[..head]);
                        }
                        let _ = to.shutdown(Shutdown::Write);
                        let _ = from.shutdown(Shutdown::Read);
                        return;
                    }
                }
            }
        }
        if chunk.is_empty() {
            continue;
        }
        if to.write_all(chunk).is_err() {
            break;
        }
        forwarded += chunk.len() as u64;
    }
    let _ = to.shutdown(Shutdown::Both);
    let _ = from.shutdown(Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};

    fn full_menu() -> ChaosConfig {
        ChaosConfig {
            seed: 0xfau64,
            fault_probability: 0.5,
            menu: vec![
                FaultKind::Delay,
                FaultKind::Truncate,
                FaultKind::Blackhole,
                FaultKind::HalfClose,
            ],
            directions: vec![Direction::ClientToServer, Direction::ServerToClient],
            trigger_bytes: (0, 256),
            delay_ms: (1, 20),
        }
    }

    /// The fault schedule is a pure function of `(seed, index)`.
    #[test]
    fn plans_are_deterministic_per_connection_index() {
        let config = full_menu();
        let a: Vec<Option<Fault>> = (0..64).map(|i| config.plan(i)).collect();
        let b: Vec<Option<Fault>> = (0..64).map(|i| config.plan(i)).collect();
        assert_eq!(a, b, "two draws of the same schedule agree");
        assert!(a.iter().any(Option::is_some), "some connections fault");
        assert!(a.iter().any(Option::is_none), "some connections pass");

        let mut other = config.clone();
        other.seed ^= 1;
        let c: Vec<Option<Fault>> = (0..64).map(|i| other.plan(i)).collect();
        assert_ne!(a, c, "a different seed reshuffles the schedule");
    }

    /// A pass-through proxy is invisible: an echo upstream answers
    /// through it byte for byte.
    #[test]
    fn passthrough_proxies_lines_verbatim() {
        let upstream = TcpListener::bind("127.0.0.1:0").unwrap();
        let upstream_addr = upstream.local_addr().unwrap();
        let echo = std::thread::spawn(move || {
            let (stream, _) = upstream.accept().unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut writer = stream;
            let mut line = String::new();
            while reader.read_line(&mut line).is_ok_and(|n| n > 0) {
                writer.write_all(line.as_bytes()).unwrap();
                line.clear();
            }
        });

        let proxy = ChaosProxy::start(upstream_addr, ChaosConfig::passthrough()).unwrap();
        let mut client = TcpStream::connect(proxy.addr()).unwrap();
        client
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        client.write_all(b"hello through the proxy\n").unwrap();
        let mut reader = BufReader::new(client.try_clone().unwrap());
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        assert_eq!(reply, "hello through the proxy\n");
        assert_eq!(proxy.connections(), 1);
        assert_eq!(proxy.faults(), 0);
        drop(client);
        proxy.shutdown();
        echo.join().unwrap();
    }

    /// A truncate fault at offset zero cuts the stream before any byte
    /// arrives: the client sees EOF, and the fault counter ticks.
    #[test]
    fn truncate_at_zero_cuts_the_stream() {
        let upstream = TcpListener::bind("127.0.0.1:0").unwrap();
        let upstream_addr = upstream.local_addr().unwrap();
        let sink = std::thread::spawn(move || {
            let (stream, _) = upstream.accept().unwrap();
            let mut reader = BufReader::new(stream);
            let mut line = String::new();
            let _ = reader.read_line(&mut line);
        });

        let config = ChaosConfig {
            seed: 1,
            fault_probability: 1.0,
            menu: vec![FaultKind::Truncate],
            directions: vec![Direction::ClientToServer],
            trigger_bytes: (0, 0),
            delay_ms: (0, 0),
        };
        assert_eq!(
            config.plan(0),
            Some(Fault {
                kind: FaultKind::Truncate,
                direction: Direction::ClientToServer,
                after_bytes: 0,
                delay: Duration::from_millis(0),
            })
        );
        let proxy = ChaosProxy::start(upstream_addr, config).unwrap();
        let mut client = TcpStream::connect(proxy.addr()).unwrap();
        client
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let _ = client.write_all(b"doomed line\n");
        let mut reply = Vec::new();
        let n = client.read_to_end(&mut reply).unwrap_or(0);
        assert_eq!(n, 0, "the cut stream yields EOF, not data");
        assert!(proxy.faults() >= 1, "the fault fired");
        proxy.shutdown();
        sink.join().unwrap();
    }
}
