//! `cdr-chaos` — a standalone fault-injection proxy for soak scripts.
//!
//! ```text
//! cdr-chaos --listen 127.0.0.1:7801 --upstream 127.0.0.1:7800 \
//!     --seed 42 --probability 0.3 --menu delay,truncate \
//!     --trigger 0:4096 --delay-ms 5:50
//! ```
//!
//! Prints the listen address on stdout (`LISTEN <addr>`) once bound,
//! then proxies until killed.  The fault schedule is a pure function of
//! the seed and the connection index, so a soak run is reproducible.

use std::io::Write;
use std::net::SocketAddr;
use std::process::exit;

use cdr_chaos::{ChaosConfig, ChaosProxy, Direction, FaultKind};

const USAGE: &str = "usage: cdr-chaos --upstream <host:port> [--listen <host:port>] \
    [--seed <n>] [--probability <p>] [--menu delay,truncate,blackhole,halfclose] \
    [--directions up,down] [--trigger <lo>:<hi>] [--delay-ms <lo>:<hi>]";

fn fail(message: &str) -> ! {
    eprintln!("cdr-chaos: {message}");
    eprintln!("{USAGE}");
    exit(2)
}

fn parse_range(flag: &str, value: &str) -> (u64, u64) {
    let Some((lo, hi)) = value.split_once(':') else {
        fail(&format!("{flag} wants <lo>:<hi>, got `{value}`"));
    };
    match (lo.parse(), hi.parse()) {
        (Ok(lo), Ok(hi)) if lo <= hi => (lo, hi),
        _ => fail(&format!("{flag} wants numeric <lo>:<hi> with lo <= hi")),
    }
}

fn main() {
    let mut upstream: Option<SocketAddr> = None;
    let mut listen: Option<String> = None;
    let mut config = ChaosConfig {
        seed: 42,
        fault_probability: 0.25,
        menu: vec![FaultKind::Delay, FaultKind::Truncate],
        directions: vec![Direction::ClientToServer, Direction::ServerToClient],
        trigger_bytes: (0, 4096),
        delay_ms: (1, 50),
    };

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| fail(&format!("{name} wants a value")))
        };
        match flag.as_str() {
            "--upstream" => {
                let raw = value("--upstream");
                match raw.parse() {
                    Ok(addr) => upstream = Some(addr),
                    Err(e) => fail(&format!("--upstream `{raw}`: {e}")),
                }
            }
            "--listen" => listen = Some(value("--listen")),
            "--seed" => {
                config.seed = value("--seed")
                    .parse()
                    .unwrap_or_else(|_| fail("--seed wants a u64"));
            }
            "--probability" => {
                let p: f64 = value("--probability")
                    .parse()
                    .unwrap_or_else(|_| fail("--probability wants a float in [0, 1]"));
                if !(0.0..=1.0).contains(&p) {
                    fail("--probability wants a float in [0, 1]");
                }
                config.fault_probability = p;
            }
            "--menu" => {
                config.menu = value("--menu")
                    .split(',')
                    .map(|token| {
                        FaultKind::parse(token)
                            .unwrap_or_else(|| fail(&format!("unknown fault `{token}`")))
                    })
                    .collect();
            }
            "--directions" => {
                config.directions = value("--directions")
                    .split(',')
                    .map(|token| match token {
                        "up" => Direction::ClientToServer,
                        "down" => Direction::ServerToClient,
                        other => fail(&format!("unknown direction `{other}` (up|down)")),
                    })
                    .collect();
            }
            "--trigger" => config.trigger_bytes = parse_range("--trigger", &value("--trigger")),
            "--delay-ms" => config.delay_ms = parse_range("--delay-ms", &value("--delay-ms")),
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => fail(&format!("unknown flag `{other}`")),
        }
    }
    let Some(upstream) = upstream else {
        fail("--upstream is required");
    };

    // Ephemeral mode (no --listen) is the common soak-script path: the
    // script reads `LISTEN <addr>` from stdout.
    let proxy = match listen {
        None => ChaosProxy::start(upstream, config),
        Some(addr) => ChaosProxy::start_on(&addr, upstream, config),
    };
    let proxy = match proxy {
        Ok(proxy) => proxy,
        Err(e) => fail(&format!("cannot start: {e}")),
    };
    println!("LISTEN {}", proxy.addr());
    let _ = std::io::stdout().flush();
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}
