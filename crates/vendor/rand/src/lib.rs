//! Offline subset of the [`rand`](https://docs.rs/rand/0.8) 0.8 API.
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements exactly the surface the workspace uses:
//!
//! * [`RngCore`] — the raw 32/64-bit generator interface;
//! * [`Rng`] — [`Rng::gen_range`] over half-open and inclusive integer
//!   ranges and half-open `f64` ranges, plus [`Rng::gen_bool`];
//! * [`SeedableRng`] — byte-seed construction and the SplitMix64-based
//!   [`SeedableRng::seed_from_u64`] convenience, matching the upstream
//!   seeding scheme so seeds remain stable if the real crate is restored.
//!
//! Integer sampling uses widening-multiply rejection (Lemire's method),
//! the same unbiased approach upstream `rand` 0.8 uses.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

pub mod distributions;

/// The core of a random number generator: raw 32- and 64-bit output.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// The fixed-size byte seed the generator consumes.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full byte seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64 —
    /// the same expansion upstream `rand` uses, so seeded streams stay
    /// stable across the vendored and real implementations of this trait.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            // SplitMix64 (Steele, Lea, Flood 2014), as in rand_core.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (dest, &src) in chunk.iter_mut().zip(z.to_le_bytes().iter()) {
                *dest = src;
            }
        }
        Self::from_seed(seed)
    }
}

/// User-facing sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from the given range.
    ///
    /// Supports `low..high` and `low..=high` over the integer types the
    /// workspace uses, and `low..high` over `f64`. Panics if the range is
    /// empty, like upstream `rand`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        // 53 uniform mantissa bits, as upstream.
        let scale = 1.0 / ((1u64 << 53) as f64);
        ((self.next_u64() >> 11) as f64) * scale < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that knows how to sample one value from itself.
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range using `rng`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased sampling of `x in [0, bound)` by widening multiplication with
/// rejection (Lemire 2018).
fn sample_below_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Threshold below which a draw would be biased and must be rejected.
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

fn sample_below_u128<R: RngCore + ?Sized>(rng: &mut R, bound: u128) -> u128 {
    debug_assert!(bound > 0);
    if let Ok(b) = u64::try_from(bound) {
        return sample_below_u64(rng, b) as u128;
    }
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let x = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        // 128x128 widening multiply via the high/low decomposition.
        let (hi, lo) = widening_mul_128(x, bound);
        if lo >= threshold {
            return hi;
        }
    }
}

fn widening_mul_128(a: u128, b: u128) -> (u128, u128) {
    const MASK: u128 = u64::MAX as u128;
    let (a_hi, a_lo) = (a >> 64, a & MASK);
    let (b_hi, b_lo) = (b >> 64, b & MASK);
    let ll = a_lo * b_lo;
    let lh = a_lo * b_hi;
    let hl = a_hi * b_lo;
    let hh = a_hi * b_hi;
    let mid = (ll >> 64) + (lh & MASK) + (hl & MASK);
    let lo = (mid << 64) | (ll & MASK);
    let hi = hh + (lh >> 64) + (hl >> 64) + (mid >> 64);
    (hi, lo)
}

macro_rules! impl_uint_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128) - (self.start as u128);
                self.start + sample_below_u128(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as u128) - (start as u128) + 1;
                start + sample_below_u128(rng, span) as $t
            }
        }
    )*};
}

impl_uint_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_int_sample_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u);
                self.start.wrapping_add(sample_below_u128(rng, span as u128) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as $u).wrapping_sub(start as $u) as u128 + 1;
                start.wrapping_add(sample_below_u128(rng, span) as $t)
            }
        }
    )*};
}

impl_int_sample_range!(i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let scale = 1.0 / ((1u64 << 53) as f64);
        let unit = ((rng.next_u64() >> 11) as f64) * scale;
        let sampled = self.start + unit * (self.end - self.start);
        // Guard against `end` itself under rounding at the top of the range.
        if sampled < self.end {
            sampled
        } else {
            self.start
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct StepRng(u64);

    impl RngCore for StepRng {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 step: decent equidistribution for the tests below.
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StepRng(1);
        for _ in 0..2000 {
            let a: usize = rng.gen_range(0..7);
            assert!(a < 7);
            let b: usize = rng.gen_range(2..=5);
            assert!((2..=5).contains(&b));
            let c: u8 = rng.gen_range(0..100u8);
            assert!(c < 100);
            let d: f64 = rng.gen_range(0.0..3.5);
            assert!((0.0..3.5).contains(&d));
            let e: i64 = rng.gen_range(-4i64..4);
            assert!((-4..4).contains(&e));
        }
    }

    #[test]
    fn every_value_of_a_small_range_is_hit() {
        let mut rng = StepRng(7);
        let mut seen = [false; 6];
        for _ in 0..400 {
            seen[rng.gen_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "not uniform-ish: {seen:?}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StepRng(3);
        let hits = (0..4000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((800..1200).contains(&hits), "got {hits} of 4000");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StepRng(0);
        let _: usize = rng.gen_range(3..3);
    }

    #[test]
    fn widening_mul_matches_small_cases() {
        let (hi, lo) = widening_mul_128(u128::MAX, 2);
        assert_eq!(hi, 1);
        assert_eq!(lo, u128::MAX - 1);
        let (hi, lo) = widening_mul_128(1 << 127, 4);
        assert_eq!(hi, 2);
        assert_eq!(lo, 0);
    }
}
