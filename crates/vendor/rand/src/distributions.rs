//! Offline subset of `rand::distributions`: precomputed uniform sampling.
//!
//! [`Uniform`] mirrors the upstream pattern of amortising range-sampling
//! setup across many draws: [`crate::Rng::gen_range`] must recompute the
//! Lemire rejection threshold — an integer division — on every call, while
//! `Uniform::from(low..high)` pays for it once and [`Distribution::sample`]
//! then draws with a widening multiply and a compare.
//!
//! **Draw-for-draw compatibility:** this vendored `Uniform` implements
//! *exactly* the widening-multiply rejection loop of `gen_range`, so for
//! the same generator state the two produce identical values and consume
//! identical numbers of `next_u64` calls.  Seeded samplers can therefore
//! hoist their per-domain ranges out of the hot loop without changing any
//! sampled sequence.  (Upstream `rand` 0.8 does not promise value equality
//! between `gen_range` and `Uniform::sample`; if the registry crate is
//! restored, whichever API the samplers use must be used consistently for
//! seeds to remain stable.)

use crate::RngCore;
use std::ops::Range;

/// A distribution that can be sampled through any [`RngCore`].
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Uniform sampling over `low..high` with the rejection threshold
/// precomputed at construction time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Uniform {
    low: usize,
    span: u64,
    /// Smallest low-half product that avoids modulo bias (Lemire 2018).
    threshold: u64,
}

impl Uniform {
    /// Builds the distribution for a non-empty `low..high` range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty, like `gen_range`.
    pub fn from(range: Range<usize>) -> Uniform {
        assert!(range.start < range.end, "Uniform::from: empty range");
        let span = (range.end - range.start) as u64;
        Uniform {
            low: range.start,
            span,
            threshold: span.wrapping_neg() % span,
        }
    }
}

impl Distribution<usize> for Uniform {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        loop {
            let x = rng.next_u64();
            let m = (x as u128) * (self.span as u128);
            if (m as u64) >= self.threshold {
                return self.low + (m >> 64) as usize;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Rng, SeedableRng};

    struct SplitMix(u64);

    impl RngCore for SplitMix {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// A dummy SeedableRng impl so the test can exercise the blanket Rng
    /// methods through the same concrete type; seeding is irrelevant here.
    impl SeedableRng for SplitMix {
        type Seed = [u8; 8];
        fn from_seed(seed: Self::Seed) -> Self {
            SplitMix(u64::from_le_bytes(seed))
        }
    }

    #[test]
    fn sample_matches_gen_range_draw_for_draw() {
        for bound in [1usize, 2, 3, 5, 7, 97, 1 << 20] {
            let uniform = Uniform::from(0..bound);
            let mut a = SplitMix::seed_from_u64(42 + bound as u64);
            let mut b = SplitMix::seed_from_u64(42 + bound as u64);
            for _ in 0..500 {
                assert_eq!(uniform.sample(&mut a), b.gen_range(0..bound));
            }
        }
    }

    #[test]
    fn offset_ranges_shift_without_bias() {
        let uniform = Uniform::from(10..16);
        let mut rng = SplitMix(7);
        let mut seen = [false; 6];
        for _ in 0..500 {
            let v = uniform.sample(&mut rng);
            assert!((10..16).contains(&v));
            seen[v - 10] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let _ = Uniform::from(3..3);
    }
}
