//! Offline subset of the [`proptest`](https://docs.rs/proptest/1) API.
//!
//! The build environment has no access to crates.io, so this crate
//! implements the slice of proptest the workspace's property tests use:
//!
//! * the [`proptest!`] macro with `arg in strategy` bindings and an
//!   optional `#![proptest_config(...)]` header;
//! * range strategies over the integer and float types the tests sample
//!   (`0u64..1000`, `0u128..`, `0.0f64..1e100`, …);
//! * [`prop_assert!`] / [`prop_assert_eq!`] (mapped to the std asserts);
//! * [`ProptestConfig::with_cases`].
//!
//! Unlike real proptest there is no shrinking: a failing case panics with
//! the generated inputs in the panic message instead. Cases are generated
//! from a ChaCha8 stream seeded from the test's name, so every run of a
//! given test is deterministic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeFrom};

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Everything a property test needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy, TestRng,
    };
}

/// Run-time configuration for a [`proptest!`] block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` generated cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The deterministic generator driving a [`proptest!`] test.
#[derive(Clone, Debug)]
pub struct TestRng(ChaCha8Rng);

impl TestRng {
    /// Creates the generator for a named test, deterministically.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the test name: stable across runs and platforms.
        let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
        for byte in name.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(ChaCha8Rng::seed_from_u64(hash))
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A value generator: the `strategy` side of `arg in strategy`.
pub trait Strategy {
    /// The type of the generated values.
    type Value: std::fmt::Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_uint_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeFrom<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                if self.start == 0 {
                    return rng.gen_range(0..=<$t>::MAX);
                }
                rng.gen_range(self.start..=<$t>::MAX)
            }
        }
    )*};
}

impl_uint_strategies!(u8, u16, u32, u64, usize);

impl Strategy for Range<u128> {
    type Value = u128;
    fn generate(&self, rng: &mut TestRng) -> u128 {
        assert!(self.start < self.end, "empty strategy range");
        let span = self.end - self.start;
        if let Ok(span) = u64::try_from(span) {
            return self.start + rng.gen_range(0..span) as u128;
        }
        // Wide span: stitch two 64-bit draws and reduce. The tiny modulo
        // bias is irrelevant for property generation.
        let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        self.start + wide % span
    }
}

impl Strategy for RangeFrom<u128> {
    type Value = u128;
    fn generate(&self, rng: &mut TestRng) -> u128 {
        let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        if self.start == 0 {
            return wide;
        }
        self.start + wide % (u128::MAX - self.start + 1)
    }
}

impl Strategy for Range<i64> {
    type Value = i64;
    fn generate(&self, rng: &mut TestRng) -> i64 {
        assert!(self.start < self.end, "empty strategy range");
        rng.gen_range(self.clone())
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        rng.gen_range(self.clone())
    }
}

/// Property-test assertion; equivalent to [`assert!`] here.
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Property-test equality assertion; equivalent to [`assert_eq!`] here.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Property-test inequality assertion; equivalent to [`assert_ne!`] here.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a test that runs `body` over generated inputs.
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///
///     // In a test module this would carry `#[test]`.
///     fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
///
/// addition_commutes();
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; do not invoke directly.
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::for_test(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                let inputs = format!(
                    concat!("case ", "{}", $(concat!(", ", stringify!($arg), " = {:?}"),)+),
                    case, $(&$arg),+
                );
                let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                    || $body,
                ));
                if let Err(panic) = result {
                    eprintln!("proptest case failed: {inputs}");
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(a in 3u64..17, b in 5usize..6, f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&a));
            prop_assert_eq!(b, 5);
            prop_assert!((0.25..0.75).contains(&f));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// Open-ended ranges cover large values without panicking.
        #[test]
        fn open_ranges_generate(a in 0u64.., b in 1u32.., c in 0u128..) {
            prop_assert!(b >= 1);
            let _ = (a, c);
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut a = TestRng::for_test("alpha");
        let mut b = TestRng::for_test("alpha");
        let mut c = TestRng::for_test("beta");
        let xs: Vec<u64> = (0..10).map(|_| (0u64..1000).generate(&mut a)).collect();
        let ys: Vec<u64> = (0..10).map(|_| (0u64..1000).generate(&mut b)).collect();
        let zs: Vec<u64> = (0..10).map(|_| (0u64..1000).generate(&mut c)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn failing_case_reports_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn always_fails(x in 0u64..10) {
                prop_assert!(x >= 10, "x was {x}");
            }
        }
        assert!(std::panic::catch_unwind(always_fails).is_err());
    }
}
