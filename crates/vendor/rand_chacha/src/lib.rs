//! Offline subset of the [`rand_chacha`](https://docs.rs/rand_chacha/0.3)
//! API: the [`ChaCha8Rng`] generator.
//!
//! Implements the genuine ChaCha stream cipher core (Bernstein 2008) with
//! 8 rounds, keyed from a 32-byte seed with a zero nonce and a 64-bit
//! block counter. The workspace only relies on the generator being a
//! high-quality, deterministic-per-seed PRNG — which this is — not on
//! byte-for-byte parity with the upstream crate's stream.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::{RngCore, SeedableRng};

const CHACHA_ROUNDS: usize = 8;
/// `"expand 32-byte k"` as four little-endian words.
const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646E, 0x7962_2D32, 0x6B20_6574];

/// A cryptographically-strong PRNG based on the ChaCha stream cipher with
/// 8 rounds, deterministic per seed.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Key words (state words 4..12 of the ChaCha matrix).
    key: [u32; 8],
    /// 64-bit block counter (state words 12..14; nonce words are zero).
    counter: u64,
    /// Current 16-word output block.
    block: [u32; 16],
    /// Next unread word within `block`; 16 means "refill needed".
    index: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&SIGMA);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        // state[14], state[15]: zero nonce.

        let mut working = state;
        for _ in 0..CHACHA_ROUNDS / 2 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self.block.iter_mut().zip(working.iter().zip(state.iter())) {
            *out = w.wrapping_add(s);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (word, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng {
            key,
            counter: 0,
            block: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.block[self.index];
        self.index += 1;
        word
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        // Fast path: both words come from the current block — one branch
        // instead of two.  The word order (low word first) is exactly the
        // two-`next_u32` composition, so the stream is unchanged.
        if self.index + 1 < 16 {
            let lo = self.block[self.index] as u64;
            let hi = self.block[self.index + 1] as u64;
            self.index += 2;
            return (hi << 32) | lo;
        }
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let first_100: Vec<u64> = (0..100).map(|_| c.next_u64()).collect();
        let mut a = ChaCha8Rng::seed_from_u64(42);
        assert!(first_100.iter().any(|&x| x != a.next_u64()));
    }

    #[test]
    fn chacha_quarter_round_test_vector() {
        // RFC 7539 §2.1.1 test vector for the quarter round.
        let mut s = [0u32; 16];
        s[0] = 0x1111_1111;
        s[1] = 0x0102_0304;
        s[2] = 0x9b8d_6f43;
        s[3] = 0x0123_4567;
        quarter_round(&mut s, 0, 1, 2, 3);
        assert_eq!(s[0], 0xea2a_92f4);
        assert_eq!(s[1], 0xcb1c_f8ce);
        assert_eq!(s[2], 0x4581_472e);
        assert_eq!(s[3], 0x5881_c4bb);
    }

    #[test]
    fn output_is_roughly_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut buckets = [0usize; 8];
        for _ in 0..8000 {
            buckets[rng.gen_range(0..8usize)] += 1;
        }
        for &b in &buckets {
            assert!((800..1200).contains(&b), "skewed buckets: {buckets:?}");
        }
    }

    #[test]
    fn next_u64_matches_the_two_u32_composition() {
        // The fast two-word path must produce the same stream as composing
        // next_u32 pairs, including across block boundaries; misalign by
        // one word so u64 draws eventually straddle a refill.
        let mut a = ChaCha8Rng::seed_from_u64(99);
        let mut b = ChaCha8Rng::seed_from_u64(99);
        let _ = a.next_u32();
        let _ = b.next_u32();
        for _ in 0..100 {
            let lo = b.next_u32() as u64;
            let hi = b.next_u32() as u64;
            assert_eq!(a.next_u64(), (hi << 32) | lo);
        }
    }

    #[test]
    fn blocks_advance_the_counter() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        // Drain more than one 16-word block and check non-repetition.
        let words: Vec<u32> = (0..64).map(|_| rng.next_u32()).collect();
        assert_ne!(&words[..16], &words[16..32]);
        assert_ne!(&words[16..32], &words[32..48]);
    }
}
