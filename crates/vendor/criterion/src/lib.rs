//! Offline subset of the [`criterion`](https://docs.rs/criterion/0.5)
//! benchmarking API.
//!
//! The build environment has no access to crates.io, so this crate
//! implements the criterion surface the workspace's benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`],
//! [`Bencher::iter`], [`BenchmarkId`], [`criterion_group!`] and
//! [`criterion_main!`] — with a simple mean-of-samples wall-clock
//! measurement instead of criterion's full statistical machinery.
//!
//! Each benchmark warms up briefly, then collects `sample_size` samples,
//! sizing iterations-per-sample so a sample costs roughly
//! `measurement_time / sample_size`, and prints the mean, minimum and
//! maximum time per iteration.
//!
//! Two extra behaviours support CI:
//!
//! * **Smoke mode** — mirroring real criterion's `--test` flag (also
//!   enabled by `CDR_BENCH_SMOKE=1`): every benchmark runs with a tiny
//!   sample budget and per-group overrides are ignored, so the whole
//!   bench suite completes in seconds as a correctness smoke test.
//! * **JSON reports** — every run appends its results to an in-process
//!   registry and `criterion_main!` writes them to `BENCH_<binary>.json`
//!   (in `CDR_BENCH_OUT_DIR`, or the working directory), so CI can
//!   archive the perf trajectory per PR.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One measured benchmark, as recorded for the JSON report.
struct Record {
    label: String,
    mean_s: f64,
    /// Median of the per-iteration sample times: the statistic the
    /// `scripts/bench_compare` regression gate tracks (robust against a
    /// single outlier sample in a way the mean is not).
    median_s: f64,
    min_s: f64,
    max_s: f64,
    samples: usize,
    iterations: u64,
}

static RECORDS: Mutex<Vec<Record>> = Mutex::new(Vec::new());

/// Whether this process runs in smoke mode: criterion's `--test` flag on
/// the bench binary's command line, or `CDR_BENCH_SMOKE=1` in the
/// environment.
///
/// Public so benches can skip their largest inputs in smoke mode — a
/// smoke run verifies every benchmark *works*, not how fast it is.
pub fn is_smoke() -> bool {
    std::env::args().any(|arg| arg == "--test")
        || std::env::var("CDR_BENCH_SMOKE").is_ok_and(|v| v == "1" || v == "true")
}

/// The benchmark driver handed to every `criterion_group!` function.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    smoke: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let smoke = is_smoke();
        if smoke {
            Criterion {
                sample_size: 2,
                measurement_time: Duration::from_millis(20),
                warm_up_time: Duration::from_millis(2),
                smoke,
            }
        } else {
            Criterion {
                sample_size: 10,
                measurement_time: Duration::from_secs(2),
                warm_up_time: Duration::from_millis(300),
                smoke,
            }
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            name,
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            smoke: self.smoke,
            _criterion: self,
        }
    }

    /// Runs a single free-standing benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(
            &id.label,
            self.sample_size,
            self.measurement_time,
            self.warm_up_time,
            &mut f,
        );
    }
}

/// A named group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    smoke: bool,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples collected per benchmark (ignored in
    /// smoke mode, which pins a tiny budget).
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        if !self.smoke {
            self.sample_size = samples.max(1);
        }
        self
    }

    /// Sets the wall-clock budget for the measurement phase (ignored in
    /// smoke mode).
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        if !self.smoke {
            self.measurement_time = time;
        }
        self
    }

    /// Sets the wall-clock budget for the warm-up phase (ignored in
    /// smoke mode).
    pub fn warm_up_time(&mut self, time: Duration) -> &mut Self {
        if !self.smoke {
            self.warm_up_time = time;
        }
        self
    }

    /// Benchmarks `f`, passing it the given input.
    pub fn bench_with_input<I, F>(&mut self, id: impl Into<BenchmarkId>, input: &I, mut f: F)
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.label);
        run_benchmark(
            &label,
            self.sample_size,
            self.measurement_time,
            self.warm_up_time,
            &mut |b| f(b, input),
        );
    }

    /// Benchmarks `f` under the given id with no explicit input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.label);
        run_benchmark(
            &label,
            self.sample_size,
            self.measurement_time,
            self.warm_up_time,
            &mut f,
        );
    }

    /// Ends the group. (All reporting happens eagerly; this is a no-op
    /// kept for API parity.)
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{parameter}", function_name.into()),
        }
    }

    /// An id made of a parameter value only.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the code
/// under test.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this sample's iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let started = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = started.elapsed();
    }

    /// Times `routine` with the drop of its return value excluded from
    /// the measurement — the upstream criterion API of the same name.
    /// Use it when the routine builds a large structure and the
    /// benchmark is about construction, not destruction.  Each output
    /// is dropped between timed windows (rather than accumulated past
    /// the timer as upstream does), which keeps memory flat and the
    /// allocator state identical from one iteration to the next; the
    /// cost is two clock reads per iteration.
    pub fn iter_with_large_drop<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let mut elapsed = Duration::ZERO;
        for _ in 0..self.iterations {
            let started = Instant::now();
            let output = black_box(routine());
            elapsed += started.elapsed();
            drop(output);
        }
        self.elapsed = elapsed;
    }
}

fn run_benchmark<F>(
    label: &str,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    f: &mut F,
) where
    F: FnMut(&mut Bencher),
{
    // Warm-up: run single-iteration samples until the budget is spent,
    // and use the observed cost to size the measurement samples.
    let warm_up_started = Instant::now();
    let mut warm_up_iters: u64 = 0;
    let mut warm_up_spent = Duration::ZERO;
    while warm_up_started.elapsed() < warm_up_time || warm_up_iters == 0 {
        let mut bencher = Bencher {
            iterations: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        warm_up_iters += 1;
        warm_up_spent += bencher.elapsed;
        if warm_up_iters >= 10_000 {
            break;
        }
    }
    let per_iter = warm_up_spent
        .checked_div(warm_up_iters as u32)
        .unwrap_or(Duration::ZERO)
        .max(Duration::from_nanos(1));

    let per_sample = measurement_time
        .checked_div(sample_size as u32)
        .unwrap_or(Duration::ZERO);
    let iterations = (per_sample.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut samples = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut bencher = Bencher {
            iterations,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        samples.push(bencher.elapsed.as_secs_f64() / iterations as f64);
    }

    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
    let max = samples.iter().copied().fold(0.0f64, f64::max);
    let median = {
        let mut sorted = samples.clone();
        sorted.sort_by(f64::total_cmp);
        let mid = sorted.len() / 2;
        if sorted.len() % 2 == 0 {
            (sorted[mid - 1] + sorted[mid]) / 2.0
        } else {
            sorted[mid]
        }
    };
    let mut line = String::new();
    let _ = write!(
        line,
        "  {label:<50} time: [{} {} {}]  ({} samples x {iterations} iters)",
        format_time(min),
        format_time(mean),
        format_time(max),
        samples.len(),
    );
    println!("{line}");
    let mut records = RECORDS
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    records.push(Record {
        label: label.to_string(),
        mean_s: mean,
        median_s: median,
        min_s: min,
        max_s: max,
        samples: samples.len(),
        iterations,
    });
}

/// Escapes a string for inclusion in a JSON string literal.
fn json_escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Writes every recorded benchmark of this process to
/// `BENCH_<binary>.json` — in `CDR_BENCH_OUT_DIR` when set, else the
/// working directory — so CI can archive the perf trajectory.  Called by
/// [`criterion_main!`] after the groups run; harmless when nothing ran.
pub fn write_json_report() {
    let records = RECORDS
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    if records.is_empty() {
        return;
    }
    // `cargo bench` binaries are named `<bench>-<hash>`; strip the hash so
    // reports get stable names across builds.
    let binary = std::env::args()
        .next()
        .and_then(|path| {
            std::path::Path::new(&path)
                .file_stem()
                .map(|stem| stem.to_string_lossy().into_owned())
        })
        .unwrap_or_else(|| "bench".to_string());
    let stem = match binary.rsplit_once('-') {
        Some((name, hash)) if hash.len() == 16 && hash.bytes().all(|b| b.is_ascii_hexdigit()) => {
            name.to_string()
        }
        _ => binary,
    };
    let dir = std::env::var("CDR_BENCH_OUT_DIR").unwrap_or_else(|_| ".".to_string());
    let path = std::path::Path::new(&dir).join(format!("BENCH_{stem}.json"));
    let mut body = String::from("{\n");
    let _ = writeln!(body, "  \"suite\": \"{}\",", json_escape(&stem));
    let _ = writeln!(body, "  \"smoke\": {},", is_smoke());
    let _ = writeln!(
        body,
        "  \"host\": \"{}\",",
        json_escape(&host_fingerprint())
    );
    body.push_str("  \"benchmarks\": [\n");
    for (i, record) in records.iter().enumerate() {
        let _ = writeln!(
            body,
            "    {{\"name\": \"{}\", \"mean_s\": {:.9e}, \"median_s\": {:.9e}, \"min_s\": {:.9e}, \"max_s\": {:.9e}, \"samples\": {}, \"iterations\": {}}}{}",
            json_escape(&record.label),
            record.mean_s,
            record.median_s,
            record.min_s,
            record.max_s,
            record.samples,
            record.iterations,
            if i + 1 == records.len() { "" } else { "," },
        );
    }
    body.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(&path, body) {
        eprintln!("criterion: cannot write {}: {e}", path.display());
    } else {
        println!("\nwrote {}", path.display());
    }
}

/// A coarse fingerprint of the measuring machine, recorded in the JSON
/// report so `scripts/bench_compare` can tell an apples-to-apples
/// comparison (same host: enforce the regression tolerance) from a
/// cross-machine one (absolute wall-clock times are not comparable:
/// advisory only).
fn host_fingerprint() -> String {
    let cpu = std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|info| {
            info.lines()
                .find(|line| line.starts_with("model name"))
                .and_then(|line| line.split(':').nth(1))
                .map(|model| model.trim().to_string())
        })
        .unwrap_or_else(|| "unknown-cpu".to_string());
    format!("{}-{}/{cpu}", std::env::consts::OS, std::env::consts::ARCH)
}

fn format_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.2} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} us", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:.3} s")
    }
}

/// Declares a group function that runs each listed benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` to run the listed groups, then write the JSON report.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::write_json_report();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("stub");
        group.sample_size(3);
        group.measurement_time(Duration::from_millis(30));
        group.warm_up_time(Duration::from_millis(5));
        group.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        group.bench_function(BenchmarkId::from_parameter(7), |b| b.iter(|| 7 * 6));
        group.finish();
    }

    criterion_group!(tiny, tiny_bench);

    #[test]
    fn group_runs_to_completion() {
        tiny();
    }

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(BenchmarkId::new("f", 3).label, "f/3");
        assert_eq!(BenchmarkId::from_parameter(0.5).label, "0.5");
        assert_eq!(BenchmarkId::from("plain").label, "plain");
    }

    #[test]
    fn time_formatting_scales() {
        assert!(format_time(5e-9).ends_with("ns"));
        assert!(format_time(5e-6).ends_with("us"));
        assert!(format_time(5e-3).ends_with("ms"));
        assert!(format_time(5.0).ends_with('s'));
    }
}
