//! Relational database substrate for repair counting.
//!
//! This crate implements the data-model half of the paper's preliminaries
//! (Section 2.1): constants and facts, relational schemas, key constraints
//! and sets of *primary keys*, databases, the block decomposition
//! `blockΣ(α, D)` induced by a set of primary keys, and the repairs
//! `rep(D, Σ)` of an inconsistent database.
//!
//! The central objects are:
//!
//! * [`Value`] — a database constant (integer or interned string).
//! * [`Symbol`] / [`SymbolTable`] — interned string payloads with dense
//!   `u32` ids, so value equality and hashing are integer operations.
//! * [`Schema`] / [`RelationId`] — relation symbols with fixed arities.
//! * [`Fact`] — a ground atom `R(c₁, …, cₙ)`.
//! * [`KeySet`] — a set of primary keys `key(R) = {1, …, m}`.
//! * [`Database`] — a finite set of facts with per-relation indexes.
//! * [`BlockPartition`] — the ordered sequence of blocks `B₁, …, Bₙ`
//!   induced by the lexicographic ordering `≺_{D,Σ}` on key values.
//! * [`Repair`] and [`RepairIter`] — repairs as "one fact per block" and
//!   their exhaustive enumeration, plus the polynomial-time total repair
//!   count `∏ |Bᵢ|`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod blocks;
mod database;
mod error;
mod fact;
mod keys;
mod repairs;
mod schema;
pub mod snapshot;
mod symbol;
mod value;

pub use blocks::{Block, BlockDelta, BlockId, BlockPartition, KeyValue};
pub use database::{AppliedMutation, CompactionReport, Database, FactId, Mutation};
pub use error::DbError;
pub use fact::Fact;
pub use keys::{KeySet, KeySetBuilder};
pub use repairs::{count_repairs, describe_repair, Repair, RepairIter};
pub use schema::{RelationId, RelationInfo, Schema};
pub use snapshot::{Snapshot, SnapshotError};
pub use symbol::{Symbol, SymbolTable};
pub use value::{parse_value, Value};
