//! Relational schemas.

use std::collections::HashMap;
use std::fmt;

use crate::DbError;

/// Identifier of a relation symbol within a [`Schema`].
///
/// Relation ids are dense indices assigned in declaration order, so they can
/// be used to index per-relation side tables (the database keeps one fact
/// index per relation, the key set one optional key per relation).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct RelationId(pub(crate) u32);

impl RelationId {
    /// The dense index of this relation.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Declaration of a single relation symbol: its name and arity.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RelationInfo {
    name: String,
    arity: usize,
}

impl RelationInfo {
    /// The relation's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The relation's arity (always at least 1).
    pub fn arity(&self) -> usize {
        self.arity
    }
}

/// A relational schema: a finite set of relation symbols with arities.
///
/// ```
/// use cdr_repairdb::Schema;
///
/// let mut schema = Schema::new();
/// let emp = schema.add_relation("Employee", 3).unwrap();
/// assert_eq!(schema.relation(emp).name(), "Employee");
/// assert_eq!(schema.relation(emp).arity(), 3);
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Schema {
    relations: Vec<RelationInfo>,
    by_name: HashMap<String, RelationId>,
}

impl Schema {
    /// Creates an empty schema.
    pub fn new() -> Self {
        Schema::default()
    }

    /// Declares a relation with the given name and arity.
    ///
    /// Returns an error if the name is already taken or the arity is zero.
    pub fn add_relation(&mut self, name: &str, arity: usize) -> Result<RelationId, DbError> {
        if arity == 0 {
            return Err(DbError::ZeroArity(name.to_string()));
        }
        if self.by_name.contains_key(name) {
            return Err(DbError::DuplicateRelation(name.to_string()));
        }
        let id = RelationId(self.relations.len() as u32);
        self.relations.push(RelationInfo {
            name: name.to_string(),
            arity,
        });
        self.by_name.insert(name.to_string(), id);
        Ok(id)
    }

    /// Looks up a relation by name.
    pub fn relation_id(&self, name: &str) -> Option<RelationId> {
        self.by_name.get(name).copied()
    }

    /// Looks up a relation by name, returning a descriptive error when it is
    /// not declared.
    pub fn require(&self, name: &str) -> Result<RelationId, DbError> {
        self.relation_id(name)
            .ok_or_else(|| DbError::UnknownRelation(name.to_string()))
    }

    /// Returns the declaration of a relation.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this schema.
    pub fn relation(&self, id: RelationId) -> &RelationInfo {
        &self.relations[id.index()]
    }

    /// The arity of a relation.
    pub fn arity(&self, id: RelationId) -> usize {
        self.relation(id).arity
    }

    /// The name of a relation.
    pub fn name(&self, id: RelationId) -> &str {
        self.relation(id).name()
    }

    /// Number of declared relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// Returns `true` iff no relation has been declared.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// Iterates over all relations in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = (RelationId, &RelationInfo)> {
        self.relations
            .iter()
            .enumerate()
            .map(|(i, info)| (RelationId(i as u32), info))
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, rel) in self.relations.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{}/{}", rel.name, rel.arity)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declare_and_look_up() {
        let mut schema = Schema::new();
        let r = schema.add_relation("R", 2).unwrap();
        let s = schema.add_relation("S", 1).unwrap();
        assert_eq!(schema.relation_id("R"), Some(r));
        assert_eq!(schema.relation_id("S"), Some(s));
        assert_eq!(schema.relation_id("T"), None);
        assert_eq!(schema.arity(r), 2);
        assert_eq!(schema.name(s), "S");
        assert_eq!(schema.len(), 2);
        assert!(!schema.is_empty());
        assert_eq!(schema.iter().count(), 2);
    }

    #[test]
    fn duplicate_relation_is_rejected() {
        let mut schema = Schema::new();
        schema.add_relation("R", 2).unwrap();
        assert_eq!(
            schema.add_relation("R", 3),
            Err(DbError::DuplicateRelation("R".into()))
        );
    }

    #[test]
    fn zero_arity_is_rejected() {
        let mut schema = Schema::new();
        assert_eq!(
            schema.add_relation("R", 0),
            Err(DbError::ZeroArity("R".into()))
        );
    }

    #[test]
    fn require_reports_unknown_relations() {
        let schema = Schema::new();
        assert_eq!(
            schema.require("Missing"),
            Err(DbError::UnknownRelation("Missing".into()))
        );
    }

    #[test]
    fn display_lists_relations_with_arity() {
        let mut schema = Schema::new();
        schema.add_relation("Employee", 3).unwrap();
        schema.add_relation("Dept", 2).unwrap();
        let text = schema.to_string();
        assert!(text.contains("Employee/3"));
        assert!(text.contains("Dept/2"));
    }
}
