//! Block decomposition of an inconsistent database.
//!
//! Following Section 2.1 of the paper, the facts of a database `D` are
//! partitioned into *blocks*: two facts belong to the same block iff they
//! have the same key value `keyΣ(α)`.  Facts of relations without a key are
//! their own singleton blocks (their key value is the whole tuple).  Blocks
//! are ordered by the lexicographic ordering `≺_{D,Σ}` on key values, which
//! fixes the sequence `B₁, …, Bₙ` used by every algorithm in the paper
//! (Algorithm 1, Algorithm 2, and the FPRAS).

use std::collections::HashMap;
use std::fmt;

use crate::{AppliedMutation, Database, Fact, FactId, KeySet, RelationId, Value};

/// The key value `keyΣ(α)` of a fact: the relation symbol together with the
/// key prefix of the tuple (or the whole tuple for unkeyed relations).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct KeyValue {
    relation: RelationId,
    key: Box<[Value]>,
}

impl KeyValue {
    /// Computes the key value of a fact w.r.t. a key set.
    pub fn of(fact: &Fact, keys: &KeySet) -> KeyValue {
        let width = keys.key_width(fact.relation()).unwrap_or(fact.arity());
        KeyValue {
            relation: fact.relation(),
            key: fact.args()[..width].to_vec().into_boxed_slice(),
        }
    }

    /// The relation symbol of the key value.
    pub fn relation(&self) -> RelationId {
        self.relation
    }

    /// The key constants.
    pub fn key(&self) -> &[Value] {
        &self.key
    }

    /// A stable 64-bit routing hash of the key value (FNV-1a).
    ///
    /// Shard routing must be a pure function of the *data*, so the hash
    /// covers the relation index and the resolved content of each key
    /// constant — the integer payload or the string bytes — never interned
    /// [`Symbol`](crate::Symbol) ids, which depend on process-local
    /// interning order.  Each constant is tagged by kind and strings are
    /// terminated, so distinct key tuples cannot collide by concatenation.
    pub fn route_hash(&self) -> u64 {
        fn eat(h: &mut u64, bytes: &[u8]) {
            for &b in bytes {
                *h ^= u64::from(b);
                *h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        let mut h = 0xcbf2_9ce4_8422_2325_u64;
        eat(&mut h, &(self.relation.index() as u64).to_le_bytes());
        for value in self.key.iter() {
            match value {
                Value::Int(payload) => {
                    eat(&mut h, &[0x00]);
                    eat(&mut h, &payload.to_le_bytes());
                }
                Value::Text(symbol) => {
                    eat(&mut h, &[0x01]);
                    eat(&mut h, symbol.as_str().as_bytes());
                    eat(&mut h, &[0xff]);
                }
            }
        }
        h
    }
}

impl fmt::Display for KeyValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨r{}, (", self.relation.index())?;
        for (i, v) in self.key.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")⟩")
    }
}

/// Identifier of a block within a [`BlockPartition`].
///
/// Block ids are *stable slots*: once a key value is assigned a slot, every
/// mutation applied through [`BlockPartition::apply`] keeps that assignment,
/// so cached artifacts that name blocks (certificate boxes, selectors)
/// survive edits to unrelated blocks.  On a freshly built partition the
/// slot order coincides with the ordered sequence `B₁, …, Bₙ`, i.e.
/// `BlockId(0)` is the block whose key value is smallest under `≺_{D,Σ}`;
/// blocks created by later insertions revive the retired slot their key
/// previously occupied, or take the next free slot, regardless of where
/// their key value sorts.  Use [`BlockPartition::iter`] (or
/// [`BlockPartition::position_of_block`]) for the `≺_{D,Σ}` order.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct BlockId(pub(crate) u32);

impl BlockId {
    /// Builds a block id from a position in the ordered block sequence.
    pub fn new(index: usize) -> BlockId {
        BlockId(index as u32)
    }

    /// The position of this block in the ordered block sequence.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A block: all facts of the database that share one key value.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Block {
    key: KeyValue,
    facts: Vec<FactId>,
}

impl Block {
    /// The key value shared by the facts of the block.
    pub fn key(&self) -> &KeyValue {
        &self.key
    }

    /// The ids of the facts in the block, in ascending fact-id order.
    pub fn facts(&self) -> &[FactId] {
        &self.facts
    }

    /// Number of facts in the block.
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// Returns `true` iff the block is empty (never the case for blocks in a
    /// [`BlockPartition`]).
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }

    /// Returns `true` iff the block contains exactly one fact, i.e. the fact
    /// is not in conflict with any other fact.
    pub fn is_singleton(&self) -> bool {
        self.facts.len() == 1
    }

    /// Returns `true` iff the block contains the given fact.
    pub fn contains(&self, fact: FactId) -> bool {
        self.facts.binary_search(&fact).is_ok()
    }

    /// The position of a fact within the block, if present.
    pub fn position_of(&self, fact: FactId) -> Option<usize> {
        self.facts.binary_search(&fact).ok()
    }

    /// Inserts a fact id, keeping the ascending order.
    fn insert_fact(&mut self, fact: FactId) {
        if let Err(pos) = self.facts.binary_search(&fact) {
            self.facts.insert(pos, fact);
        }
    }

    /// Removes a fact id if present; returns whether it was.
    fn remove_fact(&mut self, fact: FactId) -> bool {
        match self.facts.binary_search(&fact) {
            Ok(pos) => {
                self.facts.remove(pos);
                true
            }
            Err(_) => false,
        }
    }
}

/// What one mutation did to a [`BlockPartition`]: which block slot changed
/// and how its size moved.
///
/// `old_len == 0` means the block was created by the mutation;
/// `new_len == 0` means the block was emptied and retired from the live
/// sequence.  The total repair count `∏ |Bᵢ|` can be maintained
/// incrementally from the delta alone: divide out `old_len` (when
/// non-zero) and multiply in `new_len` (when non-zero).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockDelta {
    /// The slot of the block the mutation touched.
    pub block: BlockId,
    /// Size of the block before the mutation (0 if it did not exist).
    pub old_len: usize,
    /// Size of the block after the mutation (0 if it was emptied).
    pub new_len: usize,
}

impl BlockDelta {
    /// Returns `true` iff the mutation created the block.
    pub fn created(&self) -> bool {
        self.old_len == 0 && self.new_len > 0
    }

    /// Returns `true` iff the mutation emptied (retired) the block.
    pub fn removed(&self) -> bool {
        self.old_len > 0 && self.new_len == 0
    }

    /// Returns `true` iff the block's size changed at all (a duplicate
    /// insertion changes nothing).
    pub fn changed(&self) -> bool {
        self.old_len != self.new_len
    }
}

/// The ordered block sequence `B₁, …, Bₙ` of a database w.r.t. a set of
/// primary keys.
///
/// ```
/// use cdr_repairdb::{BlockPartition, Database, KeySet, Schema};
///
/// let mut schema = Schema::new();
/// schema.add_relation("Employee", 3).unwrap();
/// let keys = KeySet::builder(&schema).key("Employee", 1).unwrap().build();
/// let mut db = Database::new(schema);
/// db.insert_parsed("Employee(1, 'Bob', 'HR')").unwrap();
/// db.insert_parsed("Employee(1, 'Bob', 'IT')").unwrap();
/// db.insert_parsed("Employee(2, 'Alice', 'IT')").unwrap();
/// db.insert_parsed("Employee(2, 'Tim', 'IT')").unwrap();
///
/// let blocks = BlockPartition::new(&db, &keys);
/// assert_eq!(blocks.len(), 2);
/// assert_eq!(blocks.sizes(), vec![2, 2]);
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BlockPartition {
    /// Block slots.  A slot whose block is empty has been retired by a
    /// deletion; it stays in place so every other slot keeps its id.
    blocks: Vec<Block>,
    /// The live (non-empty) slots in `≺_{D,Σ}` order of their key values.
    order: Vec<BlockId>,
    fact_to_block: HashMap<FactId, BlockId>,
    /// Key value → live slot.  When a block empties its key moves to
    /// `retired`, and re-inserting the key later *revives* its original
    /// slot, so slot growth is bounded by the number of distinct key
    /// values ever live (not by insert/delete churn).
    key_to_block: HashMap<KeyValue, BlockId>,
    /// Key value → retired (empty) slot awaiting possible revival.
    retired: HashMap<KeyValue, BlockId>,
}

impl BlockPartition {
    /// Computes the block partition of `db` w.r.t. `keys`.
    ///
    /// On a fresh partition, slot ids coincide with `≺_{D,Σ}` positions.
    pub fn new(db: &Database, keys: &KeySet) -> Self {
        let mut grouped: HashMap<KeyValue, Vec<FactId>> = HashMap::new();
        for (id, fact) in db.iter() {
            grouped
                .entry(KeyValue::of(fact, keys))
                .or_default()
                .push(id);
        }
        let mut entries: Vec<(KeyValue, Vec<FactId>)> = grouped.into_iter().collect();
        // ≺_{D,Σ}: lexicographic ordering over key values.
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        let mut blocks = Vec::with_capacity(entries.len());
        let mut fact_to_block = HashMap::new();
        let mut key_to_block = HashMap::new();
        for (i, (key, mut facts)) in entries.into_iter().enumerate() {
            facts.sort();
            let id = BlockId(i as u32);
            for &f in &facts {
                fact_to_block.insert(f, id);
            }
            key_to_block.insert(key.clone(), id);
            blocks.push(Block { key, facts });
        }
        let order = (0..blocks.len()).map(|i| BlockId(i as u32)).collect();
        BlockPartition {
            blocks,
            order,
            fact_to_block,
            key_to_block,
            retired: HashMap::new(),
        }
    }

    /// Applies one database mutation incrementally, rebuilding only the
    /// touched key-block, and reports which block changed and how.
    ///
    /// The caller is responsible for feeding every [`AppliedMutation`] the
    /// database reports (in order) with the same `keys` the partition was
    /// built with; the partition then stays equal, block for block, to what
    /// a fresh recomputation over the live facts would produce — up to slot
    /// numbering, which is intentionally kept stable instead of re-sorted.
    pub fn apply(&mut self, keys: &KeySet, applied: &AppliedMutation) -> BlockDelta {
        match applied {
            AppliedMutation::AlreadyPresent { id } => {
                let block = self
                    .block_of(*id)
                    .expect("a duplicate insertion names a live fact");
                let len = self.blocks[block.index()].len();
                BlockDelta {
                    block,
                    old_len: len,
                    new_len: len,
                }
            }
            AppliedMutation::Inserted { id, fact } => {
                let key = KeyValue::of(fact, keys);
                match self.key_to_block.get(&key) {
                    Some(&block) => {
                        let slot = &mut self.blocks[block.index()];
                        let old_len = slot.len();
                        slot.insert_fact(*id);
                        self.fact_to_block.insert(*id, block);
                        BlockDelta {
                            block,
                            old_len,
                            new_len: old_len + 1,
                        }
                    }
                    None => {
                        // Revive the key's retired slot if it ever had
                        // one; otherwise allocate the next fresh slot.
                        // Either way slot ids stay stable, and revival
                        // keeps churn from growing the slot table.
                        let block = match self.retired.remove(&key) {
                            Some(block) => block,
                            None => {
                                let block = BlockId(self.blocks.len() as u32);
                                self.blocks.push(Block {
                                    key: key.clone(),
                                    facts: Vec::new(),
                                });
                                block
                            }
                        };
                        let position = self
                            .order
                            .binary_search_by(|&b| self.blocks[b.index()].key().cmp(&key))
                            .expect_err("a fresh key value is not in the live order");
                        self.blocks[block.index()].facts.push(*id);
                        self.order.insert(position, block);
                        self.key_to_block.insert(key, block);
                        self.fact_to_block.insert(*id, block);
                        BlockDelta {
                            block,
                            old_len: 0,
                            new_len: 1,
                        }
                    }
                }
            }
            AppliedMutation::Deleted { id, .. } => {
                let block = self
                    .fact_to_block
                    .remove(id)
                    .expect("a deletion names a fact the partition knows");
                let slot = &mut self.blocks[block.index()];
                let old_len = slot.len();
                let removed = slot.remove_fact(*id);
                debug_assert!(removed, "fact_to_block and block contents agree");
                let new_len = old_len - 1;
                if new_len == 0 {
                    // Retire the slot: evict it from the live order and
                    // the key index, but keep the slot itself (parked in
                    // `retired`) so ids stay stable and a later re-insert
                    // of the key revives it.
                    let key = slot.key.clone();
                    self.key_to_block.remove(&key);
                    self.retired.insert(key.clone(), block);
                    let position = self
                        .order
                        .binary_search_by(|&b| self.blocks[b.index()].key().cmp(&key))
                        .expect("a retiring block is in the live order");
                    self.order.remove(position);
                }
                BlockDelta {
                    block,
                    old_len,
                    new_len,
                }
            }
        }
    }

    /// Rebuilds the partition after a [`Database::compact`]: retired
    /// (never-revived) slots are dropped, the surviving blocks are
    /// renumbered so slot ids coincide with `≺_{D,Σ}` positions again (as
    /// on a freshly built partition), and every fact id is remapped
    /// through the compaction's translation table.
    ///
    /// The `≺_{D,Σ}` sequence itself is untouched: block keys, block
    /// sizes and the relative order of facts within each block are all
    /// preserved (the translation is monotone), so exact counts and
    /// seeded estimates derived from the rebuilt partition are
    /// bit-for-bit identical to pre-compaction answers over the same live
    /// facts.  The rebuilt partition equals `BlockPartition::new` over
    /// the compacted database.
    ///
    /// Slot renumbering invalidates every cached artifact that names
    /// blocks or facts (certificate boxes, selectors, choice vectors);
    /// callers must drop such caches — the engine clears its plan cache —
    /// before answering from the compacted partition.
    pub fn rebuild_compacted(&mut self, report: &crate::CompactionReport) {
        let old_blocks = std::mem::take(&mut self.blocks);
        let old_order = std::mem::take(&mut self.order);
        self.fact_to_block.clear();
        self.key_to_block.clear();
        self.retired.clear();
        self.blocks.reserve_exact(old_order.len());
        for old_id in old_order {
            let block = &old_blocks[old_id.index()];
            let id = BlockId(self.blocks.len() as u32);
            let facts: Vec<FactId> = block
                .facts
                .iter()
                .map(|&f| {
                    report
                        .translate(f)
                        .expect("live blocks hold only live facts")
                })
                .collect();
            debug_assert!(
                facts.windows(2).all(|w| w[0] < w[1]),
                "a monotone translation preserves in-block fact order"
            );
            for &f in &facts {
                self.fact_to_block.insert(f, id);
            }
            self.key_to_block.insert(block.key.clone(), id);
            self.blocks.push(Block {
                key: block.key.clone(),
                facts,
            });
        }
        self.order = (0..self.blocks.len()).map(|i| BlockId(i as u32)).collect();
    }

    /// Number of live blocks `n`.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Returns `true` iff the database has no live facts.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Number of slots ever allocated (live blocks plus retired ones).
    ///
    /// Choice vectors indexed by [`BlockId::index`] must have this length.
    pub fn slot_count(&self) -> usize {
        self.blocks.len()
    }

    /// The live blocks in `≺_{D,Σ}` order.
    pub fn blocks(&self) -> impl Iterator<Item = &Block> {
        self.order.iter().map(|&b| &self.blocks[b.index()])
    }

    /// The block in slot `id` (possibly empty, if the slot was retired by a
    /// deletion).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// The block containing the given fact, if the fact belongs to the
    /// underlying database.
    pub fn block_of(&self, fact: FactId) -> Option<BlockId> {
        self.fact_to_block.get(&fact).copied()
    }

    /// The position of a live block in the `≺_{D,Σ}` sequence, or `None`
    /// for retired slots.
    pub fn position_of_block(&self, id: BlockId) -> Option<usize> {
        let key = self.blocks.get(id.index())?.key();
        let position = self
            .order
            .binary_search_by(|&b| self.blocks[b.index()].key().cmp(key))
            .ok()?;
        // Defensive: only report a position for the slot that is actually
        // live under this key (a revived key always reuses its slot, so
        // this can only differ if the slot itself is retired).
        (self.order[position] == id).then_some(position)
    }

    /// The live block at a given `≺_{D,Σ}` position.
    ///
    /// # Panics
    ///
    /// Panics if `position >= self.len()`.
    pub fn block_at(&self, position: usize) -> (BlockId, &Block) {
        let id = self.order[position];
        (id, &self.blocks[id.index()])
    }

    /// Iterates over the live `(BlockId, &Block)` pairs in `≺_{D,Σ}` order.
    pub fn iter(&self) -> impl Iterator<Item = (BlockId, &Block)> {
        self.order.iter().map(|&b| (b, &self.blocks[b.index()]))
    }

    /// The sizes `|B₁|, …, |Bₙ|` of the live blocks in `≺_{D,Σ}` order.
    pub fn sizes(&self) -> Vec<usize> {
        self.blocks().map(|b| b.len()).collect()
    }

    /// The per-slot sizes, indexed by [`BlockId::index`]; retired slots
    /// have size 0.
    pub fn slot_sizes(&self) -> Vec<usize> {
        self.blocks.iter().map(|b| b.len()).collect()
    }

    /// The maximum block size `m = maxᵢ |Bᵢ|` (zero for an empty database).
    pub fn max_block_size(&self) -> usize {
        self.blocks().map(|b| b.len()).max().unwrap_or(0)
    }

    /// Returns `true` iff every live block is a singleton, i.e. the
    /// database is consistent w.r.t. the keys used to build the partition.
    pub fn is_consistent(&self) -> bool {
        self.blocks().all(Block::is_singleton)
    }

    /// Number of live blocks with more than one fact (the number of key
    /// values that are actually in conflict).
    pub fn conflicting_block_count(&self) -> usize {
        self.blocks().filter(|b| !b.is_singleton()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Mutation, Schema};

    fn employee_db() -> (Database, KeySet) {
        let mut schema = Schema::new();
        schema.add_relation("Employee", 3).unwrap();
        let keys = KeySet::builder(&schema).key("Employee", 1).unwrap().build();
        let mut db = Database::new(schema);
        db.insert_parsed("Employee(1, 'Bob', 'HR')").unwrap();
        db.insert_parsed("Employee(1, 'Bob', 'IT')").unwrap();
        db.insert_parsed("Employee(2, 'Alice', 'IT')").unwrap();
        db.insert_parsed("Employee(2, 'Tim', 'IT')").unwrap();
        (db, keys)
    }

    #[test]
    fn example_1_1_has_two_blocks_of_two() {
        let (db, keys) = employee_db();
        let blocks = BlockPartition::new(&db, &keys);
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks.sizes(), vec![2, 2]);
        assert_eq!(blocks.max_block_size(), 2);
        assert!(!blocks.is_consistent());
        assert_eq!(blocks.conflicting_block_count(), 2);
    }

    #[test]
    fn blocks_are_ordered_by_key_value() {
        let (db, keys) = employee_db();
        let blocks = BlockPartition::new(&db, &keys);
        // Employee id 1 block comes before employee id 2 block.
        assert_eq!(blocks.block(BlockId(0)).key().key(), &[Value::int(1)]);
        assert_eq!(blocks.block(BlockId(1)).key().key(), &[Value::int(2)]);
    }

    #[test]
    fn block_of_maps_facts_to_their_block() {
        let (db, keys) = employee_db();
        let blocks = BlockPartition::new(&db, &keys);
        for (id, fact) in db.iter() {
            let b = blocks.block_of(id).unwrap();
            assert!(blocks.block(b).contains(id));
            assert_eq!(
                blocks.block(b).key().key()[0],
                fact.args()[0],
                "fact must live in the block of its own key"
            );
            assert!(blocks.block(b).position_of(id).is_some());
        }
        assert_eq!(blocks.block_of(FactId(999)), None);
    }

    #[test]
    fn unkeyed_relations_form_singleton_blocks() {
        let mut schema = Schema::new();
        schema.add_relation("Log", 2).unwrap();
        let keys = KeySet::empty(&schema);
        let mut db = Database::new(schema);
        db.insert_parsed("Log(1, 'a')").unwrap();
        db.insert_parsed("Log(1, 'b')").unwrap();
        db.insert_parsed("Log(2, 'a')").unwrap();
        let blocks = BlockPartition::new(&db, &keys);
        assert_eq!(blocks.len(), 3);
        assert!(blocks.is_consistent());
        assert_eq!(blocks.conflicting_block_count(), 0);
        assert!(blocks.blocks().all(Block::is_singleton));
    }

    #[test]
    fn consistent_keyed_database_has_singleton_blocks() {
        let mut schema = Schema::new();
        schema.add_relation("Employee", 3).unwrap();
        let keys = KeySet::builder(&schema).key("Employee", 1).unwrap().build();
        let mut db = Database::new(schema);
        db.insert_parsed("Employee(1, 'Bob', 'HR')").unwrap();
        db.insert_parsed("Employee(2, 'Alice', 'IT')").unwrap();
        let blocks = BlockPartition::new(&db, &keys);
        assert!(blocks.is_consistent());
        assert_eq!(blocks.len(), 2);
    }

    #[test]
    fn empty_database_has_empty_partition() {
        let schema = Schema::new();
        let keys = KeySet::empty(&schema);
        let db = Database::new(schema);
        let blocks = BlockPartition::new(&db, &keys);
        assert!(blocks.is_empty());
        assert_eq!(blocks.len(), 0);
        assert_eq!(blocks.max_block_size(), 0);
        assert!(blocks.is_consistent());
    }

    #[test]
    fn composite_keys_group_by_prefix() {
        let mut schema = Schema::new();
        schema.add_relation("Assign", 3).unwrap();
        let keys = KeySet::builder(&schema).key("Assign", 2).unwrap().build();
        let mut db = Database::new(schema);
        db.insert_parsed("Assign(1, 'p1', 'alice')").unwrap();
        db.insert_parsed("Assign(1, 'p1', 'bob')").unwrap();
        db.insert_parsed("Assign(1, 'p2', 'carol')").unwrap();
        let blocks = BlockPartition::new(&db, &keys);
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks.sizes(), vec![2, 1]);
    }

    #[test]
    fn key_value_display_is_readable() {
        let (db, keys) = employee_db();
        let (_, fact) = db.iter().next().unwrap();
        let kv = KeyValue::of(fact, &keys);
        assert_eq!(kv.relation().index(), 0);
        let text = kv.to_string();
        assert!(text.contains("r0"));
        assert!(text.contains('1'));
    }

    /// Asserts that an incrementally maintained partition is equal, block
    /// for block in `≺_{D,Σ}` order, to a fresh recomputation (slot
    /// numbering may differ, which is the point of stable slots).
    fn assert_matches_fresh(blocks: &BlockPartition, db: &Database, keys: &KeySet) {
        let fresh = BlockPartition::new(db, keys);
        let live: Vec<(&KeyValue, &[FactId])> =
            blocks.iter().map(|(_, b)| (b.key(), b.facts())).collect();
        let expected: Vec<(&KeyValue, &[FactId])> =
            fresh.iter().map(|(_, b)| (b.key(), b.facts())).collect();
        assert_eq!(live, expected);
        assert_eq!(blocks.len(), fresh.len());
        assert_eq!(blocks.sizes(), fresh.sizes());
        assert_eq!(blocks.max_block_size(), fresh.max_block_size());
        assert_eq!(blocks.is_consistent(), fresh.is_consistent());
        for (id, b) in blocks.iter() {
            for &f in b.facts() {
                assert_eq!(blocks.block_of(f), Some(id));
            }
        }
    }

    #[test]
    fn apply_insert_into_existing_block_resizes_it() {
        let (mut db, keys) = employee_db();
        let mut blocks = BlockPartition::new(&db, &keys);
        let applied = db
            .apply(Mutation::Insert(
                db.parse_fact("Employee(1, 'Bob', 'Sales')").unwrap(),
            ))
            .unwrap();
        let delta = blocks.apply(&keys, &applied);
        assert_eq!(delta.old_len, 2);
        assert_eq!(delta.new_len, 3);
        assert!(delta.changed() && !delta.created() && !delta.removed());
        assert_eq!(delta.block, BlockId(0), "employee 1 lives in slot 0");
        assert_matches_fresh(&blocks, &db, &keys);
    }

    #[test]
    fn apply_insert_with_fresh_key_creates_block_in_order() {
        let (mut db, keys) = employee_db();
        let mut blocks = BlockPartition::new(&db, &keys);
        // Key 0 sorts before both existing blocks, but takes the next slot.
        let applied = db
            .apply(Mutation::Insert(
                db.parse_fact("Employee(0, 'Zoe', 'HR')").unwrap(),
            ))
            .unwrap();
        let delta = blocks.apply(&keys, &applied);
        assert!(delta.created());
        assert_eq!(delta.block, BlockId(2), "new blocks take the next slot");
        assert_eq!(blocks.position_of_block(delta.block), Some(0));
        assert_eq!(blocks.len(), 3);
        assert_eq!(blocks.slot_count(), 3);
        assert_matches_fresh(&blocks, &db, &keys);
    }

    #[test]
    fn apply_delete_retires_emptied_blocks_and_keeps_slots_stable() {
        let (mut db, keys) = employee_db();
        let mut blocks = BlockPartition::new(&db, &keys);
        // Delete both facts of employee 1: the block retires.
        for text in ["Employee(1, 'Bob', 'HR')", "Employee(1, 'Bob', 'IT')"] {
            let id = db.fact_id(&db.parse_fact(text).unwrap()).unwrap();
            let applied = db.apply(Mutation::Delete(id)).unwrap();
            let delta = blocks.apply(&keys, &applied);
            assert_eq!(delta.block, BlockId(0));
        }
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks.slot_count(), 2, "the retired slot stays");
        assert!(blocks.block(BlockId(0)).is_empty());
        assert_eq!(blocks.position_of_block(BlockId(0)), None);
        // Employee 2 keeps its slot id and is now first in ≺ order.
        assert_eq!(blocks.position_of_block(BlockId(1)), Some(0));
        assert_eq!(blocks.slot_sizes(), vec![0, 2]);
        assert_matches_fresh(&blocks, &db, &keys);
        // Re-inserting employee 1 revives its original slot: churn on one
        // key never grows the slot table.
        let applied = db
            .apply(Mutation::Insert(
                db.parse_fact("Employee(1, 'Bob', 'HR')").unwrap(),
            ))
            .unwrap();
        let delta = blocks.apply(&keys, &applied);
        assert!(delta.created());
        assert_eq!(delta.block, BlockId(0));
        assert_eq!(blocks.slot_count(), 2);
        assert_eq!(blocks.position_of_block(BlockId(0)), Some(0));
        assert_matches_fresh(&blocks, &db, &keys);
        // A genuinely new key still allocates a fresh slot.
        let applied = db
            .apply(Mutation::Insert(
                db.parse_fact("Employee(3, 'Ann', 'IT')").unwrap(),
            ))
            .unwrap();
        let delta = blocks.apply(&keys, &applied);
        assert!(delta.created());
        assert_eq!(delta.block, BlockId(2));
        assert_eq!(blocks.slot_count(), 3);
        assert_matches_fresh(&blocks, &db, &keys);
    }

    #[test]
    fn apply_duplicate_insertion_is_a_visible_noop() {
        let (mut db, keys) = employee_db();
        let mut blocks = BlockPartition::new(&db, &keys);
        let applied = db
            .apply(Mutation::Insert(
                db.parse_fact("Employee(1, 'Bob', 'HR')").unwrap(),
            ))
            .unwrap();
        let delta = blocks.apply(&keys, &applied);
        assert!(!delta.changed());
        assert_eq!(delta.old_len, 2);
        assert_eq!(delta.new_len, 2);
        assert_matches_fresh(&blocks, &db, &keys);
    }

    #[test]
    fn random_mutation_interleavings_match_fresh_recomputation() {
        let mut schema = Schema::new();
        schema.add_relation("R", 2).unwrap();
        schema.add_relation("S", 2).unwrap();
        let keys = KeySet::builder(&schema)
            .key("R", 1)
            .unwrap()
            .key("S", 1)
            .unwrap()
            .build();
        let mut db = Database::new(schema);
        let mut blocks = BlockPartition::new(&db, &keys);
        // A deterministic pseudo-random walk of inserts and deletes.
        let mut state: u64 = 0x9E37_79B9_7F4A_7C15;
        for step in 0..200 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let relation = if state & 1 == 0 { "R" } else { "S" };
            let key = (state >> 8) % 6;
            let payload = (state >> 16) % 3;
            let delete = step > 40 && (state >> 24).is_multiple_of(3);
            let applied = if delete {
                let victim = db
                    .iter()
                    .nth((state >> 32) as usize % db.len().max(1))
                    .map(|(id, _)| id);
                match victim {
                    Some(id) => db.apply(Mutation::Delete(id)).unwrap(),
                    None => continue,
                }
            } else {
                let fact = db
                    .parse_fact(&format!("{relation}({key}, 'p{payload}')"))
                    .unwrap();
                db.apply(Mutation::Insert(fact)).unwrap()
            };
            blocks.apply(&keys, &applied);
        }
        assert_matches_fresh(&blocks, &db, &keys);
    }

    #[test]
    fn rebuild_compacted_equals_a_fresh_partition_over_the_compacted_db() {
        let (mut db, keys) = employee_db();
        let mut blocks = BlockPartition::new(&db, &keys);
        // Churn: retire the employee-1 block, revive it, add a fresh key,
        // then delete one of its facts — slots are non-dense and the slot
        // order no longer matches ≺.
        for text in ["Employee(1, 'Bob', 'HR')", "Employee(1, 'Bob', 'IT')"] {
            let id = db.fact_id(&db.parse_fact(text).unwrap()).unwrap();
            blocks.apply(&keys, &db.apply(Mutation::Delete(id)).unwrap());
        }
        for text in [
            "Employee(0, 'Zoe', 'HR')",
            "Employee(1, 'Bob', 'Sales')",
            "Employee(3, 'Ann', 'IT')",
        ] {
            let fact = db.parse_fact(text).unwrap();
            blocks.apply(&keys, &db.apply(Mutation::Insert(fact)).unwrap());
        }
        let ann = db
            .fact_id(&db.parse_fact("Employee(3, 'Ann', 'IT')").unwrap())
            .unwrap();
        blocks.apply(&keys, &db.apply(Mutation::Delete(ann)).unwrap());
        assert!(blocks.slot_count() > blocks.len(), "a retired slot exists");
        let sizes_before = blocks.sizes();
        let keys_before: Vec<KeyValue> = blocks.blocks().map(|b| b.key().clone()).collect();

        let report = db.compact();
        blocks.rebuild_compacted(&report);

        // Bit-for-bit the same ≺ sequence: keys and sizes are unchanged.
        assert_eq!(blocks.sizes(), sizes_before);
        let keys_after: Vec<KeyValue> = blocks.blocks().map(|b| b.key().clone()).collect();
        assert_eq!(keys_after, keys_before);
        // Slots are dense again and coincide with ≺ positions, exactly as
        // on a fresh partition — which the rebuilt one now *equals*.
        assert_eq!(blocks.slot_count(), blocks.len());
        for (position, (id, _)) in blocks.iter().enumerate() {
            assert_eq!(id.index(), position);
            assert_eq!(blocks.position_of_block(id), Some(position));
        }
        let fresh = BlockPartition::new(&db, &keys);
        assert_eq!(blocks, fresh);
        // The fact index agrees with the compacted ids.
        for (id, _) in db.iter() {
            let b = blocks.block_of(id).expect("every live fact has a block");
            assert!(blocks.block(b).contains(id));
        }
        assert_matches_fresh(&blocks, &db, &keys);
    }

    #[test]
    fn multi_relation_blocks_are_grouped_per_relation() {
        let mut schema = Schema::new();
        schema.add_relation("R", 2).unwrap();
        schema.add_relation("S", 2).unwrap();
        let keys = KeySet::builder(&schema)
            .key("R", 1)
            .unwrap()
            .key("S", 1)
            .unwrap()
            .build();
        let mut db = Database::new(schema);
        db.insert_parsed("R(1, 'a')").unwrap();
        db.insert_parsed("R(1, 'b')").unwrap();
        db.insert_parsed("S(1, 'a')").unwrap();
        db.insert_parsed("S(1, 'b')").unwrap();
        db.insert_parsed("S(1, 'c')").unwrap();
        let blocks = BlockPartition::new(&db, &keys);
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks.sizes(), vec![2, 3]);
        // Facts with the same key constant but different relations are in
        // different blocks.
        let r_block = blocks.block_of(FactId(0)).unwrap();
        let s_block = blocks.block_of(FactId(2)).unwrap();
        assert_ne!(r_block, s_block);
    }
}
