//! Block decomposition of an inconsistent database.
//!
//! Following Section 2.1 of the paper, the facts of a database `D` are
//! partitioned into *blocks*: two facts belong to the same block iff they
//! have the same key value `keyΣ(α)`.  Facts of relations without a key are
//! their own singleton blocks (their key value is the whole tuple).  Blocks
//! are ordered by the lexicographic ordering `≺_{D,Σ}` on key values, which
//! fixes the sequence `B₁, …, Bₙ` used by every algorithm in the paper
//! (Algorithm 1, Algorithm 2, and the FPRAS).

use std::collections::HashMap;
use std::fmt;

use crate::{Database, Fact, FactId, KeySet, RelationId, Value};

/// The key value `keyΣ(α)` of a fact: the relation symbol together with the
/// key prefix of the tuple (or the whole tuple for unkeyed relations).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct KeyValue {
    relation: RelationId,
    key: Box<[Value]>,
}

impl KeyValue {
    /// Computes the key value of a fact w.r.t. a key set.
    pub fn of(fact: &Fact, keys: &KeySet) -> KeyValue {
        let width = keys.key_width(fact.relation()).unwrap_or(fact.arity());
        KeyValue {
            relation: fact.relation(),
            key: fact.args()[..width].to_vec().into_boxed_slice(),
        }
    }

    /// The relation symbol of the key value.
    pub fn relation(&self) -> RelationId {
        self.relation
    }

    /// The key constants.
    pub fn key(&self) -> &[Value] {
        &self.key
    }
}

impl fmt::Display for KeyValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨r{}, (", self.relation.index())?;
        for (i, v) in self.key.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")⟩")
    }
}

/// Identifier of a block within a [`BlockPartition`].
///
/// Block ids are positions in the ordered sequence `B₁, …, Bₙ`, so
/// `BlockId(0)` is the block whose key value is smallest under `≺_{D,Σ}`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct BlockId(pub(crate) u32);

impl BlockId {
    /// Builds a block id from a position in the ordered block sequence.
    pub fn new(index: usize) -> BlockId {
        BlockId(index as u32)
    }

    /// The position of this block in the ordered block sequence.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A block: all facts of the database that share one key value.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Block {
    key: KeyValue,
    facts: Vec<FactId>,
}

impl Block {
    /// The key value shared by the facts of the block.
    pub fn key(&self) -> &KeyValue {
        &self.key
    }

    /// The ids of the facts in the block, in ascending fact-id order.
    pub fn facts(&self) -> &[FactId] {
        &self.facts
    }

    /// Number of facts in the block.
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// Returns `true` iff the block is empty (never the case for blocks in a
    /// [`BlockPartition`]).
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }

    /// Returns `true` iff the block contains exactly one fact, i.e. the fact
    /// is not in conflict with any other fact.
    pub fn is_singleton(&self) -> bool {
        self.facts.len() == 1
    }

    /// Returns `true` iff the block contains the given fact.
    pub fn contains(&self, fact: FactId) -> bool {
        self.facts.binary_search(&fact).is_ok()
    }

    /// The position of a fact within the block, if present.
    pub fn position_of(&self, fact: FactId) -> Option<usize> {
        self.facts.binary_search(&fact).ok()
    }
}

/// The ordered block sequence `B₁, …, Bₙ` of a database w.r.t. a set of
/// primary keys.
///
/// ```
/// use cdr_repairdb::{BlockPartition, Database, KeySet, Schema};
///
/// let mut schema = Schema::new();
/// schema.add_relation("Employee", 3).unwrap();
/// let keys = KeySet::builder(&schema).key("Employee", 1).unwrap().build();
/// let mut db = Database::new(schema);
/// db.insert_parsed("Employee(1, 'Bob', 'HR')").unwrap();
/// db.insert_parsed("Employee(1, 'Bob', 'IT')").unwrap();
/// db.insert_parsed("Employee(2, 'Alice', 'IT')").unwrap();
/// db.insert_parsed("Employee(2, 'Tim', 'IT')").unwrap();
///
/// let blocks = BlockPartition::new(&db, &keys);
/// assert_eq!(blocks.len(), 2);
/// assert_eq!(blocks.sizes(), vec![2, 2]);
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BlockPartition {
    blocks: Vec<Block>,
    fact_to_block: HashMap<FactId, BlockId>,
}

impl BlockPartition {
    /// Computes the block partition of `db` w.r.t. `keys`.
    pub fn new(db: &Database, keys: &KeySet) -> Self {
        let mut grouped: HashMap<KeyValue, Vec<FactId>> = HashMap::new();
        for (id, fact) in db.iter() {
            grouped
                .entry(KeyValue::of(fact, keys))
                .or_default()
                .push(id);
        }
        let mut entries: Vec<(KeyValue, Vec<FactId>)> = grouped.into_iter().collect();
        // ≺_{D,Σ}: lexicographic ordering over key values.
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        let mut blocks = Vec::with_capacity(entries.len());
        let mut fact_to_block = HashMap::new();
        for (i, (key, mut facts)) in entries.into_iter().enumerate() {
            facts.sort();
            let id = BlockId(i as u32);
            for &f in &facts {
                fact_to_block.insert(f, id);
            }
            blocks.push(Block { key, facts });
        }
        BlockPartition {
            blocks,
            fact_to_block,
        }
    }

    /// Number of blocks `n`.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Returns `true` iff the database was empty.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// The ordered blocks.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// The block at position `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// The block containing the given fact, if the fact belongs to the
    /// underlying database.
    pub fn block_of(&self, fact: FactId) -> Option<BlockId> {
        self.fact_to_block.get(&fact).copied()
    }

    /// Iterates over `(BlockId, &Block)` pairs in `≺_{D,Σ}` order.
    pub fn iter(&self) -> impl Iterator<Item = (BlockId, &Block)> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (BlockId(i as u32), b))
    }

    /// The sizes `|B₁|, …, |Bₙ|`.
    pub fn sizes(&self) -> Vec<usize> {
        self.blocks.iter().map(|b| b.len()).collect()
    }

    /// The maximum block size `m = maxᵢ |Bᵢ|` (zero for an empty database).
    pub fn max_block_size(&self) -> usize {
        self.blocks.iter().map(|b| b.len()).max().unwrap_or(0)
    }

    /// Returns `true` iff every block is a singleton, i.e. the database is
    /// consistent w.r.t. the keys used to build the partition.
    pub fn is_consistent(&self) -> bool {
        self.blocks.iter().all(Block::is_singleton)
    }

    /// Number of blocks with more than one fact (the number of key values
    /// that are actually in conflict).
    pub fn conflicting_block_count(&self) -> usize {
        self.blocks.iter().filter(|b| !b.is_singleton()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Schema;

    fn employee_db() -> (Database, KeySet) {
        let mut schema = Schema::new();
        schema.add_relation("Employee", 3).unwrap();
        let keys = KeySet::builder(&schema).key("Employee", 1).unwrap().build();
        let mut db = Database::new(schema);
        db.insert_parsed("Employee(1, 'Bob', 'HR')").unwrap();
        db.insert_parsed("Employee(1, 'Bob', 'IT')").unwrap();
        db.insert_parsed("Employee(2, 'Alice', 'IT')").unwrap();
        db.insert_parsed("Employee(2, 'Tim', 'IT')").unwrap();
        (db, keys)
    }

    #[test]
    fn example_1_1_has_two_blocks_of_two() {
        let (db, keys) = employee_db();
        let blocks = BlockPartition::new(&db, &keys);
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks.sizes(), vec![2, 2]);
        assert_eq!(blocks.max_block_size(), 2);
        assert!(!blocks.is_consistent());
        assert_eq!(blocks.conflicting_block_count(), 2);
    }

    #[test]
    fn blocks_are_ordered_by_key_value() {
        let (db, keys) = employee_db();
        let blocks = BlockPartition::new(&db, &keys);
        // Employee id 1 block comes before employee id 2 block.
        assert_eq!(blocks.block(BlockId(0)).key().key(), &[Value::int(1)]);
        assert_eq!(blocks.block(BlockId(1)).key().key(), &[Value::int(2)]);
    }

    #[test]
    fn block_of_maps_facts_to_their_block() {
        let (db, keys) = employee_db();
        let blocks = BlockPartition::new(&db, &keys);
        for (id, fact) in db.iter() {
            let b = blocks.block_of(id).unwrap();
            assert!(blocks.block(b).contains(id));
            assert_eq!(
                blocks.block(b).key().key()[0],
                fact.args()[0],
                "fact must live in the block of its own key"
            );
            assert!(blocks.block(b).position_of(id).is_some());
        }
        assert_eq!(blocks.block_of(FactId(999)), None);
    }

    #[test]
    fn unkeyed_relations_form_singleton_blocks() {
        let mut schema = Schema::new();
        schema.add_relation("Log", 2).unwrap();
        let keys = KeySet::empty(&schema);
        let mut db = Database::new(schema);
        db.insert_parsed("Log(1, 'a')").unwrap();
        db.insert_parsed("Log(1, 'b')").unwrap();
        db.insert_parsed("Log(2, 'a')").unwrap();
        let blocks = BlockPartition::new(&db, &keys);
        assert_eq!(blocks.len(), 3);
        assert!(blocks.is_consistent());
        assert_eq!(blocks.conflicting_block_count(), 0);
        assert!(blocks.blocks().iter().all(Block::is_singleton));
    }

    #[test]
    fn consistent_keyed_database_has_singleton_blocks() {
        let mut schema = Schema::new();
        schema.add_relation("Employee", 3).unwrap();
        let keys = KeySet::builder(&schema).key("Employee", 1).unwrap().build();
        let mut db = Database::new(schema);
        db.insert_parsed("Employee(1, 'Bob', 'HR')").unwrap();
        db.insert_parsed("Employee(2, 'Alice', 'IT')").unwrap();
        let blocks = BlockPartition::new(&db, &keys);
        assert!(blocks.is_consistent());
        assert_eq!(blocks.len(), 2);
    }

    #[test]
    fn empty_database_has_empty_partition() {
        let schema = Schema::new();
        let keys = KeySet::empty(&schema);
        let db = Database::new(schema);
        let blocks = BlockPartition::new(&db, &keys);
        assert!(blocks.is_empty());
        assert_eq!(blocks.len(), 0);
        assert_eq!(blocks.max_block_size(), 0);
        assert!(blocks.is_consistent());
    }

    #[test]
    fn composite_keys_group_by_prefix() {
        let mut schema = Schema::new();
        schema.add_relation("Assign", 3).unwrap();
        let keys = KeySet::builder(&schema).key("Assign", 2).unwrap().build();
        let mut db = Database::new(schema);
        db.insert_parsed("Assign(1, 'p1', 'alice')").unwrap();
        db.insert_parsed("Assign(1, 'p1', 'bob')").unwrap();
        db.insert_parsed("Assign(1, 'p2', 'carol')").unwrap();
        let blocks = BlockPartition::new(&db, &keys);
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks.sizes(), vec![2, 1]);
    }

    #[test]
    fn key_value_display_is_readable() {
        let (db, keys) = employee_db();
        let (_, fact) = db.iter().next().unwrap();
        let kv = KeyValue::of(fact, &keys);
        assert_eq!(kv.relation().index(), 0);
        let text = kv.to_string();
        assert!(text.contains("r0"));
        assert!(text.contains('1'));
    }

    #[test]
    fn multi_relation_blocks_are_grouped_per_relation() {
        let mut schema = Schema::new();
        schema.add_relation("R", 2).unwrap();
        schema.add_relation("S", 2).unwrap();
        let keys = KeySet::builder(&schema)
            .key("R", 1)
            .unwrap()
            .key("S", 1)
            .unwrap()
            .build();
        let mut db = Database::new(schema);
        db.insert_parsed("R(1, 'a')").unwrap();
        db.insert_parsed("R(1, 'b')").unwrap();
        db.insert_parsed("S(1, 'a')").unwrap();
        db.insert_parsed("S(1, 'b')").unwrap();
        db.insert_parsed("S(1, 'c')").unwrap();
        let blocks = BlockPartition::new(&db, &keys);
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks.sizes(), vec![2, 3]);
        // Facts with the same key constant but different relations are in
        // different blocks.
        let r_block = blocks.block_of(FactId(0)).unwrap();
        let s_block = blocks.block_of(FactId(2)).unwrap();
        assert_ne!(r_block, s_block);
    }
}
