//! Database constants.

use std::fmt;

use crate::{DbError, Symbol};

/// A database constant.
///
/// The paper assumes a countably infinite set `C` of constants; we realise
/// it as the disjoint union of 64-bit integers and interned strings.  Values
/// are totally ordered (integers before strings) so that key values can be
/// ordered lexicographically, which is how the paper fixes the block
/// sequence `B₁, …, Bₙ`.
///
/// String payloads are interned [`Symbol`]s: equality and hashing are
/// integer operations on the dense symbol id (the hot paths — fact
/// deduplication, block grouping, homomorphism search — never touch the
/// text), while ordering and display resolve through the symbol's shared
/// handle, so the observable behaviour is exactly that of plain strings.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// An integer constant.
    Int(i64),
    /// A string constant, interned in the global symbol table.
    Text(Symbol),
}

impl Value {
    /// Builds a string constant, interning the payload.
    pub fn text(s: impl AsRef<str>) -> Self {
        Value::Text(Symbol::intern(s))
    }

    /// Builds an integer constant.
    pub fn int(v: i64) -> Self {
        Value::Int(v)
    }

    /// Returns the integer payload, if this is an integer constant.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::Text(_) => None,
        }
    }

    /// Returns the string payload, if this is a string constant.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Int(_) => None,
            Value::Text(s) => Some(s.as_str()),
        }
    }

    /// Returns the interned symbol, if this is a string constant.
    pub fn as_symbol(&self) -> Option<&Symbol> {
        match self {
            Value::Int(_) => None,
            Value::Text(s) => Some(s),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::Int(v as i64)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::text(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::text(s)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Text(s) => write!(f, "'{s}'"),
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

/// Parses a single constant from text.
///
/// Accepted forms:
///
/// * a (possibly negative) integer: `42`, `-7`;
/// * a single-quoted string: `'IT department'` (no escapes);
/// * a double-quoted string: `"IT department"` (no escapes);
/// * a bare identifier (letters, digits, `_`, starting with a letter or
///   `_`), which is treated as a string constant: `Bob`.
pub fn parse_value(input: &str) -> Result<Value, DbError> {
    let s = input.trim();
    if s.is_empty() {
        return Err(DbError::Parse("empty value".into()));
    }
    if let Ok(i) = s.parse::<i64>() {
        return Ok(Value::Int(i));
    }
    let bytes = s.as_bytes();
    if (bytes[0] == b'\'' || bytes[0] == b'"') && s.len() >= 2 && bytes[s.len() - 1] == bytes[0] {
        return Ok(Value::text(&s[1..s.len() - 1]));
    }
    let is_ident = bytes[0].is_ascii_alphabetic() || bytes[0] == b'_';
    if is_ident
        && bytes
            .iter()
            .all(|b| b.is_ascii_alphanumeric() || *b == b'_')
    {
        return Ok(Value::text(s));
    }
    Err(DbError::Parse(format!("cannot parse value `{s}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_total_and_ints_come_first() {
        let mut vals = vec![
            Value::text("b"),
            Value::int(10),
            Value::text("a"),
            Value::int(-3),
        ];
        vals.sort();
        assert_eq!(
            vals,
            vec![
                Value::int(-3),
                Value::int(10),
                Value::text("a"),
                Value::text("b"),
            ]
        );
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::int(7).to_string(), "7");
        assert_eq!(Value::text("IT").to_string(), "'IT'");
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(3u32), Value::Int(3));
        assert_eq!(Value::from("x"), Value::text("x"));
        assert_eq!(Value::from("x".to_string()), Value::text("x"));
        assert_eq!(Value::int(5).as_int(), Some(5));
        assert_eq!(Value::int(5).as_text(), None);
        assert_eq!(Value::text("y").as_text(), Some("y"));
        assert_eq!(Value::text("y").as_int(), None);
    }

    #[test]
    fn parse_integers() {
        assert_eq!(parse_value("42").unwrap(), Value::int(42));
        assert_eq!(parse_value(" -7 ").unwrap(), Value::int(-7));
    }

    #[test]
    fn parse_quoted_strings() {
        assert_eq!(parse_value("'IT dept'").unwrap(), Value::text("IT dept"));
        assert_eq!(parse_value("\"HR\"").unwrap(), Value::text("HR"));
        assert_eq!(parse_value("''").unwrap(), Value::text(""));
    }

    #[test]
    fn parse_bare_identifiers() {
        assert_eq!(parse_value("Bob").unwrap(), Value::text("Bob"));
        assert_eq!(parse_value("_x1").unwrap(), Value::text("_x1"));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_value("").is_err());
        assert!(parse_value("   ").is_err());
        assert!(parse_value("a b").is_err());
        assert!(parse_value("3.14.15").is_err());
        assert!(parse_value("'unterminated").is_err());
    }
}
