//! Primary-key constraints.

use std::collections::HashMap;
use std::fmt;

use crate::{DbError, Fact, RelationId, Schema};

/// A set of *primary keys*: at most one key constraint per relation, each of
/// the form `key(R) = {1, …, m}` for some `1 ≤ m ≤ arity(R)`.
///
/// Following the paper (Section 2.1), keys are always prefixes of the
/// attribute list; this is without loss of generality because attributes can
/// be reordered.
///
/// ```
/// use cdr_repairdb::{KeySet, Schema};
///
/// let mut schema = Schema::new();
/// let emp = schema.add_relation("Employee", 3).unwrap();
/// let keys = KeySet::builder(&schema).key("Employee", 1).unwrap().build();
/// assert_eq!(keys.key_width(emp), Some(1));
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct KeySet {
    /// `widths[r]` is `Some(m)` iff `key(R_r) = {1, …, m}` is in the set.
    widths: Vec<Option<usize>>,
}

impl KeySet {
    /// Starts building a key set for the given schema.
    pub fn builder(schema: &Schema) -> KeySetBuilder<'_> {
        KeySetBuilder {
            schema,
            widths: vec![None; schema.len()],
        }
    }

    /// An empty key set (no relation has a key) sized for `schema`.
    pub fn empty(schema: &Schema) -> Self {
        KeySet {
            widths: vec![None; schema.len()],
        }
    }

    /// The key width `m` of relation `r`, if `r` has a key.
    pub fn key_width(&self, r: RelationId) -> Option<usize> {
        self.widths.get(r.index()).copied().flatten()
    }

    /// Returns `true` iff relation `r` has a key constraint.
    pub fn has_key(&self, r: RelationId) -> bool {
        self.key_width(r).is_some()
    }

    /// Number of relations that have a key.
    pub fn keyed_relation_count(&self) -> usize {
        self.widths.iter().filter(|w| w.is_some()).count()
    }

    /// Checks whether a set of facts satisfies every key in the set
    /// (Section 2.1: for every two facts that agree on the key attributes of
    /// their common relation, the facts are equal).
    pub fn satisfied_by<'a>(&self, facts: impl IntoIterator<Item = &'a Fact>) -> bool {
        let mut seen: HashMap<(RelationId, Vec<&crate::Value>), &Fact> = HashMap::new();
        for fact in facts {
            let Some(width) = self.key_width(fact.relation()) else {
                continue;
            };
            let key: Vec<&crate::Value> = fact.args().iter().take(width).collect();
            match seen.entry((fact.relation(), key)) {
                std::collections::hash_map::Entry::Occupied(prev) => {
                    if *prev.get() != fact {
                        return false;
                    }
                }
                std::collections::hash_map::Entry::Vacant(slot) => {
                    slot.insert(fact);
                }
            }
        }
        true
    }

    /// Lists the conflicting pairs among `facts`: pairs of distinct facts of
    /// the same keyed relation that agree on the key attributes.
    pub fn conflicts<'a>(&self, facts: &'a [Fact]) -> Vec<(&'a Fact, &'a Fact)> {
        let mut groups: HashMap<(RelationId, Vec<&crate::Value>), Vec<&'a Fact>> = HashMap::new();
        for fact in facts {
            let Some(width) = self.key_width(fact.relation()) else {
                continue;
            };
            let key: Vec<&crate::Value> = fact.args().iter().take(width).collect();
            groups.entry((fact.relation(), key)).or_default().push(fact);
        }
        let mut out = Vec::new();
        for group in groups.values() {
            for i in 0..group.len() {
                for j in (i + 1)..group.len() {
                    if group[i] != group[j] {
                        out.push((group[i], group[j]));
                    }
                }
            }
        }
        out
    }

    /// Renders the key set against a schema, e.g. `key(Employee) = {1}`.
    pub fn display<'a>(&'a self, schema: &'a Schema) -> KeySetDisplay<'a> {
        KeySetDisplay { keys: self, schema }
    }
}

/// Builder for [`KeySet`], validating key declarations against a schema.
pub struct KeySetBuilder<'a> {
    schema: &'a Schema,
    widths: Vec<Option<usize>>,
}

impl<'a> KeySetBuilder<'a> {
    /// Declares `key(relation) = {1, …, width}`.
    pub fn key(mut self, relation: &str, width: usize) -> Result<Self, DbError> {
        let id = self.schema.require(relation)?;
        let arity = self.schema.arity(id);
        if width == 0 || width > arity {
            return Err(DbError::InvalidKeyWidth {
                relation: relation.to_string(),
                arity,
                width,
            });
        }
        if self.widths[id.index()].is_some() {
            return Err(DbError::DuplicateKey(relation.to_string()));
        }
        self.widths[id.index()] = Some(width);
        Ok(self)
    }

    /// Finishes building the key set.
    pub fn build(self) -> KeySet {
        KeySet {
            widths: self.widths,
        }
    }
}

/// Helper returned by [`KeySet::display`].
pub struct KeySetDisplay<'a> {
    keys: &'a KeySet,
    schema: &'a Schema,
}

impl fmt::Display for KeySetDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (id, info) in self.schema.iter() {
            if let Some(w) = self.keys.key_width(id) {
                if !first {
                    writeln!(f)?;
                }
                first = false;
                let attrs: Vec<String> = (1..=w).map(|i| i.to_string()).collect();
                write!(f, "key({}) = {{{}}}", info.name(), attrs.join(", "))?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Value;

    fn setup() -> (Schema, RelationId, RelationId) {
        let mut schema = Schema::new();
        let emp = schema.add_relation("Employee", 3).unwrap();
        let dept = schema.add_relation("Dept", 2).unwrap();
        (schema, emp, dept)
    }

    fn emp_fact(emp: RelationId, id: i64, name: &str, dept: &str) -> Fact {
        Fact::new(
            emp,
            vec![Value::int(id), Value::text(name), Value::text(dept)],
        )
    }

    #[test]
    fn builder_accepts_valid_keys() {
        let (schema, emp, dept) = setup();
        let keys = KeySet::builder(&schema)
            .key("Employee", 1)
            .unwrap()
            .key("Dept", 2)
            .unwrap()
            .build();
        assert_eq!(keys.key_width(emp), Some(1));
        assert_eq!(keys.key_width(dept), Some(2));
        assert_eq!(keys.keyed_relation_count(), 2);
        assert!(keys.has_key(emp));
    }

    #[test]
    fn builder_rejects_bad_keys() {
        let (schema, _, _) = setup();
        assert!(matches!(
            KeySet::builder(&schema).key("Nope", 1),
            Err(DbError::UnknownRelation(_))
        ));
        assert!(matches!(
            KeySet::builder(&schema).key("Employee", 0),
            Err(DbError::InvalidKeyWidth { .. })
        ));
        assert!(matches!(
            KeySet::builder(&schema).key("Employee", 4),
            Err(DbError::InvalidKeyWidth { .. })
        ));
        assert!(matches!(
            KeySet::builder(&schema)
                .key("Employee", 1)
                .unwrap()
                .key("Employee", 2),
            Err(DbError::DuplicateKey(_))
        ));
    }

    #[test]
    fn empty_key_set_has_no_keys() {
        let (schema, emp, dept) = setup();
        let keys = KeySet::empty(&schema);
        assert!(!keys.has_key(emp));
        assert!(!keys.has_key(dept));
        assert_eq!(keys.keyed_relation_count(), 0);
    }

    #[test]
    fn satisfaction_detects_key_violations() {
        let (schema, emp, _) = setup();
        let keys = KeySet::builder(&schema).key("Employee", 1).unwrap().build();
        let consistent = vec![
            emp_fact(emp, 1, "Bob", "HR"),
            emp_fact(emp, 2, "Alice", "IT"),
        ];
        let inconsistent = vec![emp_fact(emp, 1, "Bob", "HR"), emp_fact(emp, 1, "Bob", "IT")];
        assert!(keys.satisfied_by(&consistent));
        assert!(!keys.satisfied_by(&inconsistent));
        // A duplicate fact (set semantics) is not a violation.
        let dup = vec![emp_fact(emp, 1, "Bob", "HR"), emp_fact(emp, 1, "Bob", "HR")];
        assert!(keys.satisfied_by(&dup));
    }

    #[test]
    fn unkeyed_relations_never_conflict() {
        let (schema, emp, _) = setup();
        let keys = KeySet::empty(&schema);
        let facts = vec![emp_fact(emp, 1, "Bob", "HR"), emp_fact(emp, 1, "Bob", "IT")];
        assert!(keys.satisfied_by(&facts));
        assert!(keys.conflicts(&facts).is_empty());
    }

    #[test]
    fn conflicts_lists_violating_pairs() {
        let (schema, emp, _) = setup();
        let keys = KeySet::builder(&schema).key("Employee", 1).unwrap().build();
        let facts = vec![
            emp_fact(emp, 1, "Bob", "HR"),
            emp_fact(emp, 1, "Bob", "IT"),
            emp_fact(emp, 2, "Alice", "IT"),
        ];
        let conflicts = keys.conflicts(&facts);
        assert_eq!(conflicts.len(), 1);
        assert_eq!(conflicts[0].0.arg(0), &Value::int(1));
        assert_eq!(conflicts[0].1.arg(0), &Value::int(1));
    }

    #[test]
    fn display_renders_prefix_keys() {
        let (schema, _, _) = setup();
        let keys = KeySet::builder(&schema)
            .key("Employee", 1)
            .unwrap()
            .key("Dept", 2)
            .unwrap()
            .build();
        let text = keys.display(&schema).to_string();
        assert!(text.contains("key(Employee) = {1}"));
        assert!(text.contains("key(Dept) = {1, 2}"));
    }
}
