//! Error type shared by the database substrate.

use std::fmt;

/// Errors produced while building schemas, key sets, or databases.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// A relation with this name was already declared.
    DuplicateRelation(String),
    /// The named relation is not part of the schema.
    UnknownRelation(String),
    /// A fact or key refers to a relation with the wrong number of columns.
    ArityMismatch {
        /// Relation name involved.
        relation: String,
        /// Arity declared in the schema.
        expected: usize,
        /// Arity actually used.
        found: usize,
    },
    /// A relation was given more than one key (the set would not be a set of
    /// *primary* keys).
    DuplicateKey(String),
    /// A key constraint `key(R) = {1, …, m}` was declared with `m` larger
    /// than the arity of `R` or equal to zero.
    InvalidKeyWidth {
        /// Relation name involved.
        relation: String,
        /// Arity of the relation.
        arity: usize,
        /// Requested key width.
        width: usize,
    },
    /// A textual fact or value could not be parsed.
    Parse(String),
    /// A relation declared with arity zero; the paper's facts always have
    /// `n > 0`.
    ZeroArity(String),
    /// A deletion named a fact id that was never assigned or is already
    /// tombstoned.
    MissingFact(usize),
    /// An insertion would exceed the database's fact-id capacity.  Ids are
    /// never reused (deletes tombstone their slot), so the id space is
    /// consumed by *cumulative* inserts; a long-lived session that hits the
    /// cap must compact the database (or restart from its live facts)
    /// before inserting again.
    FactIdsExhausted {
        /// The configured capacity (at most `u32::MAX`).
        capacity: u32,
    },
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::DuplicateRelation(name) => {
                write!(f, "relation `{name}` is already declared")
            }
            DbError::UnknownRelation(name) => write!(f, "unknown relation `{name}`"),
            DbError::ArityMismatch {
                relation,
                expected,
                found,
            } => write!(
                f,
                "relation `{relation}` has arity {expected} but was used with {found} arguments"
            ),
            DbError::DuplicateKey(name) => {
                write!(f, "relation `{name}` already has a primary key")
            }
            DbError::InvalidKeyWidth {
                relation,
                arity,
                width,
            } => write!(
                f,
                "key width {width} is invalid for relation `{relation}` of arity {arity}"
            ),
            DbError::Parse(msg) => write!(f, "parse error: {msg}"),
            DbError::ZeroArity(name) => {
                write!(f, "relation `{name}` must have arity at least 1")
            }
            DbError::MissingFact(id) => {
                write!(
                    f,
                    "fact id {id} is not live (never assigned or already deleted)"
                )
            }
            DbError::FactIdsExhausted { capacity } => {
                write!(
                    f,
                    "fact-id space exhausted after {capacity} cumulative inserts; \
                     compact the database before inserting again"
                )
            }
        }
    }
}

impl std::error::Error for DbError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_the_relation() {
        let cases: Vec<(DbError, &str)> = vec![
            (DbError::DuplicateRelation("R".into()), "R"),
            (DbError::UnknownRelation("S".into()), "S"),
            (
                DbError::ArityMismatch {
                    relation: "T".into(),
                    expected: 2,
                    found: 3,
                },
                "T",
            ),
            (DbError::DuplicateKey("U".into()), "U"),
            (
                DbError::InvalidKeyWidth {
                    relation: "V".into(),
                    arity: 2,
                    width: 5,
                },
                "V",
            ),
            (DbError::Parse("bad token".into()), "bad token"),
            (DbError::ZeroArity("W".into()), "W"),
            (DbError::MissingFact(7), "7"),
            (DbError::FactIdsExhausted { capacity: 12 }, "12"),
        ];
        for (err, needle) in cases {
            assert!(
                err.to_string().contains(needle),
                "{err} should mention {needle}"
            );
        }
    }
}
