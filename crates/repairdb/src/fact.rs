//! Ground facts.

use std::fmt;

use crate::{RelationId, Schema, Value};

/// Facts up to this arity keep their constants inline, with no heap
/// allocation at all.  Three covers every relation in the paper's
/// examples and the serving workloads; wider facts spill to a boxed
/// slice and merely lose the optimisation.
const INLINE_ARITY: usize = 3;

/// Filler for unused inline slots.  Never observable: every accessor
/// goes through [`Args::as_slice`], which stops at the stored length.
const FILLER: Value = Value::Int(0);

/// Argument storage: inline for small arities, boxed beyond.
///
/// The inline form is what makes bulk ingest cheap — constructing a
/// typical fact is a few moves into the struct instead of a `malloc` —
/// and it also removes a pointer chase from every scan that reads fact
/// arguments.  Total memory is no worse than the boxed form for the
/// arities it covers once allocator overhead is counted.
#[derive(Clone)]
enum Args {
    Inline { len: u8, buf: [Value; INLINE_ARITY] },
    Spilled(Box<[Value]>),
}

impl Args {
    fn as_slice(&self) -> &[Value] {
        match self {
            Args::Inline { len, buf } => &buf[..*len as usize],
            Args::Spilled(values) => values,
        }
    }

    fn from_vec(mut values: Vec<Value>) -> Args {
        if values.len() <= INLINE_ARITY {
            let len = values.len() as u8;
            let mut taken = values.drain(..);
            let buf = [
                taken.next().unwrap_or(FILLER),
                taken.next().unwrap_or(FILLER),
                taken.next().unwrap_or(FILLER),
            ];
            Args::Inline { len, buf }
        } else {
            Args::Spilled(values.into_boxed_slice())
        }
    }
}

/// A fact `R(c₁, …, cₙ)`: a relation symbol applied to constants.
///
/// Facts are value types; equality and hashing are structural, which is what
/// the set semantics of databases requires.
#[derive(Clone)]
pub struct Fact {
    relation: RelationId,
    args: Args,
}

impl Fact {
    /// Creates a fact.  The arity is *not* validated here; use
    /// [`crate::Database::insert`] for validated insertion.
    pub fn new(relation: RelationId, args: impl Into<Vec<Value>>) -> Self {
        Fact {
            relation,
            args: Args::from_vec(args.into()),
        }
    }

    /// Creates a fact of known arity from a fallible per-position value
    /// source, without an intermediate allocation for small arities —
    /// the bulk-frame decoder's constructor.  The first error aborts
    /// construction and is returned as-is.
    pub fn try_build<E>(
        relation: RelationId,
        arity: usize,
        mut value: impl FnMut(usize) -> Result<Value, E>,
    ) -> Result<Fact, E> {
        let args = if arity <= INLINE_ARITY {
            let mut len = 0u8;
            let mut buf = [FILLER, FILLER, FILLER];
            while (len as usize) < arity {
                buf[len as usize] = value(len as usize)?;
                len += 1;
            }
            Args::Inline { len, buf }
        } else {
            let mut values = Vec::with_capacity(arity);
            for i in 0..arity {
                values.push(value(i)?);
            }
            Args::Spilled(values.into_boxed_slice())
        };
        Ok(Fact { relation, args })
    }

    /// The relation symbol of the fact.
    pub fn relation(&self) -> RelationId {
        self.relation
    }

    /// The constants of the fact, in positional order.
    pub fn args(&self) -> &[Value] {
        self.args.as_slice()
    }

    /// The arity of the fact.
    pub fn arity(&self) -> usize {
        self.args().len()
    }

    /// The constant in position `i` (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn arg(&self, i: usize) -> &Value {
        &self.args()[i]
    }

    /// Renders the fact using the relation names of `schema`.
    pub fn display<'a>(&'a self, schema: &'a Schema) -> FactDisplay<'a> {
        FactDisplay { fact: self, schema }
    }
}

// Structural equality/ordering over the *live* arguments only — the
// manual impls keep inline filler slots invisible and match what the
// derives did when `args` was a plain boxed slice.
impl PartialEq for Fact {
    fn eq(&self, other: &Fact) -> bool {
        self.relation == other.relation && self.args() == other.args()
    }
}

impl Eq for Fact {}

impl std::hash::Hash for Fact {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.relation.hash(state);
        self.args().hash(state);
    }
}

impl PartialOrd for Fact {
    fn partial_cmp(&self, other: &Fact) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Fact {
    fn cmp(&self, other: &Fact) -> std::cmp::Ordering {
        self.relation
            .cmp(&other.relation)
            .then_with(|| self.args().cmp(other.args()))
    }
}

impl fmt::Debug for Fact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}(", self.relation.index())?;
        for (i, a) in self.args().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")
    }
}

/// Helper returned by [`Fact::display`] that prints a fact with its relation
/// name resolved against a schema.
pub struct FactDisplay<'a> {
    fact: &'a Fact,
    schema: &'a Schema,
}

impl fmt::Display for FactDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.schema.name(self.fact.relation()))?;
        for (i, a) in self.fact.args().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema_with_emp() -> (Schema, RelationId) {
        let mut schema = Schema::new();
        let emp = schema.add_relation("Employee", 3).unwrap();
        (schema, emp)
    }

    #[test]
    fn accessors() {
        let (_, emp) = schema_with_emp();
        let f = Fact::new(
            emp,
            vec![Value::int(1), Value::text("Bob"), Value::text("HR")],
        );
        assert_eq!(f.relation(), emp);
        assert_eq!(f.arity(), 3);
        assert_eq!(f.arg(0), &Value::int(1));
        assert_eq!(f.args()[1], Value::text("Bob"));
    }

    #[test]
    fn equality_is_structural() {
        let (_, emp) = schema_with_emp();
        let a = Fact::new(
            emp,
            vec![Value::int(1), Value::text("Bob"), Value::text("HR")],
        );
        let b = Fact::new(
            emp,
            vec![Value::int(1), Value::text("Bob"), Value::text("HR")],
        );
        let c = Fact::new(
            emp,
            vec![Value::int(1), Value::text("Bob"), Value::text("IT")],
        );
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn display_uses_schema_names() {
        let (schema, emp) = schema_with_emp();
        let f = Fact::new(
            emp,
            vec![Value::int(1), Value::text("Bob"), Value::text("HR")],
        );
        assert_eq!(f.display(&schema).to_string(), "Employee(1, 'Bob', 'HR')");
        assert_eq!(format!("{f:?}"), "r0(1, 'Bob', 'HR')");
    }
}
