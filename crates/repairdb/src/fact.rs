//! Ground facts.

use std::fmt;

use crate::{RelationId, Schema, Value};

/// A fact `R(c₁, …, cₙ)`: a relation symbol applied to constants.
///
/// Facts are value types; equality and hashing are structural, which is what
/// the set semantics of databases requires.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fact {
    relation: RelationId,
    args: Box<[Value]>,
}

impl Fact {
    /// Creates a fact.  The arity is *not* validated here; use
    /// [`crate::Database::insert`] for validated insertion.
    pub fn new(relation: RelationId, args: impl Into<Vec<Value>>) -> Self {
        Fact {
            relation,
            args: args.into().into_boxed_slice(),
        }
    }

    /// The relation symbol of the fact.
    pub fn relation(&self) -> RelationId {
        self.relation
    }

    /// The constants of the fact, in positional order.
    pub fn args(&self) -> &[Value] {
        &self.args
    }

    /// The arity of the fact.
    pub fn arity(&self) -> usize {
        self.args.len()
    }

    /// The constant in position `i` (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn arg(&self, i: usize) -> &Value {
        &self.args[i]
    }

    /// Renders the fact using the relation names of `schema`.
    pub fn display<'a>(&'a self, schema: &'a Schema) -> FactDisplay<'a> {
        FactDisplay { fact: self, schema }
    }
}

impl fmt::Debug for Fact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}(", self.relation.index())?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")
    }
}

/// Helper returned by [`Fact::display`] that prints a fact with its relation
/// name resolved against a schema.
pub struct FactDisplay<'a> {
    fact: &'a Fact,
    schema: &'a Schema,
}

impl fmt::Display for FactDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.schema.name(self.fact.relation()))?;
        for (i, a) in self.fact.args().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema_with_emp() -> (Schema, RelationId) {
        let mut schema = Schema::new();
        let emp = schema.add_relation("Employee", 3).unwrap();
        (schema, emp)
    }

    #[test]
    fn accessors() {
        let (_, emp) = schema_with_emp();
        let f = Fact::new(
            emp,
            vec![Value::int(1), Value::text("Bob"), Value::text("HR")],
        );
        assert_eq!(f.relation(), emp);
        assert_eq!(f.arity(), 3);
        assert_eq!(f.arg(0), &Value::int(1));
        assert_eq!(f.args()[1], Value::text("Bob"));
    }

    #[test]
    fn equality_is_structural() {
        let (_, emp) = schema_with_emp();
        let a = Fact::new(
            emp,
            vec![Value::int(1), Value::text("Bob"), Value::text("HR")],
        );
        let b = Fact::new(
            emp,
            vec![Value::int(1), Value::text("Bob"), Value::text("HR")],
        );
        let c = Fact::new(
            emp,
            vec![Value::int(1), Value::text("Bob"), Value::text("IT")],
        );
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn display_uses_schema_names() {
        let (schema, emp) = schema_with_emp();
        let f = Fact::new(
            emp,
            vec![Value::int(1), Value::text("Bob"), Value::text("HR")],
        );
        assert_eq!(f.display(&schema).to_string(), "Employee(1, 'Bob', 'HR')");
        assert_eq!(format!("{f:?}"), "r0(1, 'Bob', 'HR')");
    }
}
