//! Repairs of an inconsistent database.
//!
//! A repair of `D` w.r.t. a set of primary keys `Σ` is a maximal consistent
//! subset of `D`; equivalently (Section 2.1), a set containing exactly one
//! fact from each block.  This module represents repairs as "one fact per
//! block", provides exhaustive enumeration (used by the brute-force exact
//! counter and by small-instance ground truth in tests), conversions to
//! materialised databases, and the polynomial-time total repair count
//! `|rep(D, Σ)| = ∏ᵢ |Bᵢ|`.

use cdr_num::BigNat;

use crate::{Block, BlockPartition, Database, FactId, KeySet};

/// A repair: one fact chosen from each live block, stored in `≺_{D,Σ}`
/// order (the order of [`BlockPartition::iter`]).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Repair {
    facts: Vec<FactId>,
}

impl Repair {
    /// Builds a repair from the per-block choices `choice[i] ∈ {0, …, |Bᵢ|-1}`,
    /// indexed by `≺_{D,Σ}` position.
    ///
    /// # Panics
    ///
    /// Panics if `choices` has the wrong length or an index is out of range.
    pub fn from_choices(blocks: &BlockPartition, choices: &[usize]) -> Repair {
        assert_eq!(
            choices.len(),
            blocks.len(),
            "one choice per block is required"
        );
        let facts = blocks
            .iter()
            .zip(choices)
            .map(|((_, block), &c)| block.facts()[c])
            .collect();
        Repair { facts }
    }

    /// The chosen facts in `≺_{D,Σ}` block order.
    pub fn facts(&self) -> &[FactId] {
        &self.facts
    }

    /// The fact chosen for the block at a given `≺_{D,Σ}` position (see
    /// [`BlockPartition::position_of_block`] to map a
    /// [`BlockId`](crate::BlockId) to its
    /// position).
    pub fn fact_at(&self, position: usize) -> FactId {
        self.facts[position]
    }

    /// Returns `true` iff the repair contains the given fact.
    pub fn contains(&self, fact: FactId) -> bool {
        self.facts.contains(&fact)
    }

    /// Returns `true` iff the repair contains every fact in `facts`.
    pub fn contains_all(&self, facts: &[FactId]) -> bool {
        facts.iter().all(|f| self.contains(*f))
    }

    /// Number of facts (equals the number of blocks).
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// Returns `true` iff the repair is empty (the database was empty).
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }

    /// Materialises the repair as a standalone database.
    pub fn to_database(&self, db: &Database) -> Database {
        db.subset(self.facts.iter().copied())
    }

    /// Checks that a set of fact ids is a repair of `db` w.r.t. `keys`:
    /// it is consistent and maximal (contains exactly one fact per block).
    pub fn is_repair(db: &Database, keys: &KeySet, facts: &[FactId]) -> bool {
        let blocks = BlockPartition::new(db, keys);
        if facts.len() != blocks.len() {
            return false;
        }
        let mut seen = vec![false; blocks.len()];
        for &f in facts {
            match blocks.block_of(f) {
                None => return false,
                Some(b) => {
                    if seen[b.index()] {
                        return false;
                    }
                    seen[b.index()] = true;
                }
            }
        }
        seen.into_iter().all(|s| s)
    }
}

/// Exhaustive iterator over all repairs, in lexicographic order of the
/// per-block choices (block order is `≺_{D,Σ}`).
///
/// The number of repairs is `∏ |Bᵢ|`, i.e. exponential in general; callers
/// should consult [`count_repairs`] before iterating.
pub struct RepairIter<'a> {
    blocks: &'a BlockPartition,
    /// Current choice per block; `None` once exhausted.
    state: Option<Vec<usize>>,
}

impl<'a> RepairIter<'a> {
    /// Creates an iterator over all repairs induced by a block partition.
    pub fn new(blocks: &'a BlockPartition) -> Self {
        RepairIter {
            blocks,
            state: Some(vec![0; blocks.len()]),
        }
    }

    /// The total number of repairs this iterator would yield.
    pub fn total(&self) -> BigNat {
        count_repairs(self.blocks)
    }
}

impl Iterator for RepairIter<'_> {
    type Item = Repair;

    fn next(&mut self) -> Option<Repair> {
        let state = self.state.as_mut()?;
        let repair = Repair::from_choices(self.blocks, state);
        // Advance the mixed-radix counter.
        let mut i = state.len();
        loop {
            if i == 0 {
                self.state = None;
                break;
            }
            i -= 1;
            state[i] += 1;
            if state[i] < self.blocks.block_at(i).1.len() {
                break;
            }
            state[i] = 0;
        }
        // An empty database has exactly one (empty) repair.
        if self.blocks.is_empty() {
            self.state = None;
        }
        Some(repair)
    }
}

/// The total number of repairs `|rep(D, Σ)| = ∏ᵢ |Bᵢ|`.
///
/// This is the polynomial-time "denominator" of the paper's relative
/// frequency (Section 1.1).
pub fn count_repairs(blocks: &BlockPartition) -> BigNat {
    let mut total = BigNat::one();
    for block in blocks.blocks() {
        total.mul_assign_u64(block.len() as u64);
    }
    total
}

/// Convenience: the sizes of the blocks a repair draws from, as
/// `(block, chosen fact)` pairs — useful for debugging and display.
pub fn describe_repair<'a>(
    blocks: &'a BlockPartition,
    repair: &Repair,
) -> Vec<(&'a Block, FactId)> {
    blocks
        .iter()
        .zip(repair.facts())
        .map(|((_, block), &fact)| (block, fact))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BlockId, Database, KeySet, Schema};

    fn employee_db() -> (Database, KeySet) {
        let mut schema = Schema::new();
        schema.add_relation("Employee", 3).unwrap();
        let keys = KeySet::builder(&schema).key("Employee", 1).unwrap().build();
        let mut db = Database::new(schema);
        db.insert_parsed("Employee(1, 'Bob', 'HR')").unwrap();
        db.insert_parsed("Employee(1, 'Bob', 'IT')").unwrap();
        db.insert_parsed("Employee(2, 'Alice', 'IT')").unwrap();
        db.insert_parsed("Employee(2, 'Tim', 'IT')").unwrap();
        (db, keys)
    }

    #[test]
    fn example_1_1_has_four_repairs() {
        let (db, keys) = employee_db();
        let blocks = BlockPartition::new(&db, &keys);
        assert_eq!(count_repairs(&blocks).to_u64(), Some(4));
        let repairs: Vec<Repair> = RepairIter::new(&blocks).collect();
        assert_eq!(repairs.len(), 4);
        // All repairs are distinct and valid.
        for r in &repairs {
            assert!(Repair::is_repair(&db, &keys, r.facts()));
            let materialised = r.to_database(&db);
            assert!(materialised.is_consistent(&keys));
            assert_eq!(materialised.len(), 2);
        }
        for i in 0..repairs.len() {
            for j in (i + 1)..repairs.len() {
                assert_ne!(repairs[i], repairs[j]);
            }
        }
    }

    #[test]
    fn iterator_total_matches_count() {
        let (db, keys) = employee_db();
        let blocks = BlockPartition::new(&db, &keys);
        let iter = RepairIter::new(&blocks);
        assert_eq!(iter.total().to_u64(), Some(4));
        assert_eq!(iter.count(), 4);
    }

    #[test]
    fn empty_database_has_exactly_one_empty_repair() {
        let schema = Schema::new();
        let keys = KeySet::empty(&schema);
        let db = Database::new(schema);
        let blocks = BlockPartition::new(&db, &keys);
        assert_eq!(count_repairs(&blocks).to_u64(), Some(1));
        let repairs: Vec<Repair> = RepairIter::new(&blocks).collect();
        assert_eq!(repairs.len(), 1);
        assert!(repairs[0].is_empty());
        assert!(Repair::is_repair(&db, &keys, repairs[0].facts()));
    }

    #[test]
    fn consistent_database_has_one_repair_equal_to_itself() {
        let mut schema = Schema::new();
        schema.add_relation("R", 2).unwrap();
        let keys = KeySet::builder(&schema).key("R", 1).unwrap().build();
        let mut db = Database::new(schema);
        db.insert_parsed("R(1, 'a')").unwrap();
        db.insert_parsed("R(2, 'b')").unwrap();
        let blocks = BlockPartition::new(&db, &keys);
        assert_eq!(count_repairs(&blocks).to_u64(), Some(1));
        let repairs: Vec<Repair> = RepairIter::new(&blocks).collect();
        assert_eq!(repairs.len(), 1);
        assert_eq!(repairs[0].to_database(&db), db);
    }

    #[test]
    fn repair_count_is_product_of_block_sizes() {
        let mut schema = Schema::new();
        schema.add_relation("R", 2).unwrap();
        let keys = KeySet::builder(&schema).key("R", 1).unwrap().build();
        let mut db = Database::new(schema);
        // Block sizes 3, 2, 1 -> 6 repairs.
        for (k, v) in [(1, "a"), (1, "b"), (1, "c"), (2, "a"), (2, "b"), (3, "a")] {
            db.insert_values("R", vec![crate::Value::int(k), crate::Value::text(v)])
                .unwrap();
        }
        let blocks = BlockPartition::new(&db, &keys);
        assert_eq!(count_repairs(&blocks).to_u64(), Some(6));
        assert_eq!(RepairIter::new(&blocks).count(), 6);
    }

    #[test]
    fn is_repair_rejects_non_repairs() {
        let (db, keys) = employee_db();
        let ids: Vec<FactId> = db.iter().map(|(id, _)| id).collect();
        // Two facts from the same block.
        assert!(!Repair::is_repair(&db, &keys, &[ids[0], ids[1]]));
        // Too few facts (not maximal).
        assert!(!Repair::is_repair(&db, &keys, &[ids[0]]));
        // Too many facts.
        assert!(!Repair::is_repair(&db, &keys, &[ids[0], ids[1], ids[2]]));
        // A proper repair.
        assert!(Repair::is_repair(&db, &keys, &[ids[0], ids[2]]));
        // A fact id that does not exist.
        assert!(!Repair::is_repair(&db, &keys, &[ids[0], FactId(99)]));
    }

    #[test]
    fn from_choices_and_accessors() {
        let (db, keys) = employee_db();
        let blocks = BlockPartition::new(&db, &keys);
        let repair = Repair::from_choices(&blocks, &[1, 0]);
        assert_eq!(repair.len(), 2);
        assert!(!repair.is_empty());
        assert_eq!(repair.fact_at(0), blocks.block(BlockId(0)).facts()[1]);
        assert_eq!(blocks.position_of_block(BlockId(0)), Some(0));
        assert!(repair.contains(blocks.block(BlockId(1)).facts()[0]));
        assert!(repair.contains_all(&[
            blocks.block(BlockId(0)).facts()[1],
            blocks.block(BlockId(1)).facts()[0]
        ]));
        assert!(!repair.contains_all(&[blocks.block(BlockId(0)).facts()[0]]));
        let description = describe_repair(&blocks, &repair);
        assert_eq!(description.len(), 2);
    }

    #[test]
    #[should_panic(expected = "one choice per block")]
    fn from_choices_validates_length() {
        let (db, keys) = employee_db();
        let blocks = BlockPartition::new(&db, &keys);
        let _ = Repair::from_choices(&blocks, &[0]);
    }

    #[test]
    fn enumeration_is_lexicographic_and_exhaustive() {
        let (db, keys) = employee_db();
        let blocks = BlockPartition::new(&db, &keys);
        let repairs: Vec<Repair> = RepairIter::new(&blocks).collect();
        // First repair picks choice 0 everywhere; last picks the maximum.
        assert_eq!(repairs[0], Repair::from_choices(&blocks, &[0, 0]));
        assert_eq!(repairs[1], Repair::from_choices(&blocks, &[0, 1]));
        assert_eq!(repairs[2], Repair::from_choices(&blocks, &[1, 0]));
        assert_eq!(repairs[3], Repair::from_choices(&blocks, &[1, 1]));
    }
}
