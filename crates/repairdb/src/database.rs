//! Databases: finite sets of facts over a schema.

use std::collections::{BTreeSet, HashMap};
use std::fmt;

use crate::{parse_value, DbError, Fact, KeySet, RelationId, Schema, Value};

/// Identifier of a fact within a [`Database`].
///
/// Fact ids are dense indices assigned in insertion order.  They are stable:
/// deleting a fact tombstones its slot and the id is never reused, so ids
/// handed out before a mutation remain valid names for the facts that
/// survive it.  Re-inserting previously deleted content allocates a fresh
/// id.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct FactId(pub(crate) u32);

impl FactId {
    /// Builds a fact id from its dense index.
    pub fn new(index: usize) -> FactId {
        FactId(index as u32)
    }

    /// The dense index of this fact.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An edit to a [`Database`]: the unit of change the mutable engine
/// sessions speak.
///
/// Mutations are applied through [`Database::apply`], which reports what
/// actually happened as an [`AppliedMutation`] so downstream structures
/// (the block partition, the engine's plan cache) can update incrementally.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Mutation {
    /// Add a fact (a no-op if the fact is already present).
    Insert(Fact),
    /// Remove the fact with the given id (an error if it is not live).
    Delete(FactId),
}

/// What a [`Mutation`] actually did to a [`Database`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AppliedMutation {
    /// The fact was new and got a fresh id.
    Inserted {
        /// The id assigned to the fact.
        id: FactId,
        /// The inserted fact.
        fact: Fact,
    },
    /// The fact was already present: the database did not change.
    AlreadyPresent {
        /// The id of the pre-existing identical fact.
        id: FactId,
    },
    /// The fact was tombstoned; its id will never be reused.
    Deleted {
        /// The id that was removed.
        id: FactId,
        /// The removed fact.
        fact: Fact,
    },
}

impl AppliedMutation {
    /// The id of the fact the mutation touched (or found).
    pub fn fact_id(&self) -> FactId {
        match self {
            AppliedMutation::Inserted { id, .. }
            | AppliedMutation::AlreadyPresent { id }
            | AppliedMutation::Deleted { id, .. } => *id,
        }
    }

    /// Returns `true` iff the database changed (i.e. not a duplicate
    /// insertion).
    pub fn changed(&self) -> bool {
        !matches!(self, AppliedMutation::AlreadyPresent { .. })
    }
}

/// What [`Database::compact`] did: the id-translation table plus
/// reclamation stats.
///
/// Compaction rebuilds fact storage dropping every tombstone and remaps
/// the surviving facts onto the dense id prefix `0..live`, in their
/// original insertion order.  The translation is therefore *monotone*:
/// if `a < b` are both live old ids, their new ids satisfy the same
/// inequality — which is what lets downstream structures (the block
/// partition, certificate boxes) remap fact-id sequences without
/// re-sorting them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompactionReport {
    /// `translation[old.index()]` is the new id of old fact `old`, or
    /// `None` if `old` was a tombstone dropped by the compaction.
    translation: Vec<Option<FactId>>,
    /// Fact ids assigned before compacting (live facts plus tombstones).
    pub fact_ids_before: u32,
    /// Live facts surviving the compaction (= fact ids assigned after).
    pub live_facts: u32,
}

impl CompactionReport {
    /// Translates a pre-compaction fact id: `Some(new)` for a fact that
    /// survived, `None` for dropped tombstones and never-assigned ids.
    pub fn translate(&self, old: FactId) -> Option<FactId> {
        self.translation.get(old.index()).copied().flatten()
    }

    /// Tombstones dropped — equivalently, the fact ids reclaimed: the id
    /// headroom the compaction recovered under a fixed
    /// [`Database::fact_id_capacity`].
    pub fn ids_reclaimed(&self) -> u32 {
        self.fact_ids_before - self.live_facts
    }

    /// Iterates the `(old, new)` pairs of surviving facts, in id order.
    pub fn iter(&self) -> impl Iterator<Item = (FactId, FactId)> + '_ {
        self.translation
            .iter()
            .enumerate()
            .filter_map(|(old, new)| new.map(|new| (FactId(old as u32), new)))
    }
}

/// A database: a finite set of facts over a schema.
///
/// Inserting the same fact twice is a no-op (set semantics), and facts can
/// be removed again with [`Database::remove`] (or the uniform
/// [`Database::apply`]): deletion tombstones the fact's slot so every other
/// fact keeps its id.  The database maintains a per-relation index so query
/// evaluation and block construction avoid full scans.
///
/// ```
/// use cdr_repairdb::{Database, Schema};
///
/// let mut schema = Schema::new();
/// schema.add_relation("Employee", 3).unwrap();
/// let mut db = Database::new(schema);
/// db.insert_parsed("Employee(1, 'Bob', 'HR')").unwrap();
/// db.insert_parsed("Employee(1, 'Bob', 'IT')").unwrap();
/// assert_eq!(db.len(), 2);
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Database {
    schema: Schema,
    facts: Vec<Fact>,
    /// `live[i]` is `false` iff fact `i` has been tombstoned by a delete.
    live: Vec<bool>,
    live_count: usize,
    dedup: HashMap<Fact, FactId>,
    by_relation: Vec<Vec<FactId>>,
    /// How many ids may ever be assigned.  Ids are never reused, so this
    /// caps *cumulative* inserts, not live facts; at most `u32::MAX`.
    fact_id_capacity: u32,
}

impl Database {
    /// Creates an empty database over the given schema.
    pub fn new(schema: Schema) -> Self {
        let by_relation = vec![Vec::new(); schema.len()];
        Database {
            schema,
            facts: Vec::new(),
            live: Vec::new(),
            live_count: 0,
            dedup: HashMap::new(),
            by_relation,
            fact_id_capacity: u32::MAX,
        }
    }

    /// Caps the number of fact ids this database may ever assign (clamped
    /// to at most `u32::MAX`, the width of a [`FactId`]).
    ///
    /// Ids are never reused, so the cap bounds *cumulative* inserts over the
    /// database's lifetime — a memory guardrail for long-lived serving
    /// sessions.  Once the cap is reached, [`Database::insert`] and
    /// [`Database::apply`] fail with [`DbError::FactIdsExhausted`] instead
    /// of panicking, so a server can surface the condition as an error
    /// reply and keep running.
    pub fn with_fact_id_capacity(mut self, capacity: u32) -> Self {
        self.fact_id_capacity = capacity;
        self
    }

    /// The fact-id capacity: how many ids may ever be assigned.
    pub fn fact_id_capacity(&self) -> u32 {
        self.fact_id_capacity
    }

    /// An empty database over the same schema and fact-id capacity: the
    /// seed for a keyed sub-database (a shard's slice) of this one.
    pub fn empty_like(&self) -> Database {
        Database::new(self.schema.clone()).with_fact_id_capacity(self.fact_id_capacity)
    }

    /// How many fact ids have been assigned so far (live facts plus
    /// tombstones): the portion of the id space already consumed.
    pub fn fact_ids_assigned(&self) -> u32 {
        self.facts.len() as u32
    }

    /// Number of tombstoned fact slots: ids consumed by facts that have
    /// since been deleted.  Tombstones accumulate until
    /// [`Database::compact`] drops them.
    pub fn tombstone_count(&self) -> u32 {
        (self.facts.len() - self.live_count) as u32
    }

    /// Rebuilds fact storage dropping every tombstone, remapping the
    /// surviving facts onto the dense id prefix `0..live` (insertion order
    /// preserved), and returns the id-translation table plus reclamation
    /// stats.
    ///
    /// Compaction resets the id headroom: with the capacity unchanged, the
    /// database may again assign `capacity - live` fresh ids before
    /// [`DbError::FactIdsExhausted`], so delete-bearing sessions can run
    /// indefinitely by compacting periodically.  Every fact id handed out
    /// before the compaction is invalidated — callers holding ids must
    /// re-resolve them through [`CompactionReport::translate`].
    ///
    /// The per-relation indexes and the dedup index are remapped in place;
    /// a compacted database is [`PartialEq`]-identical to a fresh database
    /// built by inserting the live facts in id order.
    pub fn compact(&mut self) -> CompactionReport {
        let fact_ids_before = self.facts.len() as u32;
        let old_facts = std::mem::take(&mut self.facts);
        let old_live = std::mem::take(&mut self.live);
        let mut translation: Vec<Option<FactId>> = vec![None; old_facts.len()];
        self.facts.reserve_exact(self.live_count);
        for (old, fact) in old_facts.into_iter().enumerate() {
            if old_live[old] {
                translation[old] = Some(FactId(self.facts.len() as u32));
                self.facts.push(fact);
            }
        }
        self.live = vec![true; self.facts.len()];
        debug_assert_eq!(self.facts.len(), self.live_count);
        for id in self.dedup.values_mut() {
            *id = translation[id.index()].expect("the dedup index holds only live facts");
        }
        for index in &mut self.by_relation {
            // The translation is monotone, so remapping in place keeps
            // every per-relation index sorted.
            for id in index.iter_mut() {
                *id = translation[id.index()].expect("relation indexes hold only live facts");
            }
            debug_assert!(index.windows(2).all(|w| w[0] < w[1]));
        }
        CompactionReport {
            translation,
            fact_ids_before,
            live_facts: self.facts.len() as u32,
        }
    }

    /// The schema of the database.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Inserts a fact, validating its relation and arity against the schema.
    ///
    /// Returns the id of the fact; inserting a duplicate returns the id of
    /// the existing fact.
    pub fn insert(&mut self, fact: Fact) -> Result<FactId, DbError> {
        self.validate(&fact)?;
        if let Some(&id) = self.dedup.get(&fact) {
            return Ok(id);
        }
        self.insert_new(fact)
    }

    /// Appends a fact already known to be valid and absent (the caller has
    /// run [`Database::validate`] and checked the dedup index), so the hot
    /// mutation path hashes the fact only once more, for the index insert.
    fn insert_new(&mut self, fact: Fact) -> Result<FactId, DbError> {
        // Ids are never reused (deletes tombstone their slot), so the id
        // space is consumed by cumulative inserts; fail with an error the
        // serving layer can report instead of wrapping into a colliding id.
        if self.facts.len() >= self.fact_id_capacity as usize {
            return Err(DbError::FactIdsExhausted {
                capacity: self.fact_id_capacity,
            });
        }
        let id = FactId(self.facts.len() as u32);
        self.dedup.insert(fact.clone(), id);
        self.by_relation[fact.relation().index()].push(id);
        self.facts.push(fact);
        self.live.push(true);
        self.live_count += 1;
        Ok(id)
    }

    /// Checks a fact against the schema (known relation, right arity)
    /// without inserting it — the validation [`Database::insert`] performs,
    /// exposed so callers can vet a whole batch before applying any of it.
    pub fn validate(&self, fact: &Fact) -> Result<(), DbError> {
        let rel = fact.relation();
        if rel.index() >= self.schema.len() {
            return Err(DbError::UnknownRelation(format!("r{}", rel.index())));
        }
        let expected = self.schema.arity(rel);
        if fact.arity() != expected {
            return Err(DbError::ArityMismatch {
                relation: self.schema.name(rel).to_string(),
                expected,
                found: fact.arity(),
            });
        }
        Ok(())
    }

    /// Removes (tombstones) the fact with the given id, returning it.
    ///
    /// The id is never reused; re-inserting the same content later yields a
    /// fresh id.  Removing an id that was never assigned or is already
    /// tombstoned fails with [`DbError::MissingFact`].
    pub fn remove(&mut self, id: FactId) -> Result<Fact, DbError> {
        if !self.is_live(id) {
            return Err(DbError::MissingFact(id.index()));
        }
        let fact = self.facts[id.index()].clone();
        self.live[id.index()] = false;
        self.live_count -= 1;
        self.dedup.remove(&fact);
        // Ids are handed out in increasing order and deletes preserve the
        // order, so the per-relation index stays sorted: binary search
        // instead of a full scan keeps deletes cheap on large relations.
        let index = &mut self.by_relation[fact.relation().index()];
        let position = index
            .binary_search(&id)
            .expect("a live fact is in its relation index");
        index.remove(position);
        Ok(fact)
    }

    /// Applies one [`Mutation`], reporting what actually happened.
    ///
    /// Inserting an already-present fact is a no-op
    /// ([`AppliedMutation::AlreadyPresent`]); deleting a missing fact is an
    /// error.
    pub fn apply(&mut self, mutation: Mutation) -> Result<AppliedMutation, DbError> {
        match mutation {
            Mutation::Insert(fact) => {
                self.validate(&fact)?;
                if let Some(&id) = self.dedup.get(&fact) {
                    return Ok(AppliedMutation::AlreadyPresent { id });
                }
                let id = self.insert_new(fact.clone())?;
                Ok(AppliedMutation::Inserted { id, fact })
            }
            Mutation::Delete(id) => {
                let fact = self.remove(id)?;
                Ok(AppliedMutation::Deleted { id, fact })
            }
        }
    }

    /// Returns `true` iff the id names a fact that is present (assigned and
    /// not tombstoned).
    pub fn is_live(&self, id: FactId) -> bool {
        self.live.get(id.index()).copied().unwrap_or(false)
    }

    /// Inserts a fact given the relation name and its arguments.
    pub fn insert_values(
        &mut self,
        relation: &str,
        args: impl Into<Vec<Value>>,
    ) -> Result<FactId, DbError> {
        let rel = self.schema.require(relation)?;
        self.insert(Fact::new(rel, args))
    }

    /// Parses and inserts a fact written as `Relation(v1, v2, …)`.
    ///
    /// Values follow the syntax of [`parse_value`].
    pub fn insert_parsed(&mut self, text: &str) -> Result<FactId, DbError> {
        let fact = self.parse_fact(text)?;
        self.insert(fact)
    }

    /// Parses a fact written as `Relation(v1, v2, …)` against this
    /// database's schema, without inserting it.
    pub fn parse_fact(&self, text: &str) -> Result<Fact, DbError> {
        let s = text.trim();
        let open = s
            .find('(')
            .ok_or_else(|| DbError::Parse(format!("missing `(` in fact `{s}`")))?;
        if !s.ends_with(')') {
            return Err(DbError::Parse(format!("missing `)` in fact `{s}`")));
        }
        let name = s[..open].trim();
        let rel = self.schema.require(name)?;
        let inner = &s[open + 1..s.len() - 1];
        let mut args = Vec::new();
        if !inner.trim().is_empty() {
            for part in split_top_level_commas(inner) {
                args.push(parse_value(&part)?);
            }
        }
        let expected = self.schema.arity(rel);
        if args.len() != expected {
            return Err(DbError::ArityMismatch {
                relation: name.to_string(),
                expected,
                found: args.len(),
            });
        }
        Ok(Fact::new(rel, args))
    }

    /// Returns the fact with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` was never assigned by this database or has been
    /// tombstoned by [`Database::remove`].
    pub fn fact(&self, id: FactId) -> &Fact {
        assert!(
            self.is_live(id),
            "fact id {} is not live in this database",
            id.index()
        );
        &self.facts[id.index()]
    }

    /// Returns the id of a fact if it is present.
    pub fn fact_id(&self, fact: &Fact) -> Option<FactId> {
        self.dedup.get(fact).copied()
    }

    /// Returns `true` iff the fact is present.
    pub fn contains(&self, fact: &Fact) -> bool {
        self.dedup.contains_key(fact)
    }

    /// Number of (live) facts.
    pub fn len(&self) -> usize {
        self.live_count
    }

    /// Returns `true` iff the database has no live facts.
    pub fn is_empty(&self) -> bool {
        self.live_count == 0
    }

    /// Iterates over all live facts with their ids, in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (FactId, &Fact)> {
        self.facts
            .iter()
            .enumerate()
            .filter(|&(i, _)| self.live[i])
            .map(|(i, f)| (FactId(i as u32), f))
    }

    /// Iterates over all live facts, in insertion order.
    pub fn facts(&self) -> impl Iterator<Item = &Fact> {
        self.iter().map(|(_, f)| f)
    }

    /// The ids of the facts of a given relation, in insertion order.
    pub fn facts_of(&self, relation: RelationId) -> &[FactId] {
        self.by_relation
            .get(relation.index())
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// The active domain `dom(D)`: all constants occurring in the database,
    /// in sorted order.
    pub fn active_domain(&self) -> BTreeSet<Value> {
        let mut dom = BTreeSet::new();
        for fact in self.facts() {
            for v in fact.args() {
                dom.insert(v.clone());
            }
        }
        dom
    }

    /// Returns `true` iff the database satisfies every key in `keys`
    /// (i.e. `D ⊨ Σ`).
    pub fn is_consistent(&self, keys: &KeySet) -> bool {
        keys.satisfied_by(self.facts())
    }

    /// Builds a new database containing exactly the facts with the given
    /// ids (useful for materialising a repair).
    pub fn subset(&self, ids: impl IntoIterator<Item = FactId>) -> Database {
        let mut out = Database::new(self.schema.clone());
        for id in ids {
            out.insert(self.fact(id).clone())
                .expect("subset facts are valid by construction");
        }
        out
    }
}

impl fmt::Display for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, fact) in self.facts().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{}", fact.display(&self.schema))?;
        }
        Ok(())
    }
}

/// Splits `inner` at commas that are not inside quotes.
fn split_top_level_commas(inner: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut current = String::new();
    let mut quote: Option<char> = None;
    for ch in inner.chars() {
        match quote {
            Some(q) => {
                current.push(ch);
                if ch == q {
                    quote = None;
                }
            }
            None => match ch {
                '\'' | '"' => {
                    quote = Some(ch);
                    current.push(ch);
                }
                ',' => {
                    parts.push(current.trim().to_string());
                    current.clear();
                }
                _ => current.push(ch),
            },
        }
    }
    parts.push(current.trim().to_string());
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn employee_db() -> Database {
        let mut schema = Schema::new();
        schema.add_relation("Employee", 3).unwrap();
        let mut db = Database::new(schema);
        db.insert_parsed("Employee(1, 'Bob', 'HR')").unwrap();
        db.insert_parsed("Employee(1, 'Bob', 'IT')").unwrap();
        db.insert_parsed("Employee(2, 'Alice', 'IT')").unwrap();
        db.insert_parsed("Employee(2, 'Tim', 'IT')").unwrap();
        db
    }

    #[test]
    fn insert_and_query_basics() {
        let db = employee_db();
        assert_eq!(db.len(), 4);
        assert!(!db.is_empty());
        let emp = db.schema().relation_id("Employee").unwrap();
        assert_eq!(db.facts_of(emp).len(), 4);
        let bob_hr = db.parse_fact("Employee(1, 'Bob', 'HR')").unwrap();
        assert!(db.contains(&bob_hr));
        assert_eq!(db.fact(db.fact_id(&bob_hr).unwrap()), &bob_hr);
        assert_eq!(db.iter().count(), 4);
        assert_eq!(db.facts().count(), 4);
    }

    #[test]
    fn duplicate_insertion_is_a_no_op() {
        let mut db = employee_db();
        let before = db.len();
        let id1 = db.insert_parsed("Employee(1, 'Bob', 'HR')").unwrap();
        assert_eq!(db.len(), before);
        let fact = db.parse_fact("Employee(1, 'Bob', 'HR')").unwrap();
        assert_eq!(db.fact_id(&fact), Some(id1));
    }

    #[test]
    fn insert_validates_arity_and_relation() {
        let mut db = employee_db();
        assert!(matches!(
            db.insert_parsed("Employee(1, 'Bob')"),
            Err(DbError::ArityMismatch { .. })
        ));
        assert!(matches!(
            db.insert_parsed("Dept(1, 'HR')"),
            Err(DbError::UnknownRelation(_))
        ));
        assert!(matches!(
            db.insert_values("Employee", vec![Value::int(1)]),
            Err(DbError::ArityMismatch { .. })
        ));
        // A fact built against a foreign schema with an out-of-range relation id.
        let mut other = Schema::new();
        other.add_relation("A", 1).unwrap();
        other.add_relation("B", 1).unwrap();
        let b = other.relation_id("B").unwrap();
        assert!(matches!(
            db.insert(Fact::new(b, vec![Value::int(1)])),
            Err(DbError::UnknownRelation(_))
        ));
    }

    #[test]
    fn parse_fact_handles_quotes_and_spacing() {
        let db = employee_db();
        let f = db
            .parse_fact("  Employee( 3 , 'Eve, the second' , \"R&D\" ) ")
            .unwrap();
        assert_eq!(f.arg(0), &Value::int(3));
        assert_eq!(f.arg(1), &Value::text("Eve, the second"));
        assert_eq!(f.arg(2), &Value::text("R&D"));
    }

    #[test]
    fn parse_fact_rejects_malformed_input() {
        let db = employee_db();
        assert!(db.parse_fact("Employee 1, 2, 3").is_err());
        assert!(db.parse_fact("Employee(1, 2, 3").is_err());
        assert!(db.parse_fact("Unknown(1)").is_err());
        assert!(db.parse_fact("Employee(1, 2, 3, 4)").is_err());
    }

    #[test]
    fn active_domain_collects_all_constants() {
        let db = employee_db();
        let dom = db.active_domain();
        assert!(dom.contains(&Value::int(1)));
        assert!(dom.contains(&Value::int(2)));
        assert!(dom.contains(&Value::text("Bob")));
        assert!(dom.contains(&Value::text("HR")));
        assert!(dom.contains(&Value::text("IT")));
        assert_eq!(dom.len(), 7);
    }

    #[test]
    fn consistency_against_keys() {
        let db = employee_db();
        let keys = KeySet::builder(db.schema())
            .key("Employee", 1)
            .unwrap()
            .build();
        assert!(!db.is_consistent(&keys));
        let no_keys = KeySet::empty(db.schema());
        assert!(db.is_consistent(&no_keys));
    }

    #[test]
    fn subset_materialises_chosen_facts() {
        let db = employee_db();
        let ids: Vec<FactId> = db.iter().map(|(id, _)| id).take(2).collect();
        let sub = db.subset(ids.clone());
        assert_eq!(sub.len(), 2);
        for id in ids {
            assert!(sub.contains(db.fact(id)));
        }
    }

    #[test]
    fn display_lists_facts() {
        let db = employee_db();
        let text = db.to_string();
        assert!(text.contains("Employee(1, 'Bob', 'HR')"));
        assert!(text.contains("Employee(2, 'Tim', 'IT')"));
        assert_eq!(text.lines().count(), 4);
    }

    #[test]
    fn remove_tombstones_without_disturbing_other_ids() {
        let mut db = employee_db();
        let bob_it = db.parse_fact("Employee(1, 'Bob', 'IT')").unwrap();
        let id = db.fact_id(&bob_it).unwrap();
        let removed = db.remove(id).unwrap();
        assert_eq!(removed, bob_it);
        assert_eq!(db.len(), 3);
        assert!(!db.is_live(id));
        assert!(!db.contains(&bob_it));
        assert_eq!(db.fact_id(&bob_it), None);
        // The other facts keep their ids and the relation index shrinks.
        let bob_hr = db.parse_fact("Employee(1, 'Bob', 'HR')").unwrap();
        let hr_id = db.fact_id(&bob_hr).unwrap();
        assert!(db.is_live(hr_id));
        let emp = db.schema().relation_id("Employee").unwrap();
        assert_eq!(db.facts_of(emp).len(), 3);
        assert!(!db.facts_of(emp).contains(&id));
        // Iteration, display and the active domain skip the tombstone.
        assert_eq!(db.iter().count(), 3);
        assert_eq!(db.to_string().lines().count(), 3);
        // Double delete and unknown ids fail.
        assert_eq!(db.remove(id), Err(DbError::MissingFact(id.index())));
        assert!(matches!(
            db.remove(FactId(99)),
            Err(DbError::MissingFact(_))
        ));
    }

    #[test]
    fn reinsertion_after_delete_gets_a_fresh_id() {
        let mut db = employee_db();
        let fact = db.parse_fact("Employee(2, 'Tim', 'IT')").unwrap();
        let old_id = db.fact_id(&fact).unwrap();
        db.remove(old_id).unwrap();
        let new_id = db.insert(fact.clone()).unwrap();
        assert_ne!(old_id, new_id);
        assert!(new_id > old_id, "ids are monotonically increasing");
        assert!(db.is_live(new_id));
        assert!(!db.is_live(old_id));
        assert_eq!(db.len(), 4);
    }

    #[test]
    fn apply_reports_what_happened() {
        let mut db = employee_db();
        let fact = db.parse_fact("Employee(3, 'Eve', 'R&D')").unwrap();
        let applied = db.apply(Mutation::Insert(fact.clone())).unwrap();
        let id = match applied {
            AppliedMutation::Inserted { id, fact: f } => {
                assert_eq!(f, fact);
                id
            }
            other => panic!("expected Inserted, got {other:?}"),
        };
        assert!(applied_changed(&db, id));
        // A duplicate insertion is a visible no-op.
        let again = db.apply(Mutation::Insert(fact.clone())).unwrap();
        assert_eq!(again, AppliedMutation::AlreadyPresent { id });
        assert!(!again.changed());
        assert_eq!(again.fact_id(), id);
        // Deletion round-trips the fact.
        let deleted = db.apply(Mutation::Delete(id)).unwrap();
        assert_eq!(deleted, AppliedMutation::Deleted { id, fact });
        assert!(deleted.changed());
        // Deleting again is an error.
        assert!(matches!(
            db.apply(Mutation::Delete(id)),
            Err(DbError::MissingFact(_))
        ));
    }

    fn applied_changed(db: &Database, id: FactId) -> bool {
        db.is_live(id)
    }

    #[test]
    #[should_panic(expected = "not live")]
    fn fact_panics_on_tombstoned_ids() {
        let mut db = employee_db();
        let id = db.iter().next().unwrap().0;
        db.remove(id).unwrap();
        let _ = db.fact(id);
    }

    #[test]
    fn fact_id_exhaustion_is_an_error_not_a_panic() {
        let mut schema = Schema::new();
        schema.add_relation("Employee", 3).unwrap();
        let mut db = Database::new(schema).with_fact_id_capacity(2);
        assert_eq!(db.fact_id_capacity(), 2);
        db.insert_parsed("Employee(1, 'Bob', 'HR')").unwrap();
        let id = db.insert_parsed("Employee(1, 'Bob', 'IT')").unwrap();
        assert_eq!(db.fact_ids_assigned(), 2);
        // A duplicate insert is still a no-op, not an exhaustion error.
        assert!(db.insert_parsed("Employee(1, 'Bob', 'HR')").is_ok());
        // A fresh insert fails loudly and leaves the database unchanged.
        let err = db.insert_parsed("Employee(2, 'Eve', 'IT')").unwrap_err();
        assert_eq!(err, DbError::FactIdsExhausted { capacity: 2 });
        assert_eq!(db.len(), 2);
        // Deletes do not reclaim id space: the next insert still fails.
        db.remove(id).unwrap();
        let fact = db.parse_fact("Employee(1, 'Bob', 'IT')").unwrap();
        assert!(matches!(
            db.apply(Mutation::Insert(fact)),
            Err(DbError::FactIdsExhausted { .. })
        ));
        assert_eq!(db.fact_ids_assigned(), 2);
    }

    #[test]
    fn compact_drops_tombstones_and_remaps_to_a_dense_prefix() {
        let mut db = employee_db();
        let bob_it = db.parse_fact("Employee(1, 'Bob', 'IT')").unwrap();
        let tim = db.parse_fact("Employee(2, 'Tim', 'IT')").unwrap();
        db.remove(db.fact_id(&bob_it).unwrap()).unwrap();
        db.remove(db.fact_id(&tim).unwrap()).unwrap();
        assert_eq!(db.tombstone_count(), 2);
        let before: Vec<Fact> = db.facts().cloned().collect();
        let old_ids: Vec<FactId> = db.iter().map(|(id, _)| id).collect();

        let report = db.compact();
        assert_eq!(report.fact_ids_before, 4);
        assert_eq!(report.live_facts, 2);
        assert_eq!(report.ids_reclaimed(), 2);
        assert_eq!(db.tombstone_count(), 0);
        assert_eq!(db.fact_ids_assigned(), 2);
        assert_eq!(db.len(), 2);
        // Survivors keep their insertion order on the dense prefix.
        let after: Vec<Fact> = db.facts().cloned().collect();
        assert_eq!(before, after);
        let new_ids: Vec<FactId> = db.iter().map(|(id, _)| id).collect();
        assert_eq!(new_ids, vec![FactId(0), FactId(1)]);
        // The translation table maps exactly the survivors, monotonically.
        for (old, new) in old_ids.iter().zip(&new_ids) {
            assert_eq!(report.translate(*old), Some(*new));
        }
        assert_eq!(report.iter().count(), 2);
        assert_eq!(report.translate(FactId(1)), None, "bob/IT was a tombstone");
        assert_eq!(report.translate(FactId(99)), None, "never assigned");
        // The dedup and per-relation indexes were remapped coherently.
        let emp = db.schema().relation_id("Employee").unwrap();
        assert_eq!(db.facts_of(emp), &new_ids[..]);
        for (id, fact) in db.iter() {
            assert_eq!(db.fact_id(fact), Some(id));
            assert!(db.is_live(id));
        }
        // A compacted database equals a fresh one over the live facts.
        let mut fresh = Database::new(db.schema().clone());
        for fact in &after {
            fresh.insert(fact.clone()).unwrap();
        }
        assert_eq!(db, fresh);
    }

    #[test]
    fn compact_restores_id_headroom_under_a_capacity() {
        let mut schema = Schema::new();
        schema.add_relation("Employee", 3).unwrap();
        let mut db = Database::new(schema).with_fact_id_capacity(3);
        db.insert_parsed("Employee(1, 'Bob', 'HR')").unwrap();
        let id = db.insert_parsed("Employee(1, 'Bob', 'IT')").unwrap();
        db.insert_parsed("Employee(2, 'Eve', 'IT')").unwrap();
        db.remove(id).unwrap();
        // The id space is spent even though only two facts are live.
        assert!(matches!(
            db.insert_parsed("Employee(3, 'Kim', 'IT')"),
            Err(DbError::FactIdsExhausted { .. })
        ));
        let report = db.compact();
        assert_eq!(report.ids_reclaimed(), 1);
        assert_eq!(db.fact_id_capacity(), 3, "the capacity itself is unchanged");
        // The reclaimed headroom admits a fresh insert again.
        let new_id = db.insert_parsed("Employee(3, 'Kim', 'IT')").unwrap();
        assert_eq!(new_id, FactId(2));
        assert_eq!(db.len(), 3);
    }

    #[test]
    fn compact_without_tombstones_is_an_identity() {
        let mut db = employee_db();
        let before = db.clone();
        let report = db.compact();
        assert_eq!(report.ids_reclaimed(), 0);
        assert_eq!(report.fact_ids_before, report.live_facts);
        assert_eq!(db, before);
        for (old, new) in report.iter() {
            assert_eq!(old, new);
        }
    }

    #[test]
    fn empty_schema_database_works() {
        let db = Database::new(Schema::new());
        assert!(db.is_empty());
        assert!(db.active_domain().is_empty());
        assert_eq!(db.to_string(), "");
    }
}
