//! Binary snapshot codec: a compacted [`Database`] plus its [`KeySet`]
//! serialized into a framed, checksummed byte payload.
//!
//! A [`Snapshot`] is the bootstrap/recovery unit of the replicated command
//! log: a primary writes one at every compaction point (where the fact-id
//! space is dense, so facts serialize in id order and decode reassigns the
//! identical ids), a follower bootstraps from one over the wire, and a
//! cold restart loads one and replays only the log suffix behind it.
//!
//! The codec is deliberately boring: little-endian fixed-width integers,
//! length-prefixed UTF-8 strings, a tag byte per value, and a CRC-32
//! (IEEE) over the body so a torn write or corrupt chunk is detected
//! before any of it reaches an engine.  Symbols serialize as their text —
//! interned ids are process-local and never cross a process boundary.

use std::fmt;

use crate::{Database, Fact, KeySet, Schema, Value};

/// Magic prefix of an encoded [`Snapshot`] (codec version 1).
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"CDRSNAP1";

/// Decoding failure: the bytes are not a well-formed snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// The input ended before the structure it promised.
    Truncated,
    /// The input is structurally invalid (bad magic, checksum mismatch,
    /// out-of-range index, malformed UTF-8, …).
    Corrupt(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated => write!(f, "snapshot bytes are truncated"),
            SnapshotError::Corrupt(why) => write!(f, "snapshot bytes are corrupt: {why}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// CRC-32 (IEEE 802.3, reflected) lookup tables for the slice-by-16
/// kernel, built at compile time.  `CRC32_TABLES[0]` is the classic
/// byte-at-a-time table; table `t` maps a byte to its contribution `t`
/// positions further ahead, letting the hot loop fold 16 input bytes per
/// iteration instead of one — the 16 lookups are independent loads, so
/// the loop's critical path is one xor tree per 16 bytes.
const CRC32_TABLES: [[u32; 256]; 16] = {
    let mut tables = [[0u32; 256]; 16];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut t = 1;
    while t < 16 {
        let mut i = 0;
        while i < 256 {
            tables[t][i] = (tables[t - 1][i] >> 8) ^ tables[0][(tables[t - 1][i] & 0xFF) as usize];
            i += 1;
        }
        t += 1;
    }
    tables
};

/// The CRC-32 (IEEE) checksum of `bytes` — the integrity check every
/// snapshot and log frame carries.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    let mut chunks = bytes.chunks_exact(16);
    for chunk in &mut chunks {
        let a = u64::from_le_bytes(chunk[..8].try_into().expect("8 bytes")) ^ crc as u64;
        let b = u64::from_le_bytes(chunk[8..].try_into().expect("8 bytes"));
        crc = CRC32_TABLES[15][(a & 0xFF) as usize]
            ^ CRC32_TABLES[14][((a >> 8) & 0xFF) as usize]
            ^ CRC32_TABLES[13][((a >> 16) & 0xFF) as usize]
            ^ CRC32_TABLES[12][((a >> 24) & 0xFF) as usize]
            ^ CRC32_TABLES[11][((a >> 32) & 0xFF) as usize]
            ^ CRC32_TABLES[10][((a >> 40) & 0xFF) as usize]
            ^ CRC32_TABLES[9][((a >> 48) & 0xFF) as usize]
            ^ CRC32_TABLES[8][(a >> 56) as usize]
            ^ CRC32_TABLES[7][(b & 0xFF) as usize]
            ^ CRC32_TABLES[6][((b >> 8) & 0xFF) as usize]
            ^ CRC32_TABLES[5][((b >> 16) & 0xFF) as usize]
            ^ CRC32_TABLES[4][((b >> 24) & 0xFF) as usize]
            ^ CRC32_TABLES[3][((b >> 32) & 0xFF) as usize]
            ^ CRC32_TABLES[2][((b >> 40) & 0xFF) as usize]
            ^ CRC32_TABLES[1][((b >> 48) & 0xFF) as usize]
            ^ CRC32_TABLES[0][(b >> 56) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ CRC32_TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Appends a `u32` in little-endian order.
#[inline]
pub fn write_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u64` in little-endian order.
#[inline]
pub fn write_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `i64` in little-endian order.
#[inline]
pub fn write_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a length-prefixed UTF-8 string.
#[inline]
pub fn write_str(out: &mut Vec<u8>, s: &str) {
    write_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Appends an LEB128 varint — the compact integer framing the fact and
/// log-record codecs use, since almost every index, id and value they
/// carry fits one byte.
#[inline]
pub fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push(v as u8 | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

/// Maps a signed value onto the varint-friendly zigzag spiral
/// (0, -1, 1, -2, …), so small negative ints stay one byte.
#[inline]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// The inverse of [`zigzag`].
#[inline]
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// A bounds-checked little-endian reader over a byte slice — the decode
/// half of the codec, shared with the command-log record format.
pub struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader positioned at the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        ByteReader { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Whether every byte has been consumed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    #[inline]
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::Truncated);
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    #[inline]
    pub fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    #[inline]
    pub fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a little-endian `u64`.
    #[inline]
    pub fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a little-endian `i64`.
    #[inline]
    pub fn i64(&mut self) -> Result<i64, SnapshotError> {
        Ok(i64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads `n` raw bytes.
    #[inline]
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        self.take(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    #[inline]
    pub fn str(&mut self) -> Result<&'a str, SnapshotError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes)
            .map_err(|_| SnapshotError::Corrupt("string is not UTF-8".to_string()))
    }

    /// Reads an LEB128 varint (the inverse of [`write_varint`]).
    #[inline]
    pub fn varint(&mut self) -> Result<u64, SnapshotError> {
        let mut acc = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.u8()?;
            if shift == 63 && byte > 1 {
                return Err(SnapshotError::Corrupt(
                    "varint overflows 64 bits".to_string(),
                ));
            }
            acc |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                return Ok(acc);
            }
            shift += 7;
            if shift > 63 {
                return Err(SnapshotError::Corrupt(
                    "varint overflows 64 bits".to_string(),
                ));
            }
        }
    }
}

/// Encodes one value: a tag byte, then the payload.
pub fn encode_value(out: &mut Vec<u8>, value: &Value) {
    match value {
        Value::Int(v) => {
            out.push(0);
            write_varint(out, zigzag(*v));
        }
        Value::Text(s) => {
            let s = s.as_str();
            out.push(1);
            write_varint(out, s.len() as u64);
            out.extend_from_slice(s.as_bytes());
        }
    }
}

/// Decodes one value.
pub fn decode_value(reader: &mut ByteReader<'_>) -> Result<Value, SnapshotError> {
    match reader.u8()? {
        0 => Ok(Value::Int(unzigzag(reader.varint()?))),
        1 => {
            let len = reader.varint()? as usize;
            let bytes = reader.bytes(len)?;
            let text = std::str::from_utf8(bytes)
                .map_err(|_| SnapshotError::Corrupt("string is not UTF-8".to_string()))?;
            Ok(Value::text(text))
        }
        tag => Err(SnapshotError::Corrupt(format!("unknown value tag {tag}"))),
    }
}

/// Encodes one fact: the relation index, then its arguments (the arity is
/// recovered from the schema at decode time).  Everything travels as
/// varints — a typical fact is a handful of small ints and short interned
/// strings, and this codec sets the wire size of every replicated record
/// and snapshot image.
pub fn encode_fact(out: &mut Vec<u8>, fact: &Fact) {
    write_varint(out, fact.relation().index() as u64);
    for arg in fact.args() {
        encode_value(out, arg);
    }
}

/// Decodes one fact against a schema.
pub fn decode_fact(reader: &mut ByteReader<'_>, schema: &Schema) -> Result<Fact, SnapshotError> {
    let rel_index = reader.varint()? as usize;
    let (relation, info) = schema.iter().nth(rel_index).ok_or_else(|| {
        SnapshotError::Corrupt(format!("relation index {rel_index} out of range"))
    })?;
    let mut args = Vec::with_capacity(info.arity());
    for _ in 0..info.arity() {
        args.push(decode_value(reader)?);
    }
    Ok(Fact::new(relation, args))
}

fn encode_schema_and_keys(out: &mut Vec<u8>, schema: &Schema, keys: &KeySet) {
    write_u32(out, schema.len() as u32);
    for (relation, info) in schema.iter() {
        write_str(out, info.name());
        write_u32(out, info.arity() as u32);
        match keys.key_width(relation) {
            Some(width) => {
                out.push(1);
                write_u32(out, width as u32);
            }
            None => out.push(0),
        }
    }
}

fn decode_schema_and_keys(reader: &mut ByteReader<'_>) -> Result<(Schema, KeySet), SnapshotError> {
    let relations = reader.u32()?;
    let mut schema = Schema::new();
    let mut widths: Vec<(String, usize)> = Vec::new();
    for _ in 0..relations {
        let name = reader.str()?.to_string();
        let arity = reader.u32()? as usize;
        schema
            .add_relation(&name, arity)
            .map_err(|e| SnapshotError::Corrupt(format!("bad relation `{name}`: {e}")))?;
        if reader.u8()? == 1 {
            widths.push((name, reader.u32()? as usize));
        }
    }
    let mut builder = KeySet::builder(&schema);
    for (name, width) in widths {
        builder = builder
            .key(&name, width)
            .map_err(|e| SnapshotError::Corrupt(format!("bad key on `{name}`: {e}")))?;
    }
    let keys = builder.build();
    // The builder borrows the schema it validates against, so the schema is
    // moved out only after every key is installed.
    Ok((schema, keys))
}

/// A restorable point-in-time image of a replicated engine: the compacted
/// database and its keys, plus the provenance counters (`generation`,
/// per-relation generations) and the log position (`epoch`, `offset`) the
/// image was taken at.
///
/// Encoding requires a *compacted* database (no tombstones): facts are
/// serialized in id order and decode reassigns ids `0..n` by insertion
/// order, so density is what makes the round trip id-exact.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Snapshot {
    /// The replication epoch the image was taken in.
    pub epoch: u64,
    /// The log offset the image captures: the state after the first
    /// `offset` records of the log.
    pub offset: u64,
    /// The engine generation at the image point.
    pub generation: u64,
    /// The per-relation mutation generations at the image point.
    pub rel_generations: Vec<u64>,
    /// The compacted database.
    pub db: Database,
    /// The primary keys in force.
    pub keys: KeySet,
}

impl Snapshot {
    /// Encodes the snapshot as `magic || crc32(body) || body`.
    ///
    /// Fails if the database still holds tombstones — snapshots are taken
    /// at compaction points, where fact ids form the dense prefix `0..n`.
    pub fn encode(&self) -> Result<Vec<u8>, SnapshotError> {
        if self.db.tombstone_count() != 0 {
            return Err(SnapshotError::Corrupt(format!(
                "snapshot requires a compacted database ({} tombstones present)",
                self.db.tombstone_count()
            )));
        }
        let mut body = Vec::new();
        write_u64(&mut body, self.epoch);
        write_u64(&mut body, self.offset);
        write_u64(&mut body, self.generation);
        write_u32(&mut body, self.rel_generations.len() as u32);
        for &g in &self.rel_generations {
            write_u64(&mut body, g);
        }
        encode_schema_and_keys(&mut body, self.db.schema(), &self.keys);
        write_u32(&mut body, self.db.fact_id_capacity());
        write_u32(&mut body, self.db.len() as u32);
        for (_, fact) in self.db.iter() {
            encode_fact(&mut body, fact);
        }
        let mut out = Vec::with_capacity(SNAPSHOT_MAGIC.len() + 4 + body.len());
        out.extend_from_slice(SNAPSHOT_MAGIC);
        write_u32(&mut out, crc32(&body));
        out.extend_from_slice(&body);
        Ok(out)
    }

    /// Decodes an encoded snapshot, verifying the magic and the checksum.
    pub fn decode(bytes: &[u8]) -> Result<Snapshot, SnapshotError> {
        if bytes.len() < SNAPSHOT_MAGIC.len() + 4 {
            return Err(SnapshotError::Truncated);
        }
        if &bytes[..SNAPSHOT_MAGIC.len()] != SNAPSHOT_MAGIC {
            return Err(SnapshotError::Corrupt("bad snapshot magic".to_string()));
        }
        let mut reader = ByteReader::new(&bytes[SNAPSHOT_MAGIC.len()..]);
        let expected_crc = reader.u32()?;
        let body = &bytes[SNAPSHOT_MAGIC.len() + 4..];
        if crc32(body) != expected_crc {
            return Err(SnapshotError::Corrupt("checksum mismatch".to_string()));
        }
        let epoch = reader.u64()?;
        let offset = reader.u64()?;
        let generation = reader.u64()?;
        let rel_count = reader.u32()? as usize;
        let mut rel_generations = Vec::with_capacity(rel_count);
        for _ in 0..rel_count {
            rel_generations.push(reader.u64()?);
        }
        let (schema, keys) = decode_schema_and_keys(&mut reader)?;
        if rel_generations.len() != schema.len() {
            return Err(SnapshotError::Corrupt(format!(
                "{} relation generations for {} relations",
                rel_generations.len(),
                schema.len()
            )));
        }
        let capacity = reader.u32()?;
        let mut db = Database::new(schema).with_fact_id_capacity(capacity);
        let facts = reader.u32()?;
        for _ in 0..facts {
            let fact = decode_fact(&mut reader, db.schema())?;
            db.insert(fact)
                .map_err(|e| SnapshotError::Corrupt(format!("fact rejected: {e}")))?;
        }
        if !reader.is_empty() {
            return Err(SnapshotError::Corrupt(format!(
                "{} trailing bytes after the last fact",
                reader.remaining()
            )));
        }
        Ok(Snapshot {
            epoch,
            offset,
            generation,
            rel_generations,
            db,
            keys,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mutation;

    fn sample() -> (Database, KeySet) {
        let mut schema = Schema::new();
        schema.add_relation("Employee", 3).unwrap();
        schema.add_relation("Log", 1).unwrap();
        let keys = KeySet::builder(&schema).key("Employee", 1).unwrap().build();
        let mut db = Database::new(schema).with_fact_id_capacity(64);
        db.insert_parsed("Employee(1, 'Bob', 'HR')").unwrap();
        db.insert_parsed("Employee(1, 'Bob, Jr.', 'IT')").unwrap();
        db.insert_parsed("Employee(2, 'Alice', 'IT')").unwrap();
        db.insert_parsed("Log('boot')").unwrap();
        (db, keys)
    }

    fn snapshot_of(db: Database, keys: KeySet) -> Snapshot {
        let rels = db.schema().len();
        Snapshot {
            epoch: 3,
            offset: 41,
            generation: 7,
            rel_generations: vec![7; rels],
            db,
            keys,
        }
    }

    #[test]
    fn crc32_matches_the_ieee_reference_vector() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn snapshot_round_trips_bit_for_bit() {
        let (db, keys) = sample();
        let snap = snapshot_of(db, keys);
        let bytes = snap.encode().unwrap();
        let back = Snapshot::decode(&bytes).unwrap();
        assert_eq!(back, snap);
        // Ids decode densely in the original order.
        let ids: Vec<usize> = back.db.iter().map(|(id, _)| id.index()).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
        assert_eq!(back.db.fact_id_capacity(), 64);
        // Encoding is deterministic.
        assert_eq!(back.encode().unwrap(), bytes);
    }

    #[test]
    fn tombstoned_databases_are_refused() {
        let (mut db, keys) = sample();
        db.apply(Mutation::Delete(crate::FactId::new(1))).unwrap();
        let snap = snapshot_of(db, keys);
        assert!(matches!(snap.encode(), Err(SnapshotError::Corrupt(_))));
    }

    #[test]
    fn corruption_and_truncation_are_detected() {
        let (db, keys) = sample();
        let bytes = snapshot_of(db, keys).encode().unwrap();
        // Truncation anywhere fails (Truncated, or Corrupt at the crc).
        for cut in [0, 5, bytes.len() / 2, bytes.len() - 1] {
            assert!(Snapshot::decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        // A flipped body byte trips the checksum.
        let mut flipped = bytes.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x40;
        assert_eq!(
            Snapshot::decode(&flipped),
            Err(SnapshotError::Corrupt("checksum mismatch".to_string()))
        );
        // Bad magic is rejected before anything else.
        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            Snapshot::decode(&bad_magic),
            Err(SnapshotError::Corrupt(_))
        ));
        // Trailing garbage after a valid body is refused (the crc covers
        // only the declared body, so the check is structural).
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(Snapshot::decode(&padded).is_err());
    }

    #[test]
    fn fact_codec_round_trips_through_the_shared_reader() {
        let (db, _) = sample();
        let mut out = Vec::new();
        for (_, fact) in db.iter() {
            encode_fact(&mut out, fact);
        }
        let mut reader = ByteReader::new(&out);
        for (_, fact) in db.iter() {
            assert_eq!(&decode_fact(&mut reader, db.schema()).unwrap(), fact);
        }
        assert!(reader.is_empty());
    }
}
