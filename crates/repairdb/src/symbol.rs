//! Interned string symbols.
//!
//! Every string constant in the system is *interned*: the first time a
//! payload is seen it is assigned a dense `u32` id in the process-wide
//! [`SymbolTable`], and every later occurrence resolves to the same id.
//! A [`Symbol`] carries both the id and a shared handle to the interned
//! text, which buys the hot paths integer-speed operations without giving
//! up the string-typed edges:
//!
//! * **equality and hashing are integer ops** — two symbols are equal iff
//!   their ids are equal, and hashing feeds 4 bytes to the hasher instead
//!   of the whole payload.  `Fact` deduplication, per-relation indexes and
//!   `KeySet` block grouping all ride on this.
//! * **ordering stays textual** — the paper's block sequence `B₁, …, Bₙ`
//!   is fixed by the lexicographic order `≺_{D,Σ}` on key *values*, so
//!   [`Ord`] compares the underlying text (short-circuiting to `Equal` on
//!   id equality).  Interning changes no observable ordering.
//! * **display needs no table lookup** — the symbol's own `Arc<str>`
//!   resolves it, so rendering never touches the table lock.
//!
//! The table is process-global rather than owned by a single `Database` so
//! that [`crate::Value`]s remain free-standing, totally ordered value
//! types: facts parsed against one database, query constants, and values
//! built by tests all compare and hash coherently without threading a
//! table handle through every API.  Databases intern incrementally as a
//! side effect of constructing the values they ingest.
//!
//! Entries are held **weakly**: the table keeps a [`Weak`] handle to each
//! payload's canonical allocation, so the payload's memory lives exactly
//! as long as some [`Symbol`] for it does.  Re-interning a payload whose
//! symbols all died *revives* its entry — same id, fresh allocation — so
//! churn on a payload consumes neither memory nor id space; entries that
//! stay dead are swept whenever the table doubles, after which their ids
//! are retired for good.  A long-running server streaming transient
//! string payloads therefore accumulates neither strings nor ids, and an
//! id names exactly one payload for the lifetime of the process (the
//! Eq-by-id invariant).
//!
//! **Compaction does not touch this table.**  [`crate::Database::compact`]
//! reclaims *fact-id* space by dropping tombstones and remapping fact
//! ids; symbol ids are a separate namespace with its own reclamation
//! story — a payload's entry dies (and its memory is freed) when the last
//! [`Symbol`] for it is dropped, whether that happens through a delete, a
//! compaction discarding tombstoned facts, or ordinary value churn.  The
//! two mechanisms compose without coordination: compacting a database
//! never renames a symbol, and sweeping the symbol table never moves a
//! fact.

use std::collections::HashMap;
use std::fmt;
use std::hash::{BuildHasherDefault, Hash, Hasher};
use std::sync::{Arc, OnceLock, RwLock, Weak};

/// FNV-1a, the table's hasher: interning hashes the full payload on
/// every lookup, and for the short strings symbols are made of FNV beats
/// SipHash by a wide margin.  The table is not a DoS surface worth the
/// SipHash premium — a colliding workload degrades interning to a scan
/// of one bucket, and frame/line size caps bound how much input an
/// attacker can push through it per request.
#[derive(Default)]
struct Fnv1a(u64);

impl Hasher for Fnv1a {
    fn write(&mut self, bytes: &[u8]) {
        let mut hash = if self.0 == 0 {
            0xcbf2_9ce4_8422_2325
        } else {
            self.0
        };
        for &b in bytes {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        self.0 = hash;
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// An interned string: a dense `u32` id plus a shared handle to the text.
///
/// Equality and hashing use only the id (interning guarantees one id per
/// distinct payload); ordering compares the text, so sequences of symbols
/// sort exactly as the underlying strings do.
#[derive(Clone)]
pub struct Symbol {
    id: u32,
    text: Arc<str>,
}

impl Symbol {
    /// Interns `text` in the global [`SymbolTable`] (a no-op returning the
    /// existing symbol if the payload was seen before).
    pub fn intern(text: impl AsRef<str>) -> Symbol {
        SymbolTable::global().intern(text.as_ref())
    }

    /// The dense id of this symbol in the global table.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The interned text.
    pub fn as_str(&self) -> &str {
        &self.text
    }
}

impl PartialEq for Symbol {
    fn eq(&self, other: &Symbol) -> bool {
        self.id == other.id
    }
}

impl Eq for Symbol {}

impl Hash for Symbol {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.id.hash(state);
    }
}

impl PartialOrd for Symbol {
    fn partial_cmp(&self, other: &Symbol) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Symbol {
    fn cmp(&self, other: &Symbol) -> std::cmp::Ordering {
        if self.id == other.id {
            // One id per payload: equal ids means equal text.
            std::cmp::Ordering::Equal
        } else {
            self.text.cmp(&other.text)
        }
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}#{}", &*self.text, self.id)
    }
}

/// The process-wide intern table mapping string payloads to dense ids.
///
/// Entries are weak (see the module docs): the table never keeps a
/// payload alive on its own, so its footprint tracks the *live* symbols,
/// not the history of everything ever interned.
pub struct SymbolTable {
    inner: RwLock<TableInner>,
}

struct TableInner {
    /// Payload → (id, canonical allocation).  The key owns an independent
    /// copy of the text; the [`Weak`] tracks whether any [`Symbol`] for
    /// the payload is still alive.  Re-interning a dead entry's payload
    /// *revives* it — same id, fresh allocation — so transient churn on a
    /// payload consumes no id space; the periodic sweep removes dead
    /// entries wholesale (their ids are then retired for good).
    ids: HashMap<Box<str>, (u32, Weak<str>), BuildHasherDefault<Fnv1a>>,
    /// The next id to mint.  An id is only ever associated with one
    /// payload; fresh ids are needed only for payloads never seen or
    /// swept away, so the u32 space bounds *distinct-ish* payloads, not
    /// intern calls.
    next_id: u32,
    /// Sweep dead entries once the map grows past this.
    sweep_watermark: usize,
}

impl Default for TableInner {
    fn default() -> TableInner {
        TableInner {
            ids: HashMap::default(),
            next_id: 0,
            sweep_watermark: 64,
        }
    }
}

impl SymbolTable {
    /// The global table every [`Symbol`] lives in.
    pub fn global() -> &'static SymbolTable {
        static TABLE: OnceLock<SymbolTable> = OnceLock::new();
        TABLE.get_or_init(|| SymbolTable {
            inner: RwLock::new(TableInner::default()),
        })
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, TableInner> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write(&self) -> std::sync::RwLockWriteGuard<'_, TableInner> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Interns a payload, returning its symbol.  While any symbol for the
    /// payload is alive this is the existing (id, allocation) pair; a dead
    /// entry is revived with the *same* id and a fresh allocation, so
    /// churning one payload alive→dead→alive forever consumes no id
    /// space.  A fresh id is minted only for payloads with no table entry
    /// (never seen, or swept after dying) — an id therefore names one
    /// payload for the lifetime of the process (the Eq-by-id invariant).
    pub fn intern(&self, text: &str) -> Symbol {
        if let Some(&(id, ref weak)) = self.read().ids.get(text) {
            if let Some(arc) = weak.upgrade() {
                return Symbol { id, text: arc };
            }
        }
        let mut inner = self.write();
        // Re-check under the write lock: another thread may have interned
        // the payload between our read and write sections.
        if let Some((id, weak)) = inner.ids.get_mut(text) {
            if let Some(arc) = weak.upgrade() {
                return Symbol { id: *id, text: arc };
            }
            // Revive the dead entry in place: same id, fresh allocation.
            let arc: Arc<str> = Arc::from(text);
            *weak = Arc::downgrade(&arc);
            return Symbol { id: *id, text: arc };
        }
        let id = inner.next_id;
        inner.next_id = inner
            .next_id
            .checked_add(1)
            .expect("symbol table exhausted: more than u32::MAX distinct payloads");
        let arc: Arc<str> = Arc::from(text);
        inner
            .ids
            .insert(Box::from(text), (id, Arc::downgrade(&arc)));
        if inner.ids.len() >= inner.sweep_watermark {
            inner.ids.retain(|_, (_, weak)| weak.strong_count() > 0);
            inner.sweep_watermark = (inner.ids.len() * 2).max(64);
        }
        Symbol { id, text: arc }
    }

    /// Number of payloads with at least one live [`Symbol`] (process-wide).
    pub fn len(&self) -> usize {
        self.read()
            .ids
            .values()
            .filter(|(_, weak)| weak.strong_count() > 0)
            .count()
    }

    /// Returns `true` iff no payload has a live symbol.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_dedups_and_preserves_text() {
        let a = Symbol::intern("hotpath-alpha");
        let b = Symbol::intern("hotpath-alpha");
        let c = Symbol::intern("hotpath-beta");
        assert_eq!(a, b);
        assert_eq!(a.id(), b.id());
        assert_ne!(a, c);
        assert_eq!(a.as_str(), "hotpath-alpha");
        assert_eq!(c.to_string(), "hotpath-beta");
        assert!(format!("{c:?}").contains("hotpath-beta"));
    }

    #[test]
    fn ordering_is_textual_not_by_id() {
        // Intern in reverse lexicographic order: ids ascend, text does not.
        let z = Symbol::intern("hotpath-z");
        let m = Symbol::intern("hotpath-m");
        let a = Symbol::intern("hotpath-a");
        let mut sorted = vec![z.clone(), m.clone(), a.clone()];
        sorted.sort();
        assert_eq!(sorted, vec![a, m, z.clone()]);
        assert_eq!(z.cmp(&z), std::cmp::Ordering::Equal);
    }

    #[test]
    fn live_symbols_are_counted() {
        let s = Symbol::intern("hotpath-count-me");
        let table = SymbolTable::global();
        assert!(!table.is_empty());
        assert_ne!(table.len(), 0);
        // While `s` is alive, re-interning returns the same id.
        assert_eq!(Symbol::intern("hotpath-count-me").id(), s.id());
    }

    /// Dropping every symbol for a payload releases its memory, and a
    /// later re-intern revives the entry with the *same* id — churning a
    /// payload costs neither memory nor id space — while bursts of
    /// distinct transient payloads are swept instead of accumulating.
    #[test]
    fn dead_payloads_are_revived_or_swept() {
        let first = Symbol::intern("hotpath-transient");
        let first_id = first.id();
        drop(first);
        let second = Symbol::intern("hotpath-transient");
        assert_eq!(second.id(), first_id, "a dead entry revives its id");
        assert_eq!(second.as_str(), "hotpath-transient");
        // While alive, the entry is stable.
        assert_eq!(Symbol::intern("hotpath-transient").id(), second.id());
        // Many distinct transient payloads must not grow the live count.
        let live_before = SymbolTable::global().len();
        for i in 0..10_000 {
            let transient = Symbol::intern(format!("hotpath-burst-{i}"));
            drop(transient);
        }
        let live_after = SymbolTable::global().len();
        // Slack for symbols interned concurrently by sibling tests (the
        // table is process-global); the point is that the 10k-payload
        // burst itself left no trace.
        assert!(
            live_after < live_before + 1_000,
            "transient payloads leaked: {live_before} -> {live_after} live entries"
        );
    }

    #[test]
    fn hashing_follows_equality() {
        use std::collections::hash_map::DefaultHasher;
        fn h(s: &Symbol) -> u64 {
            let mut hasher = DefaultHasher::new();
            s.hash(&mut hasher);
            hasher.finish()
        }
        let a = Symbol::intern("hotpath-hash");
        let b = Symbol::intern("hotpath-hash");
        assert_eq!(h(&a), h(&b));
    }
}
