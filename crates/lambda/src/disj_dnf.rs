//! `#DisjPoskDNF`: counting P-assignments that satisfy a positive kDNF.
//!
//! Section 7.1: the input is a set of Boolean variables `X`, a partition
//! `P = {X₁, …, Xₙ}` of `X`, and a positive kDNF `φ = C₁ ∨ ⋯ ∨ C_m` whose
//! clauses are conjunctions of at most `k` variables.  A *P-assignment*
//! sets exactly one variable of each class to true; the problem asks how
//! many P-assignments satisfy `φ`.  Theorem 7.1: `#DisjPoskDNF` is
//! Λ\[k\]-complete, and its unbounded version `#DisjPosDNF` is
//! SpanLL-complete (Theorem 7.5).
//!
//! The structure is exactly a union of boxes: the solution domains are the
//! classes (pick the true variable per class), and each clause is a box
//! pinning the classes of its variables — unless the clause mentions two
//! distinct variables of the same class, in which case it is unsatisfiable
//! under P-assignments and contributes nothing.

use cdr_core::{count_union_generic, CountError, RepairCounter};
use cdr_num::BigNat;
use cdr_query::{parse_query, Query};
use cdr_repairdb::{Database, KeySet, Schema, Value};

use crate::compactor::{CompactOutput, Compactor, PinBox};

/// A positive DNF formula over partitioned variables.
///
/// Variables are identified by index `0 … num_vars-1`; every variable must
/// belong to exactly one partition class.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DisjPosDnf {
    num_vars: usize,
    /// `classes[i]` lists the variables of class `Xᵢ`.
    classes: Vec<Vec<usize>>,
    /// `class_of[v]` is the class index of variable `v`.
    class_of: Vec<usize>,
    /// Clauses: each a set of variable indices (positive literals).
    clauses: Vec<Vec<usize>>,
    /// The clause-width bound `k`, if this is a kDNF.
    width_bound: Option<usize>,
}

impl DisjPosDnf {
    /// Builds a formula.
    ///
    /// `classes` must partition `0 … num_vars-1`; every clause variable
    /// must exist; when `width_bound = Some(k)`, every clause must have at
    /// most `k` variables.
    pub fn new(
        num_vars: usize,
        classes: Vec<Vec<usize>>,
        clauses: Vec<Vec<usize>>,
        width_bound: Option<usize>,
    ) -> Result<Self, String> {
        let mut class_of = vec![usize::MAX; num_vars];
        for (i, class) in classes.iter().enumerate() {
            if class.is_empty() {
                return Err(format!("class {i} is empty"));
            }
            for &v in class {
                if v >= num_vars {
                    return Err(format!("class {i} mentions unknown variable {v}"));
                }
                if class_of[v] != usize::MAX {
                    return Err(format!("variable {v} appears in two classes"));
                }
                class_of[v] = i;
            }
        }
        if let Some(v) = class_of.iter().position(|&c| c == usize::MAX) {
            return Err(format!("variable {v} is not covered by the partition"));
        }
        let mut normalized_clauses = Vec::with_capacity(clauses.len());
        for (ci, clause) in clauses.into_iter().enumerate() {
            let mut c = clause;
            c.sort_unstable();
            c.dedup();
            for &v in &c {
                if v >= num_vars {
                    return Err(format!("clause {ci} mentions unknown variable {v}"));
                }
            }
            if let Some(k) = width_bound {
                if c.len() > k {
                    return Err(format!(
                        "clause {ci} has {} variables but the width bound is {k}",
                        c.len()
                    ));
                }
            }
            normalized_clauses.push(c);
        }
        Ok(DisjPosDnf {
            num_vars,
            classes,
            class_of,
            clauses: normalized_clauses,
            width_bound,
        })
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The partition classes.
    pub fn classes(&self) -> &[Vec<usize>] {
        &self.classes
    }

    /// The clauses.
    pub fn clauses(&self) -> &[Vec<usize>] {
        &self.clauses
    }

    /// The clause-width bound `k`, if any.
    pub fn width_bound(&self) -> Option<usize> {
        self.width_bound
    }

    /// The total number of P-assignments: `∏ |Xᵢ|`.
    pub fn total_assignments(&self) -> BigNat {
        let mut total = BigNat::one();
        for class in &self.classes {
            total.mul_assign_u64(class.len() as u64);
        }
        total
    }

    /// Converts a clause to its box over the classes: `None` if the clause
    /// is unsatisfiable under P-assignments (two variables of one class).
    fn clause_box(&self, clause: &[usize]) -> Option<PinBox> {
        let mut pins: Vec<(usize, usize)> = Vec::with_capacity(clause.len());
        for &v in clause {
            let class = self.class_of[v];
            let position = self.classes[class]
                .iter()
                .position(|&u| u == v)
                .expect("class_of is consistent with classes");
            // Clauses are short: a linear scan beats any map here.
            match pins.iter().find(|&&(c, _)| c == class) {
                Some(&(_, existing)) if existing != position => return None,
                Some(_) => {}
                None => pins.push((class, position)),
            }
        }
        Some(pins.into_iter().collect())
    }

    /// Counts the satisfying P-assignments exactly.
    pub fn count_satisfying(&self, budget: u64) -> Result<BigNat, CountError> {
        let sizes: Vec<usize> = self.classes.iter().map(Vec::len).collect();
        let boxes: Vec<PinBox> = self
            .clauses
            .iter()
            .filter_map(|c| self.clause_box(c))
            .collect();
        count_union_generic(&sizes, &boxes, budget)
    }

    /// Brute-force count over all P-assignments (ground truth for tests).
    pub fn count_satisfying_brute_force(&self) -> BigNat {
        let sizes: Vec<usize> = self.classes.iter().map(Vec::len).collect();
        if sizes.is_empty() {
            // The empty partition has exactly one (empty) P-assignment; it
            // satisfies φ iff some clause is empty (an empty conjunction).
            return if self.clauses.iter().any(Vec::is_empty) {
                BigNat::one()
            } else {
                BigNat::zero()
            };
        }
        let mut choice = vec![0usize; sizes.len()];
        let mut count: u64 = 0;
        loop {
            let truth = |v: usize| -> bool {
                let class = self.class_of[v];
                self.classes[class][choice[class]] == v
            };
            if self
                .clauses
                .iter()
                .any(|clause| clause.iter().all(|&v| truth(v)))
            {
                count += 1;
            }
            let mut i = sizes.len();
            loop {
                if i == 0 {
                    return BigNat::from(count);
                }
                i -= 1;
                choice[i] += 1;
                if choice[i] < sizes[i] {
                    break;
                }
                choice[i] = 0;
            }
        }
    }

    /// The natural reduction to `#CQA`: relation `Chosen(class, var)` with
    /// `key(Chosen) = {1}` holds the candidate "true variable per class";
    /// the query is the disjunction of the clauses, each asking that all
    /// its variables are the chosen ones.
    ///
    /// The reduction is parsimonious: repairs of the constructed database
    /// are exactly the P-assignments, and a repair entails the query iff
    /// the assignment satisfies `φ`.
    pub fn to_cqa_instance(&self) -> Result<(Database, KeySet, Query), CountError> {
        let mut schema = Schema::new();
        schema.add_relation("Chosen", 2)?;
        let keys = KeySet::builder(&schema).key("Chosen", 1)?.build();
        let mut db = Database::new(schema);
        for (i, class) in self.classes.iter().enumerate() {
            for &v in class {
                db.insert_values("Chosen", vec![Value::int(i as i64), Value::int(v as i64)])?;
            }
        }
        let mut disjuncts = Vec::new();
        for clause in &self.clauses {
            if clause.is_empty() {
                disjuncts.push("TRUE".to_string());
                continue;
            }
            let atoms: Vec<String> = clause
                .iter()
                .map(|&v| format!("Chosen({}, {})", self.class_of[v], v))
                .collect();
            disjuncts.push(format!("({})", atoms.join(" AND ")));
        }
        let text = if disjuncts.is_empty() {
            "FALSE".to_string()
        } else {
            disjuncts.join(" OR ")
        };
        let query = parse_query(&text)?;
        Ok((db, keys, query))
    }

    /// Counts the satisfying P-assignments by going through the `#CQA`
    /// reduction (used to validate Theorem 7.1 experimentally).
    pub fn count_via_cqa(&self, budget: u64) -> Result<BigNat, CountError> {
        let (db, keys, query) = self.to_cqa_instance()?;
        RepairCounter::new(&db, &keys)
            .with_budget(budget)
            .count(&query)
            .map(|o| o.count)
    }
}

impl Compactor for DisjPosDnf {
    fn domain_sizes(&self) -> Vec<usize> {
        self.classes.iter().map(Vec::len).collect()
    }

    fn certificate_count(&self) -> usize {
        self.clauses.len()
    }

    fn compact(&self, certificate: usize) -> CompactOutput {
        match self.clauses.get(certificate) {
            None => CompactOutput::Empty,
            Some(clause) => match self.clause_box(clause) {
                None => CompactOutput::Empty,
                Some(pins) => CompactOutput::Boxed(pins),
            },
        }
    }

    fn pin_bound(&self) -> Option<usize> {
        self.width_bound
    }

    fn element_label(&self, domain: usize, element: usize) -> String {
        format!("x{}", self.classes[domain][element])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compactor::unfold_count;
    use crate::reduction::reduce_compactor_to_cqa;

    /// φ = (x0 ∧ x2) ∨ (x1 ∧ x3), partition {x0, x1}, {x2, x3}.
    fn small() -> DisjPosDnf {
        DisjPosDnf::new(
            4,
            vec![vec![0, 1], vec![2, 3]],
            vec![vec![0, 2], vec![1, 3]],
            Some(2),
        )
        .unwrap()
    }

    #[test]
    fn small_formula_counts() {
        let f = small();
        assert_eq!(f.total_assignments().to_u64(), Some(4));
        // Satisfying: (x0,x2) and (x1,x3): 2 assignments.
        assert_eq!(f.count_satisfying(1_000).unwrap().to_u64(), Some(2));
        assert_eq!(f.count_satisfying_brute_force().to_u64(), Some(2));
        assert_eq!(f.num_vars(), 4);
        assert_eq!(f.classes().len(), 2);
        assert_eq!(f.clauses().len(), 2);
        assert_eq!(f.width_bound(), Some(2));
    }

    #[test]
    fn clause_with_two_variables_of_one_class_is_dead() {
        // (x0 ∧ x1) can never hold under a P-assignment.
        let f = DisjPosDnf::new(
            4,
            vec![vec![0, 1], vec![2, 3]],
            vec![vec![0, 1], vec![2]],
            Some(2),
        )
        .unwrap();
        assert_eq!(f.count_satisfying(1_000).unwrap().to_u64(), Some(2));
        assert_eq!(f.count_satisfying_brute_force().to_u64(), Some(2));
        // Its compactor output is ε.
        assert_eq!(f.compact(0), CompactOutput::Empty);
        assert!(matches!(f.compact(1), CompactOutput::Boxed(_)));
        assert_eq!(f.compact(99), CompactOutput::Empty);
    }

    #[test]
    fn empty_clause_makes_everything_satisfying() {
        let f = DisjPosDnf::new(2, vec![vec![0], vec![1]], vec![vec![]], Some(3)).unwrap();
        assert_eq!(f.count_satisfying(100).unwrap().to_u64(), Some(1));
        assert_eq!(f.count_satisfying_brute_force().to_u64(), Some(1));
        // No clauses at all: nothing satisfies.
        let g = DisjPosDnf::new(2, vec![vec![0], vec![1]], vec![], Some(3)).unwrap();
        assert!(g.count_satisfying(100).unwrap().is_zero());
        assert!(g.count_satisfying_brute_force().is_zero());
    }

    #[test]
    fn validation_rejects_bad_inputs() {
        // Variable in two classes.
        assert!(DisjPosDnf::new(2, vec![vec![0, 1], vec![1]], vec![], None).is_err());
        // Uncovered variable.
        assert!(DisjPosDnf::new(3, vec![vec![0], vec![1]], vec![], None).is_err());
        // Empty class.
        assert!(DisjPosDnf::new(2, vec![vec![0, 1], vec![]], vec![], None).is_err());
        // Unknown variable in a clause.
        assert!(DisjPosDnf::new(2, vec![vec![0], vec![1]], vec![vec![5]], None).is_err());
        // Unknown variable in a class.
        assert!(DisjPosDnf::new(2, vec![vec![0], vec![7]], vec![], None).is_err());
        // Clause wider than the bound.
        assert!(DisjPosDnf::new(
            3,
            vec![vec![0], vec![1], vec![2]],
            vec![vec![0, 1, 2]],
            Some(2)
        )
        .is_err());
        // The same clause is fine without a bound.
        assert!(DisjPosDnf::new(
            3,
            vec![vec![0], vec![1], vec![2]],
            vec![vec![0, 1, 2]],
            None
        )
        .is_ok());
    }

    #[test]
    fn exact_count_matches_brute_force_on_a_family() {
        // A family of formulas with 3 classes of sizes 2..4 and random-ish
        // clause structure chosen deterministically.
        for variant in 0..6usize {
            let classes = vec![vec![0, 1], vec![2, 3, 4], vec![5, 6, 7, 8]];
            let clauses = match variant {
                0 => vec![vec![0, 2], vec![1, 5]],
                1 => vec![vec![0], vec![3, 6]],
                2 => vec![vec![0, 2, 5], vec![1, 3, 6], vec![0, 4, 8]],
                3 => vec![vec![2], vec![3], vec![4]],
                4 => vec![vec![0, 1]],
                _ => vec![vec![5], vec![0, 6], vec![1, 2, 7]],
            };
            let f = DisjPosDnf::new(9, classes, clauses, Some(3)).unwrap();
            assert_eq!(
                f.count_satisfying(1_000_000).unwrap(),
                f.count_satisfying_brute_force(),
                "variant {variant}"
            );
        }
    }

    #[test]
    fn compactor_view_agrees_with_direct_counting() {
        let f = small();
        assert_eq!(
            unfold_count(&f, 1_000).unwrap(),
            f.count_satisfying(1_000).unwrap()
        );
        assert_eq!(f.domain_sizes(), vec![2, 2]);
        assert_eq!(f.pin_bound(), Some(2));
        assert_eq!(f.element_label(0, 1), "x1");
    }

    #[test]
    fn theorem_7_1_reductions_preserve_counts() {
        let f = small();
        let expected = f.count_satisfying(1_000).unwrap();
        // The natural reduction to #CQA.
        assert_eq!(f.count_via_cqa(1_000_000).unwrap(), expected);
        // The generic Theorem 5.1 reduction applied to the formula's
        // compactor.
        let instance = reduce_compactor_to_cqa(&f).unwrap();
        assert_eq!(instance.count(1_000_000).unwrap(), expected);
    }

    #[test]
    fn unbounded_formula_counts_like_spanll() {
        // Width-4 clauses, no bound: still countable exactly, and usable as
        // an unbounded compactor.
        let f = DisjPosDnf::new(
            8,
            vec![vec![0, 1], vec![2, 3], vec![4, 5], vec![6, 7]],
            vec![vec![0, 2, 4, 6], vec![1, 3, 5, 7], vec![0, 3]],
            None,
        )
        .unwrap();
        assert_eq!(f.pin_bound(), None);
        assert_eq!(
            f.count_satisfying(1_000).unwrap(),
            f.count_satisfying_brute_force()
        );
        assert_eq!(
            unfold_count(&f, 1_000).unwrap(),
            f.count_satisfying_brute_force()
        );
    }
}
