//! Compact representations `[[S₁, …, Sₙ]]_k` and their unfolding.
//!
//! Section 4.3 fixes the syntactic shape of a compactor's output: a string
//! `s₁$s₂$⋯$sₙ` where each `sᵢ` is either an element of `Sᵢ` (a pinned
//! domain) or the full listing `#s¹ᵢ$⋯$s^{ℓᵢ}ᵢ#` of `Sᵢ`, with at most `k`
//! pinned positions; the empty string `ε` denotes a rejected certificate.
//! This module implements that string format faithfully — rendering,
//! parsing, validation against domains, and unfolding — so that the
//! compactor abstraction in [`crate::compactor`] can be checked against the
//! paper's own syntax.

use std::fmt;

use cdr_num::BigNat;

/// One position of a compact representation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Slot {
    /// The position is pinned to a single element of its domain.
    Pinned(String),
    /// The position ranges over its whole domain, listed explicitly.
    Full(Vec<String>),
}

/// A parsed compact representation: either the empty string or one slot per
/// solution domain.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CompactString {
    /// The empty output `ε` (the certificate was rejected).
    Empty,
    /// A non-empty output with one slot per domain.
    Slots(Vec<Slot>),
}

impl CompactString {
    /// The number of pinned slots (the `ℓ` of the ℓ-selector).
    pub fn pinned_count(&self) -> usize {
        match self {
            CompactString::Empty => 0,
            CompactString::Slots(slots) => slots
                .iter()
                .filter(|s| matches!(s, Slot::Pinned(_)))
                .count(),
        }
    }

    /// Returns `true` iff the representation respects the `k` bound of
    /// `[[S₁, …, Sₙ]]_k`.
    pub fn respects_bound(&self, k: usize) -> bool {
        self.pinned_count() <= k
    }

    /// The size of the unfolding: `0` for `ε`, otherwise the product of the
    /// sizes of the full slots (pinned slots contribute a factor of 1).
    pub fn unfolding_size(&self) -> BigNat {
        match self {
            CompactString::Empty => BigNat::zero(),
            CompactString::Slots(slots) => {
                let mut size = BigNat::one();
                for slot in slots {
                    if let Slot::Full(elements) = slot {
                        size.mul_assign_u64(elements.len() as u64);
                    }
                }
                size
            }
        }
    }

    /// Enumerates the unfolding: every tuple `(s₁, …, sₙ)` with `sᵢ` equal
    /// to the pinned element or ranging over the listed domain.
    pub fn unfold(&self) -> Vec<Vec<String>> {
        match self {
            CompactString::Empty => Vec::new(),
            CompactString::Slots(slots) => {
                let mut tuples: Vec<Vec<String>> = vec![Vec::new()];
                for slot in slots {
                    let options: Vec<&String> = match slot {
                        Slot::Pinned(e) => vec![e],
                        Slot::Full(elements) => elements.iter().collect(),
                    };
                    let mut next = Vec::with_capacity(tuples.len() * options.len());
                    for prefix in &tuples {
                        for opt in &options {
                            let mut t = prefix.clone();
                            t.push((*opt).clone());
                            next.push(t);
                        }
                    }
                    tuples = next;
                }
                tuples
            }
        }
    }
}

/// Renders a compact representation in the paper's `$`/`#` syntax.
///
/// Elements must not contain the separator characters `$` and `#`.
pub fn render_compact(compact: &CompactString) -> String {
    match compact {
        CompactString::Empty => String::new(),
        CompactString::Slots(slots) => {
            let rendered: Vec<String> = slots
                .iter()
                .map(|slot| match slot {
                    Slot::Pinned(e) => e.clone(),
                    Slot::Full(elements) => format!("#{}#", elements.join("$")),
                })
                .collect();
            rendered.join("$")
        }
    }
}

impl fmt::Display for CompactString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", render_compact(self))
    }
}

/// Parses a compact representation from the paper's `$`/`#` syntax.
///
/// The grammar is: the empty string, or a `$`-separated sequence of slots
/// where a slot is either a bare element or `#e₁$e₂$⋯$eₗ#`.
pub fn parse_compact(input: &str) -> Result<CompactString, String> {
    if input.is_empty() {
        return Ok(CompactString::Empty);
    }
    let chars: Vec<char> = input.chars().collect();
    let mut slots = Vec::new();
    let mut i = 0;
    loop {
        if i >= chars.len() {
            return Err("expected a slot, found end of input".to_string());
        }
        if chars[i] == '#' {
            // A full-domain slot: read until the closing '#'.
            let mut j = i + 1;
            while j < chars.len() && chars[j] != '#' {
                j += 1;
            }
            if j >= chars.len() {
                return Err("unterminated `#…#` domain listing".to_string());
            }
            let inner: String = chars[i + 1..j].iter().collect();
            if inner.is_empty() {
                return Err("a domain listing cannot be empty".to_string());
            }
            let elements: Vec<String> = inner.split('$').map(str::to_string).collect();
            if elements.iter().any(String::is_empty) {
                return Err("a domain listing cannot contain empty elements".to_string());
            }
            slots.push(Slot::Full(elements));
            i = j + 1;
        } else {
            let mut j = i;
            while j < chars.len() && chars[j] != '$' {
                if chars[j] == '#' {
                    return Err("`#` may only start a domain listing".to_string());
                }
                j += 1;
            }
            let element: String = chars[i..j].iter().collect();
            if element.is_empty() {
                return Err("a pinned slot cannot be empty".to_string());
            }
            slots.push(Slot::Pinned(element));
            i = j;
        }
        if i >= chars.len() {
            break;
        }
        if chars[i] != '$' {
            return Err(format!("expected `$` between slots, found `{}`", chars[i]));
        }
        i += 1;
    }
    Ok(CompactString::Slots(slots))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> CompactString {
        CompactString::Slots(vec![
            Slot::Pinned("a".into()),
            Slot::Full(vec!["x".into(), "y".into(), "z".into()]),
            Slot::Pinned("b".into()),
            Slot::Full(vec!["0".into(), "1".into()]),
        ])
    }

    #[test]
    fn render_and_parse_round_trip() {
        let c = example();
        let text = render_compact(&c);
        assert_eq!(text, "a$#x$y$z#$b$#0$1#");
        assert_eq!(parse_compact(&text).unwrap(), c);
        assert_eq!(c.to_string(), text);
        // The empty string is ε.
        assert_eq!(parse_compact("").unwrap(), CompactString::Empty);
        assert_eq!(render_compact(&CompactString::Empty), "");
    }

    #[test]
    fn unfolding_size_and_enumeration_agree() {
        let c = example();
        assert_eq!(c.unfolding_size().to_u64(), Some(6));
        let tuples = c.unfold();
        assert_eq!(tuples.len(), 6);
        // Every tuple respects the pinned slots.
        for t in &tuples {
            assert_eq!(t[0], "a");
            assert_eq!(t[2], "b");
            assert!(["x", "y", "z"].contains(&t[1].as_str()));
            assert!(["0", "1"].contains(&t[3].as_str()));
        }
        // Tuples are pairwise distinct.
        let mut sorted = tuples.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 6);
        // ε unfolds to the empty set, with size 0.
        assert!(CompactString::Empty.unfold().is_empty());
        assert!(CompactString::Empty.unfolding_size().is_zero());
    }

    #[test]
    fn pinned_count_and_bound() {
        let c = example();
        assert_eq!(c.pinned_count(), 2);
        assert!(c.respects_bound(2));
        assert!(c.respects_bound(5));
        assert!(!c.respects_bound(1));
        assert_eq!(CompactString::Empty.pinned_count(), 0);
        assert!(CompactString::Empty.respects_bound(0));
    }

    #[test]
    fn all_full_and_all_pinned() {
        let all_full = CompactString::Slots(vec![
            Slot::Full(vec!["a".into(), "b".into()]),
            Slot::Full(vec!["c".into()]),
        ]);
        assert_eq!(all_full.unfolding_size().to_u64(), Some(2));
        assert_eq!(all_full.pinned_count(), 0);
        let all_pinned =
            CompactString::Slots(vec![Slot::Pinned("a".into()), Slot::Pinned("c".into())]);
        assert_eq!(all_pinned.unfolding_size().to_u64(), Some(1));
        assert_eq!(
            all_pinned.unfold(),
            vec![vec!["a".to_string(), "c".to_string()]]
        );
    }

    #[test]
    fn parse_rejects_malformed_strings() {
        assert!(parse_compact("#a$b").is_err());
        assert!(parse_compact("##").is_err());
        assert!(parse_compact("a$$b").is_err());
        assert!(parse_compact("a$").is_err());
        assert!(parse_compact("$a").is_err());
        assert!(parse_compact("a#b").is_err());
        assert!(parse_compact("#a$$b#").is_err());
    }

    #[test]
    fn parse_handles_adjacent_listings() {
        let parsed = parse_compact("#a$b#$#c$d#").unwrap();
        match parsed {
            CompactString::Slots(ref slots) => {
                assert_eq!(slots.len(), 2);
                assert!(matches!(slots[0], Slot::Full(_)));
                assert!(matches!(slots[1], Slot::Full(_)));
            }
            _ => panic!("expected slots"),
        }
        assert_eq!(parsed.unfolding_size().to_u64(), Some(4));
    }
}
