//! The guess-check-expand problem gallery of Section 4.1.
//!
//! Besides `#CQA`, the paper lists several natural problems that fit the
//! guess-check-expand paradigm and therefore live inside SpanL (and, with
//! bounded certificates, inside the Λ-hierarchy):
//!
//! * counting the satisfying assignments of a positive kDNF formula — the
//!   special case of [`crate::DisjPosDnf`] where every class has exactly
//!   two variables ("x is true" / "x is false");
//! * counting the **non-independent sets** of a graph;
//! * counting the **non-3-colorings** of a graph;
//! * counting the **non-vertex-covers** of a graph.
//!
//! Each of the graph problems is implemented here both directly (as a
//! union of boxes over the natural solution domains) and as a
//! [`Compactor`], so it plugs into the unfolding counter, the generic
//! FPRAS, and the Theorem 5.1 reduction like every other Λ\[2\] member.

use cdr_core::{count_union_generic, CountError};
use cdr_num::BigNat;

use crate::compactor::{CompactOutput, Compactor, PinBox};

/// A simple undirected graph on vertices `0 … n-1`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Graph {
    vertices: usize,
    edges: Vec<(usize, usize)>,
}

impl Graph {
    /// Builds a graph, validating and normalising the edge list
    /// (self-loops are rejected, duplicate edges collapsed).
    pub fn new(vertices: usize, edges: Vec<(usize, usize)>) -> Result<Self, String> {
        let mut normalized = Vec::with_capacity(edges.len());
        for (i, (a, b)) in edges.into_iter().enumerate() {
            if a >= vertices || b >= vertices {
                return Err(format!("edge {i} mentions an unknown vertex"));
            }
            if a == b {
                return Err(format!("edge {i} is a self-loop"));
            }
            let e = (a.min(b), a.max(b));
            if !normalized.contains(&e) {
                normalized.push(e);
            }
        }
        Ok(Graph {
            vertices,
            edges: normalized,
        })
    }

    /// Number of vertices.
    pub fn vertices(&self) -> usize {
        self.vertices
    }

    /// The normalised edge list.
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// A cycle graph `C_n`.
    pub fn cycle(n: usize) -> Graph {
        let edges = (0..n).map(|v| (v, (v + 1) % n)).collect();
        Graph::new(n, edges).expect("cycles are valid graphs")
    }
}

/// Which of the Section 4.1 graph counting problems to solve.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GraphProblem {
    /// Count the vertex subsets that are **not** independent sets: some
    /// edge has both endpoints inside the set.
    NonIndependentSets,
    /// Count the assignments of 3 colors to the vertices that are **not**
    /// proper 3-colorings: some edge is monochromatic.
    NonThreeColorings,
    /// Count the vertex subsets that are **not** vertex covers: some edge
    /// has neither endpoint inside the set.
    NonVertexCovers,
}

impl GraphProblem {
    /// Number of values per vertex in the natural solution domains
    /// (2 = in/out of the set, 3 = the three colors).
    fn domain_size(self) -> usize {
        match self {
            GraphProblem::NonThreeColorings => 3,
            _ => 2,
        }
    }
}

/// A Section 4.1 graph counting instance: a graph plus the problem flavour.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GraphCounting {
    graph: Graph,
    problem: GraphProblem,
}

impl GraphCounting {
    /// Pairs a graph with a problem flavour.
    pub fn new(graph: Graph, problem: GraphProblem) -> Self {
        GraphCounting { graph, problem }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The problem flavour.
    pub fn problem(&self) -> GraphProblem {
        self.problem
    }

    /// The boxes witnessing a "bad" assignment: one or more per edge.
    fn boxes(&self) -> Vec<PinBox> {
        let mut out = Vec::new();
        for &(a, b) in &self.graph.edges {
            match self.problem {
                // Both endpoints in the set (value 1).
                GraphProblem::NonIndependentSets => {
                    out.push([(a, 1usize), (b, 1usize)].into_iter().collect());
                }
                // Some color c on both endpoints.
                GraphProblem::NonThreeColorings => {
                    for c in 0..3usize {
                        out.push([(a, c), (b, c)].into_iter().collect());
                    }
                }
                // Neither endpoint in the set (value 0).
                GraphProblem::NonVertexCovers => {
                    out.push([(a, 0usize), (b, 0usize)].into_iter().collect());
                }
            }
        }
        out
    }

    /// The total number of assignments (`2^n` or `3^n`).
    pub fn total_assignments(&self) -> BigNat {
        BigNat::from(self.problem.domain_size() as u64).pow(self.graph.vertices as u32)
    }

    /// Counts the "bad" assignments exactly (non-independent sets,
    /// non-3-colorings, or non-vertex-covers).
    pub fn count(&self, budget: u64) -> Result<BigNat, CountError> {
        let sizes = vec![self.problem.domain_size(); self.graph.vertices];
        count_union_generic(&sizes, &self.boxes(), budget)
    }

    /// Brute-force count (ground truth for tests); exponential.
    pub fn count_brute_force(&self) -> BigNat {
        let k = self.problem.domain_size();
        let n = self.graph.vertices;
        assert!(
            (k as f64).powi(n as i32) <= 5e6,
            "brute force is capped at ~5M assignments"
        );
        let mut assignment = vec![0usize; n];
        let mut count: u64 = 0;
        loop {
            let bad = self.graph.edges.iter().any(|&(a, b)| match self.problem {
                GraphProblem::NonIndependentSets => assignment[a] == 1 && assignment[b] == 1,
                GraphProblem::NonThreeColorings => assignment[a] == assignment[b],
                GraphProblem::NonVertexCovers => assignment[a] == 0 && assignment[b] == 0,
            });
            if bad {
                count += 1;
            }
            let mut i = n;
            loop {
                if i == 0 {
                    return BigNat::from(count);
                }
                i -= 1;
                assignment[i] += 1;
                if assignment[i] < k {
                    break;
                }
                assignment[i] = 0;
            }
            if n == 0 {
                return BigNat::from(count);
            }
        }
    }

    /// The complementary count: independent sets, proper 3-colorings, or
    /// vertex covers.
    pub fn count_complement(&self, budget: u64) -> Result<BigNat, CountError> {
        let bad = self.count(budget)?;
        Ok(&self.total_assignments() - &bad)
    }
}

impl Compactor for GraphCounting {
    fn domain_sizes(&self) -> Vec<usize> {
        vec![self.problem.domain_size(); self.graph.vertices]
    }

    fn certificate_count(&self) -> usize {
        self.boxes().len()
    }

    fn compact(&self, certificate: usize) -> CompactOutput {
        match self.boxes().get(certificate) {
            None => CompactOutput::Empty,
            Some(b) => CompactOutput::Boxed(b.clone()),
        }
    }

    fn pin_bound(&self) -> Option<usize> {
        // Every witness pins the two endpoints of an edge.
        Some(2)
    }

    fn element_label(&self, domain: usize, element: usize) -> String {
        match self.problem {
            GraphProblem::NonThreeColorings => format!("v{domain}c{element}"),
            _ => format!("v{domain}={element}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compactor::unfold_count;
    use crate::reduction::reduce_compactor_to_cqa;

    fn petersen_like() -> Graph {
        // A 6-cycle plus two chords: small but not trivial.
        Graph::new(
            6,
            vec![
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 0),
                (0, 3),
                (1, 4),
            ],
        )
        .unwrap()
    }

    #[test]
    fn graph_construction_and_validation() {
        let g = petersen_like();
        assert_eq!(g.vertices(), 6);
        assert_eq!(g.edges().len(), 8);
        assert!(Graph::new(3, vec![(0, 5)]).is_err());
        assert!(Graph::new(3, vec![(1, 1)]).is_err());
        // Duplicate edges (in either orientation) collapse.
        let g = Graph::new(3, vec![(0, 1), (1, 0), (0, 1)]).unwrap();
        assert_eq!(g.edges().len(), 1);
        assert_eq!(Graph::cycle(5).edges().len(), 5);
    }

    #[test]
    fn triangle_counts_match_hand_calculation() {
        let triangle = Graph::cycle(3);
        // Independent sets of K3: {}, {0}, {1}, {2} -> 4; non-independent = 8 - 4 = 4.
        let p = GraphCounting::new(triangle.clone(), GraphProblem::NonIndependentSets);
        assert_eq!(p.count(1_000).unwrap().to_u64(), Some(4));
        assert_eq!(p.count_complement(1_000).unwrap().to_u64(), Some(4));
        // Proper 3-colorings of K3: 3! = 6; non-3-colorings = 27 - 6 = 21.
        let p = GraphCounting::new(triangle.clone(), GraphProblem::NonThreeColorings);
        assert_eq!(p.count(1_000).unwrap().to_u64(), Some(21));
        assert_eq!(p.count_complement(1_000).unwrap().to_u64(), Some(6));
        // Vertex covers of K3: need >= 2 vertices -> 4; non-covers = 8 - 4 = 4.
        let p = GraphCounting::new(triangle, GraphProblem::NonVertexCovers);
        assert_eq!(p.count(1_000).unwrap().to_u64(), Some(4));
        assert_eq!(p.count_complement(1_000).unwrap().to_u64(), Some(4));
    }

    #[test]
    fn exact_counts_match_brute_force_on_all_three_problems() {
        let g = petersen_like();
        for problem in [
            GraphProblem::NonIndependentSets,
            GraphProblem::NonThreeColorings,
            GraphProblem::NonVertexCovers,
        ] {
            let p = GraphCounting::new(g.clone(), problem);
            assert_eq!(
                p.count(1_000_000).unwrap(),
                p.count_brute_force(),
                "{problem:?}"
            );
        }
    }

    #[test]
    fn compactor_view_and_theorem_5_1_reduction_agree() {
        let g = Graph::cycle(5);
        for problem in [
            GraphProblem::NonIndependentSets,
            GraphProblem::NonThreeColorings,
            GraphProblem::NonVertexCovers,
        ] {
            let p = GraphCounting::new(g.clone(), problem);
            let expected = p.count(1_000_000).unwrap();
            assert_eq!(
                unfold_count(&p, 1_000_000).unwrap(),
                expected,
                "{problem:?}"
            );
            let instance = reduce_compactor_to_cqa(&p).unwrap();
            assert_eq!(
                instance.count(1_000_000).unwrap(),
                expected,
                "{problem:?} via Q_2"
            );
            assert_eq!(p.pin_bound(), Some(2));
        }
    }

    #[test]
    fn empty_and_edgeless_graphs() {
        let lonely = Graph::new(4, vec![]).unwrap();
        for problem in [
            GraphProblem::NonIndependentSets,
            GraphProblem::NonThreeColorings,
            GraphProblem::NonVertexCovers,
        ] {
            let p = GraphCounting::new(lonely.clone(), problem);
            assert!(p.count(1_000).unwrap().is_zero(), "{problem:?}");
            assert_eq!(
                p.count_complement(1_000).unwrap(),
                p.total_assignments(),
                "{problem:?}"
            );
        }
        assert_eq!(
            GraphCounting::new(lonely, GraphProblem::NonThreeColorings)
                .total_assignments()
                .to_u64(),
            Some(81)
        );
    }

    #[test]
    fn element_labels_are_descriptive() {
        let g = Graph::cycle(3);
        let sets = GraphCounting::new(g.clone(), GraphProblem::NonIndependentSets);
        assert_eq!(sets.element_label(2, 1), "v2=1");
        let colors = GraphCounting::new(g, GraphProblem::NonThreeColorings);
        assert_eq!(colors.element_label(0, 2), "v0c2");
        assert_eq!(colors.compact(999), CompactOutput::Empty);
    }
}
