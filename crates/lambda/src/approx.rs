//! Approximation schemes for compactor-definable functions.
//!
//! Theorem 6.2: every function in `Λ[k]` admits an FPRAS that samples from
//! the *natural* sample space `U = S₁ × ⋯ × Sₙ`, because a single valid
//! certificate already witnesses a `1/mᵏ` fraction of `U` (`m` being the
//! largest domain).  [`compactor_fpras`] implements that scheme for any
//! bounded [`Compactor`].
//!
//! Theorem 7.4: functions in SpanLL (unbounded compactors) also admit an
//! FPRAS, but sampling from the natural space no longer works — the
//! covered fraction can be exponentially small.  [`compactor_karp_luby`]
//! implements the estimator over the richer sample space of
//! (certificate, completion) pairs, which covers both the bounded and the
//! unbounded case.

use cdr_core::{ApproxConfig, ApproxCount, CountError};
use cdr_num::{BigNat, LogNum};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::compactor::{collect_boxes, Compactor, PinBox};

/// Scales the sample-space size by the empirical success fraction
/// (duplicated from the core crate's internal helper to keep the crates
/// decoupled).
fn scale(space: &BigNat, positives: u64, samples: u64) -> (BigNat, LogNum) {
    if positives == 0 {
        return (BigNat::zero(), LogNum::zero());
    }
    let mut numerator = space.clone();
    numerator.mul_assign_u64(positives);
    let (estimate, remainder) = numerator.div_rem_u64(samples);
    let rounded = if remainder.saturating_mul(2) >= samples {
        &estimate + &BigNat::one()
    } else {
        estimate
    };
    let log = LogNum::from_ln(space.ln() + (positives as f64 / samples as f64).ln());
    (rounded, log)
}

fn product_of(sizes: &[usize]) -> BigNat {
    let mut total = BigNat::one();
    for &s in sizes {
        total.mul_assign_u64(s as u64);
    }
    total
}

/// The Theorem 6.2 FPRAS for a bounded compactor: sample uniform tuples of
/// `S₁ × ⋯ × Sₙ` and count how many fall into some output box.
///
/// Returns an error when the compactor is unbounded
/// (`pin_bound() == None`) — use [`compactor_karp_luby`] in that case —
/// or when a solution domain is empty.
pub fn compactor_fpras(
    compactor: &dyn Compactor,
    config: &ApproxConfig,
) -> Result<ApproxCount, CountError> {
    config.validate()?;
    let Some(k) = compactor.pin_bound() else {
        return Err(CountError::InvalidApproxParameter(
            "the natural-sample-space FPRAS requires a k-compactor; \
             use compactor_karp_luby for unbounded compactors"
                .into(),
        ));
    };
    let sizes = compactor.domain_sizes();
    let total = product_of(&sizes);
    let boxes = collect_boxes(compactor);
    if boxes.is_empty() || total.is_zero() {
        return Ok(ApproxCount::exact_value(BigNat::zero(), total));
    }
    if boxes.iter().any(PinBox::is_empty) {
        return Ok(ApproxCount::exact_value(total.clone(), total));
    }
    let m = sizes.iter().copied().max().unwrap_or(1).max(1) as f64;
    let eps = config.epsilon;
    let t = (2.0 + eps) * m.powf(k as f64) / (eps * eps) * (2.0 / config.delta).ln();
    let requested = if !t.is_finite() || t >= u64::MAX as f64 {
        u64::MAX
    } else {
        t.ceil().max(1.0) as u64
    };
    let samples = requested.min(config.max_samples).max(1);
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let mut positives = 0u64;
    let mut tuple = vec![0usize; sizes.len()];
    for _ in 0..samples {
        for (i, &s) in sizes.iter().enumerate() {
            tuple[i] = rng.gen_range(0..s);
        }
        if boxes.iter().any(|b| b.pins().all(|(d, e)| tuple[d] == e)) {
            positives += 1;
        }
    }
    let (estimate, estimate_log) = scale(&total, positives, samples);
    Ok(ApproxCount {
        estimate,
        estimate_log,
        covered_fraction: positives as f64 / samples as f64,
        samples_requested: requested,
        samples_used: samples,
        positive_samples: positives,
        sample_space_size: total,
        exact: false,
    })
}

/// The Karp–Luby estimator over (box, completion) pairs: works for bounded
/// and unbounded compactors alike (Theorem 7.4).
pub fn compactor_karp_luby(
    compactor: &dyn Compactor,
    config: &ApproxConfig,
) -> Result<ApproxCount, CountError> {
    config.validate()?;
    let sizes = compactor.domain_sizes();
    let total = product_of(&sizes);
    let boxes = collect_boxes(compactor);
    if boxes.is_empty() || total.is_zero() {
        return Ok(ApproxCount::exact_value(BigNat::zero(), BigNat::zero()));
    }
    if boxes.iter().any(PinBox::is_empty) {
        return Ok(ApproxCount::exact_value(total.clone(), total));
    }
    // Box weights: |box| = ∏ over unpinned domains |S_d|; relative weights
    // (divided by the full product) stay in (0, 1] and are safe in f64.
    let mut total_weight = BigNat::zero();
    let mut relative_weights = Vec::with_capacity(boxes.len());
    for b in &boxes {
        let mut size = BigNat::one();
        let mut rel = 1.0f64;
        for (d, &s) in sizes.iter().enumerate() {
            if b.get(d).is_none() {
                size.mul_assign_u64(s as u64);
            } else {
                rel /= s as f64;
            }
        }
        total_weight += size;
        relative_weights.push(rel);
    }
    let eps = config.epsilon;
    let t = (2.0 + eps) * boxes.len() as f64 / (eps * eps) * (2.0 / config.delta).ln();
    let requested = if !t.is_finite() || t >= u64::MAX as f64 {
        u64::MAX
    } else {
        t.ceil().max(1.0) as u64
    };
    let samples = requested.min(config.max_samples).max(1);
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let weight_sum: f64 = relative_weights.iter().sum();
    let mut positives = 0u64;
    let mut tuple = vec![0usize; sizes.len()];
    for _ in 0..samples {
        let mut target = rng.gen_range(0.0..weight_sum);
        let mut chosen = boxes.len() - 1;
        for (i, w) in relative_weights.iter().enumerate() {
            if target < *w {
                chosen = i;
                break;
            }
            target -= w;
        }
        for (d, &s) in sizes.iter().enumerate() {
            tuple[d] = match boxes[chosen].get(d) {
                Some(e) => e,
                None => rng.gen_range(0..s),
            };
        }
        let first = boxes
            .iter()
            .position(|b| b.pins().all(|(d, e)| tuple[d] == e))
            .expect("the chosen box contains its own completion");
        if first == chosen {
            positives += 1;
        }
    }
    let (estimate, estimate_log) = scale(&total_weight, positives, samples);
    Ok(ApproxCount {
        estimate,
        estimate_log,
        covered_fraction: positives as f64 / samples as f64,
        samples_requested: requested,
        samples_used: samples,
        positive_samples: positives,
        sample_space_size: total_weight,
        exact: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compactor::{unfold_count, CompactOutput, ExplicitCompactor};
    use crate::disj_dnf::DisjPosDnf;

    fn medium_compactor() -> ExplicitCompactor {
        // 8 domains of size 3, boxes pinning at most 2 domains.
        let outputs = vec![
            CompactOutput::pins([(0, 0), (1, 1)]),
            CompactOutput::pins([(2, 2), (3, 0)]),
            CompactOutput::pins([(4, 1)]),
            CompactOutput::Empty,
            CompactOutput::pins([(0, 0), (5, 2)]),
            CompactOutput::pins([(6, 0), (7, 0)]),
        ];
        ExplicitCompactor::new(vec![3; 8], outputs, Some(2))
    }

    #[test]
    fn fpras_matches_exact_within_epsilon() {
        let c = medium_compactor();
        let exact = unfold_count(&c, 10_000_000).unwrap();
        let config = ApproxConfig {
            epsilon: 0.1,
            delta: 0.05,
            ..ApproxConfig::default()
        };
        let approx = compactor_fpras(&c, &config).unwrap();
        assert!(
            approx.relative_error(&exact) <= config.epsilon,
            "estimate {} vs exact {exact}",
            approx.estimate
        );
        assert!(!approx.exact);
    }

    #[test]
    fn karp_luby_matches_exact_within_epsilon() {
        let c = medium_compactor();
        let exact = unfold_count(&c, 10_000_000).unwrap();
        let config = ApproxConfig {
            epsilon: 0.1,
            delta: 0.05,
            ..ApproxConfig::default()
        };
        let approx = compactor_karp_luby(&c, &config).unwrap();
        assert!(
            approx.relative_error(&exact) <= config.epsilon,
            "estimate {} vs exact {exact}",
            approx.estimate
        );
    }

    #[test]
    fn fpras_rejects_unbounded_compactors_but_karp_luby_accepts() {
        // An unbounded compactor whose union is a tiny fraction of U: the
        // Karp–Luby estimator still gets it right; the natural-space FPRAS
        // refuses to run.
        let c = ExplicitCompactor::new(
            vec![2; 12],
            vec![CompactOutput::pins((0..12).map(|d| (d, 0)))],
            None,
        );
        let config = ApproxConfig {
            epsilon: 0.2,
            ..ApproxConfig::default()
        };
        assert!(compactor_fpras(&c, &config).is_err());
        let approx = compactor_karp_luby(&c, &config).unwrap();
        assert_eq!(approx.estimate.to_u64(), Some(1));
    }

    #[test]
    fn degenerate_compactors_short_circuit() {
        let nothing = ExplicitCompactor::new(vec![4, 4], vec![CompactOutput::Empty], Some(1));
        let config = ApproxConfig::default();
        assert!(compactor_fpras(&nothing, &config)
            .unwrap()
            .estimate
            .is_zero());
        assert!(compactor_karp_luby(&nothing, &config)
            .unwrap()
            .estimate
            .is_zero());
        let everything = ExplicitCompactor::new(vec![4, 4], vec![CompactOutput::pins([])], Some(0));
        assert_eq!(
            compactor_fpras(&everything, &config)
                .unwrap()
                .estimate
                .to_u64(),
            Some(16)
        );
        assert_eq!(
            compactor_karp_luby(&everything, &config)
                .unwrap()
                .estimate
                .to_u64(),
            Some(16)
        );
    }

    #[test]
    fn dnf_formulas_are_approximable_through_their_compactor() {
        // Theorem 7.1 + Theorem 6.2: #DisjPoskDNF admits the simple FPRAS.
        let f = DisjPosDnf::new(
            9,
            vec![vec![0, 1, 2], vec![3, 4, 5], vec![6, 7, 8]],
            vec![vec![0, 3], vec![1, 7], vec![4, 8], vec![2]],
            Some(2),
        )
        .unwrap();
        let exact = f.count_satisfying(1_000_000).unwrap();
        let config = ApproxConfig {
            epsilon: 0.1,
            delta: 0.05,
            ..ApproxConfig::default()
        };
        let fpras = compactor_fpras(&f, &config).unwrap();
        let kl = compactor_karp_luby(&f, &config).unwrap();
        assert!(fpras.relative_error(&exact) <= 0.1);
        assert!(kl.relative_error(&exact) <= 0.1);
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        let c = medium_compactor();
        let bad = ApproxConfig {
            epsilon: 0.0,
            ..ApproxConfig::default()
        };
        assert!(compactor_fpras(&c, &bad).is_err());
        assert!(compactor_karp_luby(&c, &bad).is_err());
    }
}
