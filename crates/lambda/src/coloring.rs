//! `#kForbColoring`: counting forbidden colorings of k-uniform hypergraphs.
//!
//! Section 7.1: the input is a k-uniform hypergraph `H = (V, E)`, a set of
//! colors `C_v` for every vertex, and for every hyperedge `e` a set `F_e`
//! of *forbidden* assignments of colors to the vertices of `e`.  A coloring
//! `µ` of `V` is forbidden iff some hyperedge `e` has an assignment
//! `ν ∈ F_e` that `µ` extends.  Theorem 7.2: `#kForbColoring` is
//! Λ\[k\]-complete; its unbounded version is SpanLL-complete (Theorem 7.5).
//!
//! Structurally this is again a union of boxes: the solution domains are
//! the vertices (their color lists), and each pair `(e, ν)` is a box
//! pinning the `k` vertices of `e` to the colors of `ν`.

use cdr_core::{count_union_generic, CountError, RepairCounter};
use cdr_num::BigNat;
use cdr_query::{parse_query, Query};
use cdr_repairdb::{Database, KeySet, Schema, Value};

use crate::compactor::{CompactOutput, Compactor, PinBox};

/// A hypergraph with per-vertex color lists and per-edge forbidden
/// assignments.
///
/// Vertices are `0 … num_vertices-1`; colors are indices into each vertex's
/// color list.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Hypergraph {
    /// `colors[v]` is the number of colors available to vertex `v`
    /// (`|C_v|`).
    colors: Vec<usize>,
    /// Hyperedges: each a sorted list of distinct vertices.
    edges: Vec<Vec<usize>>,
    /// Uniformity bound `k`, if required.
    uniformity: Option<usize>,
}

/// A `#ForbColoring` instance: a hypergraph plus forbidden assignments.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ForbiddenColoring {
    graph: Hypergraph,
    /// `forbidden[e]` lists, for hyperedge `e`, the forbidden assignments:
    /// each maps the vertices of `e` (in edge order) to a color index.
    forbidden: Vec<Vec<Vec<usize>>>,
}

impl Hypergraph {
    /// Builds a hypergraph.
    ///
    /// Every vertex must have at least one color; edges must list distinct
    /// existing vertices; when `uniformity = Some(k)` every edge must have
    /// exactly `k` vertices.
    pub fn new(
        colors: Vec<usize>,
        edges: Vec<Vec<usize>>,
        uniformity: Option<usize>,
    ) -> Result<Self, String> {
        if let Some(v) = colors.iter().position(|&c| c == 0) {
            return Err(format!("vertex {v} has an empty color list"));
        }
        let mut normalized = Vec::with_capacity(edges.len());
        for (i, edge) in edges.into_iter().enumerate() {
            let mut e = edge;
            e.sort_unstable();
            let before = e.len();
            e.dedup();
            if e.len() != before {
                return Err(format!("edge {i} repeats a vertex"));
            }
            for &v in &e {
                if v >= colors.len() {
                    return Err(format!("edge {i} mentions unknown vertex {v}"));
                }
            }
            if let Some(k) = uniformity {
                if e.len() != k {
                    return Err(format!(
                        "edge {i} has {} vertices but the hypergraph must be {k}-uniform",
                        e.len()
                    ));
                }
            }
            normalized.push(e);
        }
        Ok(Hypergraph {
            colors,
            edges: normalized,
            uniformity,
        })
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.colors.len()
    }

    /// The number of colors of each vertex.
    pub fn colors(&self) -> &[usize] {
        &self.colors
    }

    /// The hyperedges.
    pub fn edges(&self) -> &[Vec<usize>] {
        &self.edges
    }

    /// The uniformity bound `k`, if any.
    pub fn uniformity(&self) -> Option<usize> {
        self.uniformity
    }

    /// The total number of colorings `∏ |C_v|`.
    pub fn total_colorings(&self) -> BigNat {
        let mut total = BigNat::one();
        for &c in &self.colors {
            total.mul_assign_u64(c as u64);
        }
        total
    }
}

impl ForbiddenColoring {
    /// Builds an instance.
    ///
    /// `forbidden` must have one entry per hyperedge; each forbidden
    /// assignment must list one valid color per vertex of its edge.
    pub fn new(graph: Hypergraph, forbidden: Vec<Vec<Vec<usize>>>) -> Result<Self, String> {
        if forbidden.len() != graph.edges.len() {
            return Err(format!(
                "expected {} forbidden-assignment sets, got {}",
                graph.edges.len(),
                forbidden.len()
            ));
        }
        for (e, (edge, sets)) in graph.edges.iter().zip(&forbidden).enumerate() {
            for (a, assignment) in sets.iter().enumerate() {
                if assignment.len() != edge.len() {
                    return Err(format!(
                        "forbidden assignment {a} of edge {e} has {} colors for {} vertices",
                        assignment.len(),
                        edge.len()
                    ));
                }
                for (&v, &c) in edge.iter().zip(assignment) {
                    if c >= graph.colors[v] {
                        return Err(format!(
                            "forbidden assignment {a} of edge {e} uses color {c} \
                             but vertex {v} has only {} colors",
                            graph.colors[v]
                        ));
                    }
                }
            }
        }
        Ok(ForbiddenColoring { graph, forbidden })
    }

    /// The underlying hypergraph.
    pub fn graph(&self) -> &Hypergraph {
        &self.graph
    }

    /// The forbidden assignments, indexed by hyperedge.
    pub fn forbidden(&self) -> &[Vec<Vec<usize>>] {
        &self.forbidden
    }

    /// All boxes `(e, ν)`: one per forbidden assignment of each edge.
    fn boxes(&self) -> Vec<PinBox> {
        let mut out = Vec::new();
        for (edge, sets) in self.graph.edges.iter().zip(&self.forbidden) {
            for assignment in sets {
                let pins: PinBox = edge
                    .iter()
                    .copied()
                    .zip(assignment.iter().copied())
                    .collect();
                out.push(pins);
            }
        }
        out
    }

    /// Counts the forbidden colorings exactly.
    pub fn count_forbidden(&self, budget: u64) -> Result<BigNat, CountError> {
        count_union_generic(&self.graph.colors, &self.boxes(), budget)
    }

    /// Brute-force count over all colorings (ground truth for tests).
    pub fn count_forbidden_brute_force(&self) -> BigNat {
        let sizes = &self.graph.colors;
        if sizes.is_empty() {
            return if self.boxes().iter().any(PinBox::is_empty) {
                BigNat::one()
            } else {
                BigNat::zero()
            };
        }
        let boxes = self.boxes();
        let mut choice = vec![0usize; sizes.len()];
        let mut count: u64 = 0;
        loop {
            if boxes.iter().any(|b| b.pins().all(|(v, c)| choice[v] == c)) {
                count += 1;
            }
            let mut i = sizes.len();
            loop {
                if i == 0 {
                    return BigNat::from(count);
                }
                i -= 1;
                choice[i] += 1;
                if choice[i] < sizes[i] {
                    break;
                }
                choice[i] = 0;
            }
        }
    }

    /// The natural reduction to `#CQA`: relation `Paint(vertex, color)` with
    /// `key(Paint) = {1}`; the query is the disjunction over all pairs
    /// `(e, ν)` of the conjunction `⋀_{v ∈ e} Paint(v, ν(v))`.
    pub fn to_cqa_instance(&self) -> Result<(Database, KeySet, Query), CountError> {
        let mut schema = Schema::new();
        schema.add_relation("Paint", 2)?;
        let keys = KeySet::builder(&schema).key("Paint", 1)?.build();
        let mut db = Database::new(schema);
        for (v, &count) in self.graph.colors.iter().enumerate() {
            for c in 0..count {
                db.insert_values("Paint", vec![Value::int(v as i64), Value::int(c as i64)])?;
            }
        }
        let mut disjuncts = Vec::new();
        for (edge, sets) in self.graph.edges.iter().zip(&self.forbidden) {
            for assignment in sets {
                if edge.is_empty() {
                    disjuncts.push("TRUE".to_string());
                    continue;
                }
                let atoms: Vec<String> = edge
                    .iter()
                    .zip(assignment)
                    .map(|(&v, &c)| format!("Paint({v}, {c})"))
                    .collect();
                disjuncts.push(format!("({})", atoms.join(" AND ")));
            }
        }
        let text = if disjuncts.is_empty() {
            "FALSE".to_string()
        } else {
            disjuncts.join(" OR ")
        };
        let query = parse_query(&text)?;
        Ok((db, keys, query))
    }

    /// Counts the forbidden colorings via the `#CQA` reduction.
    pub fn count_via_cqa(&self, budget: u64) -> Result<BigNat, CountError> {
        let (db, keys, query) = self.to_cqa_instance()?;
        RepairCounter::new(&db, &keys)
            .with_budget(budget)
            .count(&query)
            .map(|o| o.count)
    }
}

impl Compactor for ForbiddenColoring {
    fn domain_sizes(&self) -> Vec<usize> {
        self.graph.colors.clone()
    }

    fn certificate_count(&self) -> usize {
        self.boxes().len()
    }

    fn compact(&self, certificate: usize) -> CompactOutput {
        match self.boxes().get(certificate) {
            None => CompactOutput::Empty,
            Some(b) => CompactOutput::Boxed(b.clone()),
        }
    }

    fn pin_bound(&self) -> Option<usize> {
        self.graph.uniformity
    }

    fn element_label(&self, domain: usize, element: usize) -> String {
        format!("v{domain}c{element}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compactor::unfold_count;
    use crate::reduction::reduce_compactor_to_cqa;

    /// A triangle (3 vertices, 3 edges of size 2), 2 colors per vertex, and
    /// "both endpoints get color 0" forbidden on every edge.
    fn triangle() -> ForbiddenColoring {
        let graph = Hypergraph::new(
            vec![2, 2, 2],
            vec![vec![0, 1], vec![1, 2], vec![0, 2]],
            Some(2),
        )
        .unwrap();
        ForbiddenColoring::new(graph, vec![vec![vec![0, 0]]; 3]).unwrap()
    }

    #[test]
    fn triangle_forbidden_count() {
        let f = triangle();
        assert_eq!(f.graph().total_colorings().to_u64(), Some(8));
        // Colorings with at least one all-zero edge: complement of colorings
        // where every edge has a non-zero endpoint.  Non-forbidden are
        // exactly the colorings with at most one zero: 1 (no zeros) + 3
        // (one zero) = 4, so forbidden = 4.
        assert_eq!(f.count_forbidden(1_000).unwrap().to_u64(), Some(4));
        assert_eq!(f.count_forbidden_brute_force().to_u64(), Some(4));
        assert_eq!(f.graph().num_vertices(), 3);
        assert_eq!(f.graph().edges().len(), 3);
        assert_eq!(f.graph().uniformity(), Some(2));
        assert_eq!(f.forbidden().len(), 3);
    }

    #[test]
    fn list_coloring_style_instance() {
        // Different color-list sizes and several forbidden assignments per
        // edge; exact counting must match brute force.
        let graph = Hypergraph::new(
            vec![3, 2, 4, 2],
            vec![vec![0, 1, 2], vec![1, 2, 3]],
            Some(3),
        )
        .unwrap();
        let f = ForbiddenColoring::new(
            graph,
            vec![
                vec![vec![0, 0, 0], vec![1, 1, 2]],
                vec![vec![0, 3, 1], vec![1, 0, 0], vec![0, 0, 0]],
            ],
        )
        .unwrap();
        assert_eq!(
            f.count_forbidden(1_000_000).unwrap(),
            f.count_forbidden_brute_force()
        );
    }

    #[test]
    fn no_forbidden_assignments_means_zero() {
        let graph = Hypergraph::new(vec![2, 2], vec![vec![0, 1]], Some(2)).unwrap();
        let f = ForbiddenColoring::new(graph, vec![vec![]]).unwrap();
        assert!(f.count_forbidden(100).unwrap().is_zero());
        assert!(f.count_forbidden_brute_force().is_zero());
    }

    #[test]
    fn validation_rejects_bad_instances() {
        // Vertex with no colors.
        assert!(Hypergraph::new(vec![2, 0], vec![], None).is_err());
        // Edge with an unknown vertex.
        assert!(Hypergraph::new(vec![2, 2], vec![vec![0, 5]], None).is_err());
        // Edge repeating a vertex.
        assert!(Hypergraph::new(vec![2, 2], vec![vec![0, 0]], None).is_err());
        // Non-uniform edge under a uniformity requirement.
        assert!(Hypergraph::new(vec![2, 2, 2], vec![vec![0, 1, 2]], Some(2)).is_err());
        let graph = Hypergraph::new(vec![2, 2], vec![vec![0, 1]], Some(2)).unwrap();
        // Wrong number of forbidden sets.
        assert!(ForbiddenColoring::new(graph.clone(), vec![]).is_err());
        // Assignment with the wrong length.
        assert!(ForbiddenColoring::new(graph.clone(), vec![vec![vec![0]]]).is_err());
        // Assignment using a color outside the list.
        assert!(ForbiddenColoring::new(graph, vec![vec![vec![0, 9]]]).is_err());
    }

    #[test]
    fn compactor_view_and_reductions_agree() {
        let f = triangle();
        let expected = f.count_forbidden(1_000).unwrap();
        assert_eq!(unfold_count(&f, 1_000).unwrap(), expected);
        assert_eq!(f.count_via_cqa(1_000_000).unwrap(), expected);
        let instance = reduce_compactor_to_cqa(&f).unwrap();
        assert_eq!(instance.count(1_000_000).unwrap(), expected);
        assert_eq!(f.pin_bound(), Some(2));
        assert_eq!(f.domain_sizes(), vec![2, 2, 2]);
        assert_eq!(f.certificate_count(), 3);
        assert_eq!(f.element_label(1, 0), "v1c0");
        assert_eq!(f.compact(99), CompactOutput::Empty);
    }

    #[test]
    fn non_uniform_unbounded_instances_work() {
        // Mixed edge sizes, no uniformity bound: the SpanLL-style version.
        let graph = Hypergraph::new(
            vec![2, 3, 2, 2],
            vec![vec![0], vec![1, 2, 3], vec![0, 2]],
            None,
        )
        .unwrap();
        let f = ForbiddenColoring::new(
            graph,
            vec![
                vec![vec![1]],
                vec![vec![0, 0, 0], vec![2, 1, 1]],
                vec![vec![0, 1]],
            ],
        )
        .unwrap();
        assert_eq!(f.pin_bound(), None);
        assert_eq!(
            f.count_forbidden(1_000_000).unwrap(),
            f.count_forbidden_brute_force()
        );
        assert_eq!(
            f.count_via_cqa(1_000_000).unwrap(),
            f.count_forbidden_brute_force()
        );
    }
}
