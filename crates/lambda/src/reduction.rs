//! The hardness reduction of Theorem 5.1: `Λ[k] ≤ #CQA(Q_k, Σ_k)`.
//!
//! For every `k ≥ 0` the paper exhibits a single conjunctive query `Q_k`
//! and key set `Σ_k` with `kw(Q_k, Σ_k) = k` such that every function in
//! `Λ[k]` reduces to `#CQA(Q_k, Σ_k)` under many-one logspace reductions:
//!
//! * `Q_k = ∃z ∃x₁y₁ … ∃x_k y_k ( Selector(z, x₁, y₁, …, x_k, y_k) ∧
//!   ⋀ᵢ Element(xᵢ, yᵢ) )`,
//! * `Σ_k = { key(Element) = {1} }`.
//!
//! Given a compactor `M` and input `x`, the reduction builds the database
//! `D_x = D_element ∪ D_selector`:
//!
//! * `D_element` contains `Element(i, s)` for every solution-domain element
//!   `s ∈ Sᵢ` that appears in some output of `M`, plus the padding fact
//!   `Element(⋆, ⋆)`;
//! * `D_selector` contains, for every valid certificate `c`, the fact
//!   `Selector(c, i₁, s₁, …, i_ℓ, s_ℓ, ⋆, …, ⋆)` listing the pinned
//!   positions of `M(x, c)` padded with `⋆` up to `k` pairs.
//!
//! Because `key(Element) = {1}`, a repair keeps exactly one `Element(i, ·)`
//! fact per domain `i` — i.e. picks one element per solution domain — and
//! it entails `Q_k` iff that choice is consistent with some certificate's
//! pins, which is exactly membership in the union of unfoldings.  The
//! reduction is therefore parsimonious; [`reduce_compactor_to_cqa`] builds
//! it and the tests check count preservation.

use cdr_core::{CountError, RepairCounter};
use cdr_num::BigNat;
use cdr_query::{parse_query, Query};
use cdr_repairdb::{Database, KeySet, Schema, Value};

use crate::compactor::{CompactOutput, Compactor};

/// A `#CQA` instance produced by a reduction: a database, a set of primary
/// keys, and a Boolean query.
pub struct CqaInstance {
    /// The constructed database.
    pub db: Database,
    /// The primary keys (`key(Element) = {1}` for this reduction).
    pub keys: KeySet,
    /// The fixed query `Q_k`.
    pub query: Query,
}

impl CqaInstance {
    /// Counts the repairs of the instance that entail its query, exactly.
    pub fn count(&self, budget: u64) -> Result<BigNat, CountError> {
        RepairCounter::new(&self.db, &self.keys)
            .with_budget(budget)
            .count(&self.query)
            .map(|o| o.count)
    }
}

/// The sentinel constant `⋆` used for the padding positions.
fn star() -> Value {
    Value::text("*")
}

/// The domain-index constant used in `Element(i, s)` facts: `-1` is
/// reserved for the padding fact `Element(⋆, ⋆)`.
fn domain_constant(domain: usize) -> Value {
    Value::int(domain as i64)
}

fn element_constant(compactor: &dyn Compactor, domain: usize, element: usize) -> Value {
    Value::text(compactor.element_label(domain, element))
}

/// Builds the fixed query `Q_k` of the reduction.
fn query_for_keywidth(k: usize) -> Query {
    let mut vars = vec!["z".to_string()];
    let mut selector_args = vec!["z".to_string()];
    let mut element_atoms = Vec::new();
    for i in 0..k {
        let x = format!("x{i}");
        let y = format!("y{i}");
        selector_args.push(x.clone());
        selector_args.push(y.clone());
        element_atoms.push(format!("Element({x}, {y})"));
        vars.push(x);
        vars.push(y);
    }
    let mut body = format!("Selector({})", selector_args.join(", "));
    for atom in element_atoms {
        body.push_str(" AND ");
        body.push_str(&atom);
    }
    let text = format!("EXISTS {} . {}", vars.join(", "), body);
    parse_query(&text).expect("the reduction query is syntactically valid")
}

/// Builds the `#CQA(Q_k, Σ_k)` instance whose answer equals
/// `unfoldM(x)` for the given compactor.
///
/// Returns an error if the compactor is unbounded (`pin_bound() == None`):
/// the reduction needs the fixed arity `1 + 2k` for `Selector`.
pub fn reduce_compactor_to_cqa(compactor: &dyn Compactor) -> Result<CqaInstance, CountError> {
    let Some(k) = compactor.pin_bound() else {
        return Err(CountError::InvalidApproxParameter(
            "the Theorem 5.1 reduction applies to k-compactors, not unbounded compactors".into(),
        ));
    };
    let sizes = compactor.domain_sizes();

    let mut schema = Schema::new();
    schema.add_relation("Element", 2)?;
    schema.add_relation("Selector", 1 + 2 * k)?;
    let keys = KeySet::builder(&schema).key("Element", 1)?.build();
    let mut db = Database::new(schema);

    // The padding fact Element(⋆, ⋆) is always present.
    db.insert_values("Element", vec![star(), star()])?;

    // Collect which (domain, element) pairs appear in some output, and the
    // selector facts, in one pass over the certificates.
    let mut appears = vec![vec![false; 0]; sizes.len()];
    for (d, &s) in sizes.iter().enumerate() {
        appears[d] = vec![false; s];
    }
    let mut selector_rows: Vec<Vec<Value>> = Vec::new();
    for c in 0..compactor.certificate_count() {
        let CompactOutput::Boxed(pins) = compactor.compact(c) else {
            continue;
        };
        // Elements appearing in the output: pinned elements appear as
        // themselves, unpinned domains are listed in full.
        for (d, &size) in sizes.iter().enumerate() {
            match pins.get(d) {
                Some(e) => appears[d][e] = true,
                None => {
                    for slot in appears[d].iter_mut().take(size) {
                        *slot = true;
                    }
                }
            }
        }
        // The Selector fact for this certificate.
        let mut row = Vec::with_capacity(1 + 2 * k);
        row.push(Value::int(c as i64));
        for (d, e) in pins.pins() {
            row.push(domain_constant(d));
            row.push(element_constant(compactor, d, e));
        }
        while row.len() < 1 + 2 * k {
            row.push(star());
        }
        selector_rows.push(row);
    }

    for (d, flags) in appears.iter().enumerate() {
        for (e, &present) in flags.iter().enumerate() {
            if present {
                db.insert_values(
                    "Element",
                    vec![domain_constant(d), element_constant(compactor, d, e)],
                )?;
            }
        }
    }
    for row in selector_rows {
        db.insert_values("Selector", row)?;
    }

    Ok(CqaInstance {
        db,
        keys,
        query: query_for_keywidth(k),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compactor::{unfold_count, CompactOutput, ExplicitCompactor};
    use crate::cqa_compactor::CqaCompactor;
    use cdr_query::{keywidth, rewrite_to_ucq};

    fn assert_parsimonious(compactor: &dyn Compactor) {
        let expected = unfold_count(compactor, 1_000_000).unwrap();
        let instance = reduce_compactor_to_cqa(compactor).unwrap();
        let actual = instance.count(1_000_000).unwrap();
        assert_eq!(
            actual, expected,
            "the reduction must preserve the count exactly"
        );
    }

    #[test]
    fn reduction_query_has_the_right_keywidth() {
        for k in 0..4 {
            let compactor = ExplicitCompactor::new(
                vec![2; k.max(1)],
                vec![CompactOutput::pins((0..k).map(|d| (d, 0)))],
                Some(k),
            );
            let instance = reduce_compactor_to_cqa(&compactor).unwrap();
            assert_eq!(
                keywidth(&instance.query, instance.db.schema(), &instance.keys),
                k,
                "kw(Q_k, Σ_k) must equal k"
            );
        }
    }

    #[test]
    fn simple_compactors_reduce_parsimoniously() {
        // Two overlapping boxes over three domains.
        let c = ExplicitCompactor::new(
            vec![3, 2, 4],
            vec![
                CompactOutput::pins([(0, 0), (1, 1)]),
                CompactOutput::Empty,
                CompactOutput::pins([(1, 0), (2, 3)]),
                CompactOutput::pins([(0, 0), (2, 3)]),
            ],
            Some(2),
        );
        assert_parsimonious(&c);
    }

    #[test]
    fn zero_keywidth_compactor() {
        // k = 0: a compactor that either accepts everything or nothing.
        let everything = ExplicitCompactor::new(vec![3, 3], vec![CompactOutput::pins([])], Some(0));
        assert_parsimonious(&everything);
        let nothing = ExplicitCompactor::new(vec![3, 3], vec![CompactOutput::Empty], Some(0));
        assert_parsimonious(&nothing);
    }

    #[test]
    fn no_valid_certificates_counts_zero() {
        let c = ExplicitCompactor::new(
            vec![4, 4],
            vec![CompactOutput::Empty, CompactOutput::Empty],
            Some(1),
        );
        let instance = reduce_compactor_to_cqa(&c).unwrap();
        assert!(instance.count(1_000).unwrap().is_zero());
    }

    #[test]
    fn domains_with_absent_elements_still_count_correctly() {
        // Every certificate pins domain 0, so element 2 of domain 0 never
        // appears in any output; the reduction must not count repairs that
        // would pick it.
        let c = ExplicitCompactor::new(
            vec![3, 2],
            vec![CompactOutput::pins([(0, 0)]), CompactOutput::pins([(0, 1)])],
            Some(1),
        );
        assert_eq!(unfold_count(&c, 1_000).unwrap().to_u64(), Some(4));
        assert_parsimonious(&c);
    }

    #[test]
    fn composing_with_the_cqa_compactor_round_trips() {
        // Start from a #CQA instance, view it as a compactor (Algorithm 2),
        // reduce it back to #CQA via Theorem 5.1, and check all three
        // counts agree.
        let mut schema = Schema::new();
        schema.add_relation("Works", 2).unwrap();
        let keys = KeySet::builder(&schema).key("Works", 1).unwrap().build();
        let mut db = Database::new(schema);
        for k in 0..4i64 {
            for d in ["sales", "eng", "hr"] {
                db.insert_parsed(&format!("Works({k}, '{d}')")).unwrap();
            }
        }
        let q =
            parse_query("Works(0, 'sales') OR (EXISTS x . Works(1, x) AND Works(2, x))").unwrap();
        let ucq = rewrite_to_ucq(&q).unwrap();
        let original = RepairCounter::new(&db, &keys).count(&q).unwrap().count;
        let compactor = CqaCompactor::new(&db, &keys, &ucq).unwrap();
        assert_eq!(unfold_count(&compactor, 1_000_000).unwrap(), original);
        let instance = reduce_compactor_to_cqa(&compactor).unwrap();
        assert_eq!(instance.count(1_000_000).unwrap(), original);
    }

    #[test]
    fn unbounded_compactors_are_rejected() {
        let c = ExplicitCompactor::new(
            vec![2, 2],
            vec![CompactOutput::pins([(0, 0), (1, 0)])],
            None,
        );
        assert!(reduce_compactor_to_cqa(&c).is_err());
    }
}
