//! `#CQA(Q, Σ)` as a k-compactor (Algorithm 2).
//!
//! The membership half of Theorem 5.1: for a UCQ `Q` and a set of primary
//! keys `Σ` with `kw(Q, Σ) = k`, the function `#CQA(Q, Σ)` is in `Λ[k]`.
//! The witnessing compactor takes the database `D` on its first tape and a
//! candidate certificate `(Q', h)` on its second tape; after checking
//! `h(Q') ⊆ D` and `h(Q') ⊨ Σ` it outputs, block by block, either the
//! pinned fact (when `h(Q') ∩ Bᵢ` is a keyed singleton) or the full block.
//!
//! [`CqaCompactor`] realises this: its solution domains are the blocks
//! `B₁, …, Bₙ`, its candidate certificates are the pairs `(Q', h)`
//! enumerated over the database, and its check/compact step is exactly the
//! selector derivation already implemented in `cdr-core`.

use cdr_core::{enumerate_certificates, Certificate, CountError};
use cdr_query::{max_disjunct_keywidth, UcqQuery};
use cdr_repairdb::{BlockPartition, Database, KeySet};

use crate::compactor::{CompactOutput, Compactor, PinBox};

/// The k-compactor of Algorithm 2 for a fixed `(Q, Σ)` on a fixed database.
pub struct CqaCompactor {
    blocks: BlockPartition,
    certificates: Vec<Certificate>,
    keywidth: usize,
    /// Labels for the facts of each block, used for string rendering.
    block_fact_labels: Vec<Vec<String>>,
}

impl CqaCompactor {
    /// Builds the compactor for a UCQ over a database with primary keys.
    pub fn new(db: &Database, keys: &KeySet, ucq: &UcqQuery) -> Result<Self, CountError> {
        let blocks = BlockPartition::new(db, keys);
        let certificates = enumerate_certificates(db, keys, &blocks, ucq)?;
        let keywidth = max_disjunct_keywidth(ucq, db.schema(), keys);
        let block_fact_labels = blocks
            .iter()
            .map(|(_, block)| {
                block
                    .facts()
                    .iter()
                    .map(|&f| db.fact(f).display(db.schema()).to_string())
                    .collect()
            })
            .collect();
        Ok(CqaCompactor {
            blocks,
            certificates,
            keywidth,
            block_fact_labels,
        })
    }

    /// The block partition the compactor works over.
    pub fn blocks(&self) -> &BlockPartition {
        &self.blocks
    }

    /// The certificates `(Q', h)` the compactor checks.
    pub fn certificates(&self) -> &[Certificate] {
        &self.certificates
    }
}

impl Compactor for CqaCompactor {
    fn domain_sizes(&self) -> Vec<usize> {
        self.blocks.iter().map(|(_, b)| b.len()).collect()
    }

    fn certificate_count(&self) -> usize {
        self.certificates.len()
    }

    fn compact(&self, certificate: usize) -> CompactOutput {
        // Candidate certificates outside the valid range correspond to
        // strings the machine rejects.
        let Some(cert) = self.certificates.get(certificate) else {
            return CompactOutput::Empty;
        };
        let pins: PinBox = cert
            .selector
            .pins()
            .map(|(block, fact)| {
                let position = self
                    .blocks
                    .block(block)
                    .position_of(fact)
                    .expect("pinned facts belong to their block");
                (block.index(), position)
            })
            .collect();
        CompactOutput::Boxed(pins)
    }

    fn pin_bound(&self) -> Option<usize> {
        Some(self.keywidth)
    }

    fn element_label(&self, domain: usize, element: usize) -> String {
        self.block_fact_labels[domain][element].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compactor::{enumerate_solutions, unfold_count};
    use cdr_core::{count_by_boxes, count_by_enumeration, RepairCounter};
    use cdr_query::{parse_query, rewrite_to_ucq};
    use cdr_repairdb::Schema;

    fn employee() -> (Database, KeySet) {
        let mut schema = Schema::new();
        schema.add_relation("Employee", 3).unwrap();
        let keys = KeySet::builder(&schema).key("Employee", 1).unwrap().build();
        let mut db = Database::new(schema);
        db.insert_parsed("Employee(1, 'Bob', 'HR')").unwrap();
        db.insert_parsed("Employee(1, 'Bob', 'IT')").unwrap();
        db.insert_parsed("Employee(2, 'Alice', 'IT')").unwrap();
        db.insert_parsed("Employee(2, 'Tim', 'IT')").unwrap();
        (db, keys)
    }

    #[test]
    fn algorithm_2_reproduces_example_1_1() {
        let (db, keys) = employee();
        let q = parse_query("EXISTS x, y, z . Employee(1, x, y) AND Employee(2, z, y)").unwrap();
        let ucq = rewrite_to_ucq(&q).unwrap();
        let compactor = CqaCompactor::new(&db, &keys, &ucq).unwrap();
        assert_eq!(compactor.domain_sizes(), vec![2, 2]);
        assert_eq!(compactor.pin_bound(), Some(2));
        assert_eq!(compactor.certificate_count(), 2);
        assert_eq!(unfold_count(&compactor, 1_000).unwrap().to_u64(), Some(2));
        // The guess-check-expand enumeration produces the same two repairs.
        assert_eq!(enumerate_solutions(&compactor, usize::MAX).len(), 2);
        // Element labels are the facts themselves.
        let label = compactor.element_label(0, 0);
        assert!(label.contains("Employee(1"));
        // Out-of-range candidate certificates are rejected (output ε).
        assert_eq!(compactor.compact(99), CompactOutput::Empty);
        assert_eq!(compactor.blocks().len(), 2);
        assert_eq!(compactor.certificates().len(), 2);
    }

    #[test]
    fn unfold_count_equals_exact_cqa_on_many_queries() {
        let mut schema = Schema::new();
        schema.add_relation("R", 2).unwrap();
        schema.add_relation("S", 2).unwrap();
        let keys = KeySet::builder(&schema)
            .key("R", 1)
            .unwrap()
            .key("S", 1)
            .unwrap()
            .build();
        let mut db = Database::new(schema);
        for (k, v) in [(1, "a"), (1, "b"), (1, "c"), (2, "a"), (2, "b"), (3, "c")] {
            db.insert_parsed(&format!("R({k}, '{v}')")).unwrap();
        }
        for (k, v) in [(1, "a"), (1, "x"), (2, "y"), (2, "a")] {
            db.insert_parsed(&format!("S({k}, '{v}')")).unwrap();
        }
        for text in [
            "EXISTS k . R(k, 'a') AND S(k, 'a')",
            "EXISTS k, v . R(k, v) AND S(k, v)",
            "EXISTS k . R(k, 'c')",
            "R(1, 'a') OR S(1, 'x')",
            "(EXISTS k . R(k, 'a')) AND (EXISTS j . S(j, 'y'))",
            "TRUE",
            "FALSE",
        ] {
            let q = parse_query(text).unwrap();
            let ucq = rewrite_to_ucq(&q).unwrap();
            let compactor = CqaCompactor::new(&db, &keys, &ucq).unwrap();
            let via_compactor = unfold_count(&compactor, 1_000_000).unwrap();
            let via_boxes = count_by_boxes(&db, &keys, &ucq, 1_000_000).unwrap();
            let via_enumeration = count_by_enumeration(&db, &keys, &q, 1_000_000).unwrap();
            assert_eq!(via_compactor, via_boxes, "compactor vs boxes on {text}");
            assert_eq!(
                via_compactor, via_enumeration,
                "compactor vs enumeration on {text}"
            );
        }
    }

    #[test]
    fn keywidth_bounds_the_pins() {
        let (db, keys) = employee();
        let counter = RepairCounter::new(&db, &keys);
        let q = parse_query("EXISTS x, y, z . Employee(1, x, y) AND Employee(2, z, y)").unwrap();
        let ucq = rewrite_to_ucq(&q).unwrap();
        let compactor = CqaCompactor::new(&db, &keys, &ucq).unwrap();
        let k = compactor.pin_bound().unwrap();
        assert_eq!(k, counter.keywidth(&q));
        for c in 0..compactor.certificate_count() {
            if let CompactOutput::Boxed(b) = compactor.compact(c) {
                assert!(b.len() <= k);
            }
        }
    }

    #[test]
    fn keywidth_zero_queries_have_unconstrained_outputs() {
        // A query over an unkeyed relation has kw = 0: the compactor never
        // pins a block and the count is either 0 or the total.
        let mut schema = Schema::new();
        schema.add_relation("Keyed", 2).unwrap();
        schema.add_relation("Plain", 1).unwrap();
        let keys = KeySet::builder(&schema).key("Keyed", 1).unwrap().build();
        let mut db = Database::new(schema);
        db.insert_parsed("Keyed(1, 'a')").unwrap();
        db.insert_parsed("Keyed(1, 'b')").unwrap();
        db.insert_parsed("Plain('p')").unwrap();
        let q = parse_query("Plain('p')").unwrap();
        let ucq = rewrite_to_ucq(&q).unwrap();
        let compactor = CqaCompactor::new(&db, &keys, &ucq).unwrap();
        assert_eq!(compactor.pin_bound(), Some(0));
        assert_eq!(unfold_count(&compactor, 1_000).unwrap().to_u64(), Some(2));
    }
}
