//! The Λ-hierarchy: compactors, unfoldings, companion problems and
//! hardness reductions.
//!
//! Section 4 of the paper limits the power of logspace nondeterministic
//! transducers through *logspace k-compactors*: deterministic machines
//! that, given an input and a candidate certificate, output either the
//! empty string or a compact representation of a cartesian box
//! `[S₁, …, Sₙ]_σ` that pins at most `k` solution domains.  The function
//! computed by a compactor is the size of the union of the unfoldings of
//! its outputs, and `Λ\[k\]` is the class of all such functions.
//!
//! A logspace machine cannot be represented faithfully in a library, but
//! the *functions* the paper builds from them can: this crate models a
//! compactor run as an explicit, finite object — the [`Compactor`] trait —
//! with solution domains, a certificate space, and a check/compact step
//! per candidate certificate.  Everything the paper does with compactors
//! is then implemented on top of that trait:
//!
//! * [`compact`] — the syntactic side: the compact-representation strings
//!   `[[S₁, …, Sₙ]]_k` with `$`/`#` separators, their parser, and their
//!   unfolding (Section 4.3).
//! * [`compactor`] — unfolding counts (exact, via the same union-of-boxes
//!   engine the core crate uses) and the guess-check-expand enumeration of
//!   Algorithm 1 (Section 4.1–4.2).
//! * [`cqa_compactor`] — Algorithm 2: `#CQA(Q, Σ)` as a `kw(Q, Σ)`-compactor
//!   (the membership half of Theorem 5.1).
//! * [`reduction`] — the hardness half of Theorem 5.1: the many-one
//!   reduction from any Λ\[k\] function to `#CQA(Q_k, Σ_k)` via the
//!   `Selector`/`Element` encoding.
//! * [`disj_dnf`] / [`coloring`] — the companion problems `#DisjPoskDNF`
//!   and `#kForbColoring` of Section 7, both Λ\[k\]-complete.
//! * [`sat`] — `#3SAT` and its reduction to `#CQA(FO)` (Theorems 3.2/3.3).
//! * [`approx`] — the generic FPRAS for every function in Λ\[k\]
//!   (Theorem 6.2) and the Karp–Luby-style estimator that also covers the
//!   unbounded compactors of SpanLL (Theorem 7.4).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod approx;
pub mod coloring;
pub mod compact;
pub mod compactor;
pub mod cqa_compactor;
pub mod disj_dnf;
pub mod problems;
pub mod reduction;
pub mod sat;

pub use approx::{compactor_fpras, compactor_karp_luby};
pub use coloring::{ForbiddenColoring, Hypergraph};
pub use compact::{parse_compact, render_compact, CompactString, Slot};
pub use compactor::{
    enumerate_solutions, unfold_count, CompactOutput, Compactor, ExplicitCompactor, PinBox,
};
pub use cqa_compactor::CqaCompactor;
pub use disj_dnf::DisjPosDnf;
pub use problems::{Graph, GraphCounting, GraphProblem};
pub use reduction::{reduce_compactor_to_cqa, CqaInstance};
pub use sat::{Cnf3, Literal3};
