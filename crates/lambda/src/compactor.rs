//! The [`Compactor`] abstraction and unfolding counts.
//!
//! A logspace `k`-compactor (Definition 4.1) is a deterministic transducer
//! that maps an input `x` and a candidate certificate `c` to either `ε` or
//! a compact representation of a box over the solution domains
//! `S₁, …, Sₙ`, pinning at most `k` domains.  The function it computes is
//! `unfoldM(x) = |⋃_c unfolding(M(x, c))|`.
//!
//! A library cannot manipulate logspace machines, but it can manipulate the
//! finite object a compactor run denotes: the domains, the candidate
//! certificate space, and the output box per certificate.  The
//! [`Compactor`] trait captures exactly that; [`unfold_count`] computes
//! `unfoldM(x)` exactly (via the same union-of-boxes engine as the core
//! exact counter), and [`enumerate_solutions`] is the guess-check-expand
//! view of Algorithm 1: it materialises the distinct outputs of the
//! corresponding nondeterministic transducer.

use cdr_core::{count_union_generic, CountError, GenericBox};
use cdr_num::BigNat;

use crate::compact::{CompactString, Slot};

/// A box over the solution domains: a partial map `domain index ↦ element
/// index` (the selector `σ_c`).  Re-exported from the core crate so the
/// same union-counting engine applies.
pub type PinBox = GenericBox;

/// The output of a compactor on one candidate certificate.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CompactOutput {
    /// The empty output `ε`: the candidate certificate is invalid.
    Empty,
    /// A compact representation of the box with the given pins.
    Boxed(PinBox),
}

impl CompactOutput {
    /// Builds a boxed output from pins.
    pub fn pins(pins: impl IntoIterator<Item = (usize, usize)>) -> CompactOutput {
        CompactOutput::Boxed(pins.into_iter().collect())
    }

    /// Returns the pins of a boxed output.
    pub fn as_box(&self) -> Option<&PinBox> {
        match self {
            CompactOutput::Empty => None,
            CompactOutput::Boxed(b) => Some(b),
        }
    }
}

/// A compactor run on a fixed input: solution domains, a candidate
/// certificate space, and the deterministic check/compact step.
///
/// The `k` of a `k`-compactor is [`Compactor::pin_bound`]; `None` models
/// the unbounded compactors that define SpanLL (Section 7.2).
pub trait Compactor {
    /// The sizes `|S₁|, …, |Sₙ|` of the solution domains.
    fn domain_sizes(&self) -> Vec<usize>;

    /// The number of candidate certificates.  The paper bounds certificates
    /// by `O(log |x|)` bits, i.e. polynomially many candidates; here they
    /// are simply indexed `0 … count-1`.
    fn certificate_count(&self) -> usize;

    /// The check/compact step: the output of the compactor on candidate
    /// certificate `c`.
    fn compact(&self, certificate: usize) -> CompactOutput;

    /// The bound `k` on pinned domains (`None` for SpanLL-style compactors).
    fn pin_bound(&self) -> Option<usize>;

    /// A human-readable description of the element `e` of domain `d`
    /// (used when rendering the paper's string syntax).
    fn element_label(&self, domain: usize, element: usize) -> String {
        format!("d{domain}e{element}")
    }

    /// Renders the output on certificate `c` in the paper's
    /// `[[S₁, …, Sₙ]]_k` string syntax.
    fn compact_string(&self, certificate: usize) -> CompactString {
        match self.compact(certificate) {
            CompactOutput::Empty => CompactString::Empty,
            CompactOutput::Boxed(pins) => {
                let sizes = self.domain_sizes();
                let slots = sizes
                    .iter()
                    .enumerate()
                    .map(|(d, &size)| match pins.get(d) {
                        Some(e) => Slot::Pinned(self.element_label(d, e)),
                        None => Slot::Full((0..size).map(|e| self.element_label(d, e)).collect()),
                    })
                    .collect();
                CompactString::Slots(slots)
            }
        }
    }
}

/// Collects the distinct non-empty output boxes of a compactor.
pub fn collect_boxes(compactor: &dyn Compactor) -> Vec<PinBox> {
    let mut seen = std::collections::BTreeSet::new();
    let mut boxes = Vec::new();
    for c in 0..compactor.certificate_count() {
        if let CompactOutput::Boxed(b) = compactor.compact(c) {
            if seen.insert(b.clone()) {
                boxes.push(b);
            }
        }
    }
    boxes
}

/// Computes `unfoldM(x) = |⋃_c unfolding(M(x, c))|` exactly.
///
/// `budget` bounds the work of the union counter exactly as in the core
/// exact algorithms.
pub fn unfold_count(compactor: &dyn Compactor, budget: u64) -> Result<BigNat, CountError> {
    let sizes = compactor.domain_sizes();
    let boxes = collect_boxes(compactor);
    if let Some(k) = compactor.pin_bound() {
        debug_assert!(
            boxes.iter().all(|b| b.len() <= k),
            "a k-compactor must never pin more than k domains"
        );
    }
    count_union_generic(&sizes, &boxes, budget)
}

/// The guess-check-expand view (Algorithm 1): enumerates the distinct
/// solutions (tuples of element indices, one per domain) witnessed by some
/// certificate.  The number of solutions equals [`unfold_count`]; this
/// function is exponential and exists as ground truth for tests and small
/// experiments.
pub fn enumerate_solutions(compactor: &dyn Compactor, limit: usize) -> Vec<Vec<usize>> {
    let sizes = compactor.domain_sizes();
    let boxes = collect_boxes(compactor);
    let mut solutions = Vec::new();
    if boxes.is_empty() || sizes.contains(&0) {
        return solutions;
    }
    let mut choice = vec![0usize; sizes.len()];
    loop {
        let covered = boxes.iter().any(|b| b.pins().all(|(d, e)| choice[d] == e));
        if covered {
            solutions.push(choice.clone());
            if solutions.len() >= limit {
                return solutions;
            }
        }
        // Advance the mixed-radix counter.
        let mut i = sizes.len();
        loop {
            if i == 0 {
                return solutions;
            }
            i -= 1;
            choice[i] += 1;
            if choice[i] < sizes[i] {
                break;
            }
            choice[i] = 0;
        }
        if sizes.is_empty() {
            return solutions;
        }
    }
}

/// A compactor given by explicit data: domains, and one output per
/// candidate certificate.  Used to build synthetic Λ\[k\] functions in tests,
/// benchmarks and the hardness-reduction experiments.
#[derive(Clone, Debug)]
pub struct ExplicitCompactor {
    domains: Vec<usize>,
    outputs: Vec<CompactOutput>,
    pin_bound: Option<usize>,
}

impl ExplicitCompactor {
    /// Builds an explicit compactor.
    ///
    /// # Panics
    ///
    /// Panics if some output pins more domains than `pin_bound` allows, or
    /// pins an element outside its domain.
    pub fn new(domains: Vec<usize>, outputs: Vec<CompactOutput>, pin_bound: Option<usize>) -> Self {
        for out in &outputs {
            if let CompactOutput::Boxed(b) = out {
                if let Some(k) = pin_bound {
                    assert!(
                        b.len() <= k,
                        "output pins {} domains but the bound is {k}",
                        b.len()
                    );
                }
                for (d, e) in b.pins() {
                    assert!(d < domains.len(), "pinned domain {d} does not exist");
                    assert!(
                        e < domains[d],
                        "pinned element {e} outside domain {d} of size {}",
                        domains[d]
                    );
                }
            }
        }
        ExplicitCompactor {
            domains,
            outputs,
            pin_bound,
        }
    }

    /// The number of certificates whose output is non-empty.
    pub fn valid_certificate_count(&self) -> usize {
        self.outputs
            .iter()
            .filter(|o| matches!(o, CompactOutput::Boxed(_)))
            .count()
    }
}

impl Compactor for ExplicitCompactor {
    fn domain_sizes(&self) -> Vec<usize> {
        self.domains.clone()
    }

    fn certificate_count(&self) -> usize {
        self.outputs.len()
    }

    fn compact(&self, certificate: usize) -> CompactOutput {
        self.outputs
            .get(certificate)
            .cloned()
            .unwrap_or(CompactOutput::Empty)
    }

    fn pin_bound(&self) -> Option<usize> {
        self.pin_bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_compactor() -> ExplicitCompactor {
        // Domains of sizes 3, 2, 4; three certificates, one invalid.
        ExplicitCompactor::new(
            vec![3, 2, 4],
            vec![
                CompactOutput::pins([(0, 0), (1, 1)]),
                CompactOutput::Empty,
                CompactOutput::pins([(1, 0), (2, 3)]),
            ],
            Some(2),
        )
    }

    #[test]
    fn unfold_count_matches_enumeration() {
        let c = sample_compactor();
        let exact = unfold_count(&c, 1_000).unwrap();
        let enumerated = enumerate_solutions(&c, usize::MAX);
        assert_eq!(exact.to_u64(), Some(enumerated.len() as u64));
        // Box 1 covers 4 tuples, box 2 covers 3; they overlap in one
        // ((0,1,·) vs (·,0,3) cannot overlap since they disagree on domain 1)
        // so the union is 4 + 3 = 7.
        assert_eq!(exact.to_u64(), Some(7));
        assert_eq!(c.valid_certificate_count(), 2);
    }

    #[test]
    fn empty_and_unconstrained_compactors() {
        let empty = ExplicitCompactor::new(vec![2, 2], vec![CompactOutput::Empty], Some(0));
        assert!(unfold_count(&empty, 100).unwrap().is_zero());
        assert!(enumerate_solutions(&empty, 10).is_empty());

        let all = ExplicitCompactor::new(vec![2, 2], vec![CompactOutput::pins([])], Some(0));
        assert_eq!(unfold_count(&all, 100).unwrap().to_u64(), Some(4));
        assert_eq!(enumerate_solutions(&all, 10).len(), 4);

        let no_certs = ExplicitCompactor::new(vec![5], vec![], Some(1));
        assert!(unfold_count(&no_certs, 100).unwrap().is_zero());
    }

    #[test]
    fn enumeration_respects_the_limit() {
        let all = ExplicitCompactor::new(vec![3, 3], vec![CompactOutput::pins([])], Some(0));
        assert_eq!(enumerate_solutions(&all, 4).len(), 4);
    }

    #[test]
    fn compact_string_rendering() {
        let c = sample_compactor();
        let s = c.compact_string(0);
        assert_eq!(s.pinned_count(), 2);
        assert!(s.respects_bound(2));
        // Domain 0 pinned to element 0, domain 1 pinned to element 1,
        // domain 2 listed in full.
        assert_eq!(s.to_string(), "d0e0$d1e1$#d2e0$d2e1$d2e2$d2e3#");
        match s {
            CompactString::Slots(slots) => {
                assert!(matches!(slots[0], Slot::Pinned(_)));
                assert!(matches!(slots[1], Slot::Pinned(_)));
                assert!(matches!(slots[2], Slot::Full(_)));
            }
            _ => panic!("expected slots"),
        }
        assert_eq!(c.compact_string(1), CompactString::Empty);
        // The unfolding size of the rendered string matches the box size.
        assert_eq!(c.compact_string(2).unfolding_size().to_u64(), Some(3));
    }

    #[test]
    #[should_panic(expected = "bound")]
    fn pin_bound_is_enforced() {
        let _ = ExplicitCompactor::new(
            vec![2, 2, 2],
            vec![CompactOutput::pins([(0, 0), (1, 0), (2, 0)])],
            Some(2),
        );
    }

    #[test]
    #[should_panic(expected = "outside domain")]
    fn pins_must_be_inside_their_domain() {
        let _ = ExplicitCompactor::new(vec![2], vec![CompactOutput::pins([(0, 5)])], Some(1));
    }

    #[test]
    fn unbounded_compactors_are_allowed() {
        // A SpanLL-style compactor: no bound on the number of pins.
        let c = ExplicitCompactor::new(
            vec![2, 2, 2, 2],
            vec![
                CompactOutput::pins([(0, 0), (1, 0), (2, 0), (3, 0)]),
                CompactOutput::pins([(0, 1)]),
            ],
            None,
        );
        assert_eq!(c.pin_bound(), None);
        // 1 + 8 = 9 tuples (the two boxes are disjoint on domain 0).
        assert_eq!(unfold_count(&c, 1_000).unwrap().to_u64(), Some(9));
    }
}
