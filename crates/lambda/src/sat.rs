//! `#3SAT` and its reduction to `#CQA(FO)` (Theorems 3.2 and 3.3).
//!
//! The lower bounds for arbitrary first-order queries go through 3SAT: the
//! paper shows a fixed first-order query `Q` and key set `Σ` such that
//! `3SAT` many-one reduces to `#CQA>0(Q, Σ)` and, because the reduction is
//! parsimonious, `#3SAT` reduces to `#CQA(Q, Σ)`.  The construction used
//! here encodes an assignment choice as a key violation:
//!
//! * `Assign(v, b)` with `key(Assign) = {1}` — each variable `v` gets the
//!   two conflicting facts `Assign(v, 0)` and `Assign(v, 1)`, so a repair
//!   picks a truth value per variable;
//! * `Clause(c, v₁, s₁, v₂, s₂, v₃, s₃)` (no key) — one fact per clause,
//!   listing its literals as (variable, satisfying-value) pairs;
//! * the fixed FO query says "every clause has a literal made true":
//!   `∀c, v₁, s₁, …, s₃ . ¬Clause(c, v₁, s₁, …) ∨ Assign(v₁, s₁) ∨
//!   Assign(v₂, s₂) ∨ Assign(v₃, s₃)`.
//!
//! Repairs are in bijection with assignments and a repair satisfies the
//! query iff its assignment satisfies the formula, so the reduction is
//! parsimonious: `#3SAT(φ) = #CQA(Q, Σ)(D_φ)`.

use cdr_core::{CountError, RepairCounter};
use cdr_num::BigNat;
use cdr_query::{parse_query, Query};
use cdr_repairdb::{Database, KeySet, Schema, Value};

/// A literal of a 3CNF clause: a variable index and its polarity.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Literal3 {
    /// The variable index.
    pub var: usize,
    /// `true` for a positive literal, `false` for a negated one.
    pub positive: bool,
}

impl Literal3 {
    /// Convenience constructor.
    pub fn new(var: usize, positive: bool) -> Self {
        Literal3 { var, positive }
    }
}

/// A 3CNF formula: every clause has exactly three literals.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cnf3 {
    num_vars: usize,
    clauses: Vec<[Literal3; 3]>,
}

impl Cnf3 {
    /// Builds a formula, validating variable indices.
    pub fn new(num_vars: usize, clauses: Vec<[Literal3; 3]>) -> Result<Self, String> {
        for (i, clause) in clauses.iter().enumerate() {
            for lit in clause {
                if lit.var >= num_vars {
                    return Err(format!("clause {i} mentions unknown variable {}", lit.var));
                }
            }
        }
        Ok(Cnf3 { num_vars, clauses })
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The clauses.
    pub fn clauses(&self) -> &[[Literal3; 3]] {
        &self.clauses
    }

    /// Evaluates the formula under an assignment given as a bit per
    /// variable.
    pub fn is_satisfied_by(&self, assignment: &[bool]) -> bool {
        self.clauses
            .iter()
            .all(|clause| clause.iter().any(|lit| assignment[lit.var] == lit.positive))
    }

    /// Brute-force model count (`#3SAT`), the ground truth for the
    /// reduction tests.  Exponential in the number of variables.
    pub fn count_models_brute_force(&self) -> BigNat {
        let n = self.num_vars;
        assert!(
            n <= 24,
            "brute-force model counting is capped at 24 variables"
        );
        let mut count: u64 = 0;
        for bits in 0..(1u64 << n) {
            let assignment: Vec<bool> = (0..n).map(|i| bits & (1 << i) != 0).collect();
            if self.is_satisfied_by(&assignment) {
                count += 1;
            }
        }
        BigNat::from(count)
    }

    /// The total number of assignments `2^n`.
    pub fn total_assignments(&self) -> BigNat {
        BigNat::from(2u64).pow(self.num_vars as u32)
    }

    /// Builds the `#CQA(Q, Σ)` instance of Theorem 3.2/3.3 for this
    /// formula: the database `D_φ`, the primary keys, and the fixed
    /// first-order query.
    pub fn to_cqa_instance(&self) -> Result<(Database, KeySet, Query), CountError> {
        let mut schema = Schema::new();
        schema.add_relation("Assign", 2)?;
        schema.add_relation("Clause", 7)?;
        let keys = KeySet::builder(&schema).key("Assign", 1)?.build();
        let mut db = Database::new(schema);
        for v in 0..self.num_vars {
            db.insert_values("Assign", vec![Value::int(v as i64), Value::int(0)])?;
            db.insert_values("Assign", vec![Value::int(v as i64), Value::int(1)])?;
        }
        for (c, clause) in self.clauses.iter().enumerate() {
            let mut row = Vec::with_capacity(7);
            row.push(Value::int(c as i64));
            for lit in clause {
                row.push(Value::int(lit.var as i64));
                row.push(Value::int(if lit.positive { 1 } else { 0 }));
            }
            db.insert_values("Clause", row)?;
        }
        let query = parse_query(
            "FORALL c, v1, s1, v2, s2, v3, s3 . \
             NOT Clause(c, v1, s1, v2, s2, v3, s3) \
             OR Assign(v1, s1) OR Assign(v2, s2) OR Assign(v3, s3)",
        )?;
        Ok((db, keys, query))
    }

    /// `#3SAT` computed through the `#CQA(FO)` reduction: counts the
    /// repairs of `D_φ` that satisfy the fixed query.
    pub fn count_models_via_cqa(&self, budget: u64) -> Result<BigNat, CountError> {
        let (db, keys, query) = self.to_cqa_instance()?;
        RepairCounter::new(&db, &keys)
            .with_budget(budget)
            .count(&query)
            .map(|o| o.count)
    }

    /// The decision version (`3SAT` as `#CQA>0(FO)`): is some repair a
    /// satisfying assignment?
    pub fn satisfiable_via_cqa(&self) -> Result<bool, CountError> {
        let (db, keys, query) = self.to_cqa_instance()?;
        RepairCounter::new(&db, &keys).holds_in_some_repair(&query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(var: usize, positive: bool) -> Literal3 {
        Literal3::new(var, positive)
    }

    /// (x0 ∨ x1 ∨ x2) ∧ (¬x0 ∨ ¬x1 ∨ x2)
    fn small() -> Cnf3 {
        Cnf3::new(
            3,
            vec![
                [lit(0, true), lit(1, true), lit(2, true)],
                [lit(0, false), lit(1, false), lit(2, true)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn brute_force_counts() {
        let f = small();
        assert_eq!(f.num_vars(), 3);
        assert_eq!(f.clauses().len(), 2);
        assert_eq!(f.total_assignments().to_u64(), Some(8));
        // Count by hand: of the 8 assignments, the first clause removes
        // (F,F,F); the second removes (T,T,F); total 6.
        assert_eq!(f.count_models_brute_force().to_u64(), Some(6));
        assert!(f.is_satisfied_by(&[true, false, false]));
        assert!(!f.is_satisfied_by(&[false, false, false]));
    }

    #[test]
    fn reduction_is_parsimonious() {
        let f = small();
        assert_eq!(
            f.count_models_via_cqa(10_000).unwrap(),
            f.count_models_brute_force()
        );
        assert!(f.satisfiable_via_cqa().unwrap());
    }

    #[test]
    fn unsatisfiable_formula() {
        // (x0 ∨ x0 ∨ x0) ∧ (¬x0 ∨ ¬x0 ∨ ¬x0) is unsatisfiable.
        let f = Cnf3::new(
            1,
            vec![
                [lit(0, true), lit(0, true), lit(0, true)],
                [lit(0, false), lit(0, false), lit(0, false)],
            ],
        )
        .unwrap();
        assert!(f.count_models_brute_force().is_zero());
        assert!(f.count_models_via_cqa(1_000).unwrap().is_zero());
        assert!(!f.satisfiable_via_cqa().unwrap());
    }

    #[test]
    fn empty_formula_counts_all_assignments() {
        let f = Cnf3::new(2, vec![]).unwrap();
        assert_eq!(f.count_models_brute_force().to_u64(), Some(4));
        assert_eq!(f.count_models_via_cqa(1_000).unwrap().to_u64(), Some(4));
    }

    #[test]
    fn several_random_style_formulas_agree() {
        // A few handcrafted formulas with 4 variables exercise different
        // clause structures.
        let formulas = [
            Cnf3::new(
                4,
                vec![
                    [lit(0, true), lit(1, false), lit(2, true)],
                    [lit(1, true), lit(2, false), lit(3, true)],
                    [lit(0, false), lit(2, true), lit(3, false)],
                ],
            )
            .unwrap(),
            Cnf3::new(
                4,
                vec![
                    [lit(0, true), lit(0, true), lit(1, true)],
                    [lit(2, false), lit(3, false), lit(0, false)],
                ],
            )
            .unwrap(),
            Cnf3::new(
                4,
                vec![
                    [lit(0, true), lit(1, true), lit(2, true)],
                    [lit(0, false), lit(1, false), lit(2, false)],
                    [lit(1, true), lit(2, false), lit(3, true)],
                    [lit(3, false), lit(0, true), lit(2, true)],
                ],
            )
            .unwrap(),
        ];
        for (i, f) in formulas.iter().enumerate() {
            assert_eq!(
                f.count_models_via_cqa(100_000).unwrap(),
                f.count_models_brute_force(),
                "formula {i}"
            );
        }
    }

    #[test]
    fn validation_rejects_unknown_variables() {
        assert!(Cnf3::new(1, vec![[lit(0, true), lit(1, true), lit(0, true)]]).is_err());
    }
}
