//! The keywidth covering function `kw(Q, Σ)`.
//!
//! Section 5.1 of the paper defines
//! `kw(Q, Σ) = |{R(t̄) | R(t̄) occurs in Q and Σ has an R-key}|` —
//! the number of (distinct) atoms of `Q` whose relation carries a key.
//! Keywidth is the covering function that stratifies `#CQA(∃FO⁺)` into the
//! levels of the Λ-hierarchy (Theorem 5.1), and it bounds the number of
//! blocks a certificate can pin, which is what the FPRAS sample-size bound
//! `t = ⌈(2+ε)·mᵏ/ε² · ln(2/δ)⌉` depends on.

use std::collections::BTreeSet;

use cdr_repairdb::{KeySet, Schema};

use crate::{Atom, ConjunctiveQuery, Query, UcqQuery};

/// The distinct atoms of a query whose relation has a key in `Σ`.
///
/// Atoms whose relation is not declared in the schema are ignored (they can
/// never contribute a keyed block).
pub fn keyed_atoms<'q>(
    atoms: impl IntoIterator<Item = &'q Atom>,
    schema: &Schema,
    keys: &KeySet,
) -> Vec<&'q Atom> {
    let mut seen = BTreeSet::new();
    let mut out = Vec::new();
    for atom in atoms {
        let keyed = schema
            .relation_id(atom.relation())
            .map(|rel| keys.has_key(rel))
            .unwrap_or(false);
        if keyed && seen.insert(atom.clone()) {
            out.push(atom);
        }
    }
    out
}

/// The keywidth `kw(Q, Σ)` of a first-order query.
pub fn keywidth(query: &Query, schema: &Schema, keys: &KeySet) -> usize {
    keyed_atoms(query.atoms(), schema, keys).len()
}

/// The keywidth of a single conjunctive query.
pub fn cq_keywidth(cq: &ConjunctiveQuery, schema: &Schema, keys: &KeySet) -> usize {
    keyed_atoms(cq.atoms(), schema, keys).len()
}

/// The maximum keywidth over the disjuncts of a UCQ.
///
/// This is the quantity `ℓ ≤ k` that bounds how many blocks a single
/// certificate `(Q', h)` can pin (Section 4.1), and therefore the exponent
/// in the FPRAS sample-size bound.
pub fn max_disjunct_keywidth(ucq: &UcqQuery, schema: &Schema, keys: &KeySet) -> usize {
    ucq.disjuncts()
        .iter()
        .map(|d| cq_keywidth(d, schema, keys))
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse_query, rewrite_to_ucq};
    use cdr_repairdb::Schema;

    fn setup() -> (Schema, KeySet) {
        let mut schema = Schema::new();
        schema.add_relation("Employee", 3).unwrap();
        schema.add_relation("Dept", 2).unwrap();
        schema.add_relation("Log", 2).unwrap();
        let keys = KeySet::builder(&schema)
            .key("Employee", 1)
            .unwrap()
            .key("Dept", 1)
            .unwrap()
            .build();
        (schema, keys)
    }

    #[test]
    fn example_query_has_keywidth_two() {
        let (schema, keys) = setup();
        let q = parse_query("EXISTS x, y, z . Employee(1, x, y) AND Employee(2, z, y)").unwrap();
        assert_eq!(keywidth(&q, &schema, &keys), 2);
    }

    #[test]
    fn unkeyed_relations_do_not_count() {
        let (schema, keys) = setup();
        let q = parse_query("EXISTS x, y . Employee(1, x, y) AND Log(x, y)").unwrap();
        assert_eq!(keywidth(&q, &schema, &keys), 1);
        let q = parse_query("EXISTS x, y . Log(x, y)").unwrap();
        assert_eq!(keywidth(&q, &schema, &keys), 0);
    }

    #[test]
    fn unknown_relations_do_not_count() {
        let (schema, keys) = setup();
        let q = parse_query("EXISTS x . Mystery(x)").unwrap();
        assert_eq!(keywidth(&q, &schema, &keys), 0);
    }

    #[test]
    fn duplicate_atoms_count_once() {
        let (schema, keys) = setup();
        // The same atom written twice is a single element of the atom set.
        let q =
            parse_query("(EXISTS x, y . Employee(1, x, y)) OR (EXISTS x, y . Employee(1, x, y))")
                .unwrap();
        assert_eq!(keywidth(&q, &schema, &keys), 1);
    }

    #[test]
    fn empty_key_set_gives_keywidth_zero() {
        let (schema, _) = setup();
        let empty = KeySet::empty(&schema);
        let q = parse_query("EXISTS x, y, z . Employee(1, x, y) AND Employee(2, z, y)").unwrap();
        assert_eq!(keywidth(&q, &schema, &empty), 0);
    }

    #[test]
    fn max_disjunct_keywidth_takes_the_maximum() {
        let (schema, keys) = setup();
        let q = parse_query(
            "(EXISTS x, y . Employee(1, x, y) AND Employee(2, x, y) AND Dept(y, x)) \
             OR (EXISTS z . Dept(z, z)) \
             OR (EXISTS w . Log(w, w))",
        )
        .unwrap();
        let ucq = rewrite_to_ucq(&q).unwrap();
        assert_eq!(max_disjunct_keywidth(&ucq, &schema, &keys), 3);
        assert_eq!(keywidth(&q, &schema, &keys), 4);
    }

    #[test]
    fn empty_ucq_has_keywidth_zero() {
        let (schema, keys) = setup();
        let ucq = rewrite_to_ucq(&parse_query("FALSE").unwrap()).unwrap();
        assert_eq!(max_disjunct_keywidth(&ucq, &schema, &keys), 0);
    }
}
