//! Abstract syntax of first-order queries.

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

use cdr_repairdb::Value;

/// A variable name.
///
/// Variables are plain interned strings; the parser's convention is that any
/// bare identifier is a variable and constants are numbers or quoted
/// strings.
pub type VarName = Arc<str>;

/// A term: a variable or a constant.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// A variable.
    Var(VarName),
    /// A constant.
    Const(Value),
}

impl Term {
    /// Builds a variable term.
    pub fn var(name: impl AsRef<str>) -> Term {
        Term::Var(Arc::from(name.as_ref()))
    }

    /// Builds a constant term.
    pub fn constant(v: impl Into<Value>) -> Term {
        Term::Const(v.into())
    }

    /// Returns the variable name, if this term is a variable.
    pub fn as_var(&self) -> Option<&VarName> {
        match self {
            Term::Var(v) => Some(v),
            Term::Const(_) => None,
        }
    }

    /// Returns the constant, if this term is a constant.
    pub fn as_const(&self) -> Option<&Value> {
        match self {
            Term::Var(_) => None,
            Term::Const(c) => Some(c),
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(c) => write!(f, "{c}"),
        }
    }
}

impl fmt::Debug for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

/// A relational atom `R(t₁, …, tₙ)` where the relation is referenced by
/// name and resolved against a schema at evaluation time.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Atom {
    relation: Arc<str>,
    terms: Vec<Term>,
}

impl Atom {
    /// Builds an atom.
    pub fn new(relation: impl AsRef<str>, terms: Vec<Term>) -> Atom {
        Atom {
            relation: Arc::from(relation.as_ref()),
            terms,
        }
    }

    /// The relation name.
    pub fn relation(&self) -> &str {
        &self.relation
    }

    /// The terms in positional order.
    pub fn terms(&self) -> &[Term] {
        &self.terms
    }

    /// The number of terms.
    pub fn arity(&self) -> usize {
        self.terms.len()
    }

    /// The variables occurring in the atom, in first-occurrence order.
    pub fn variables(&self) -> Vec<VarName> {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        for t in &self.terms {
            if let Term::Var(v) = t {
                if seen.insert(v.clone()) {
                    out.push(v.clone());
                }
            }
        }
        out
    }

    /// Returns `true` iff the atom contains no variables (it is a fact
    /// pattern made only of constants).
    pub fn is_ground(&self) -> bool {
        self.terms.iter().all(|t| matches!(t, Term::Const(_)))
    }

    /// Applies a substitution to the atom's variables, leaving unmapped
    /// variables in place.
    pub fn substitute(&self, subst: &dyn Fn(&VarName) -> Option<Term>) -> Atom {
        let terms = self
            .terms
            .iter()
            .map(|t| match t {
                Term::Var(v) => subst(v).unwrap_or_else(|| t.clone()),
                Term::Const(_) => t.clone(),
            })
            .collect();
        Atom {
            relation: self.relation.clone(),
            terms,
        }
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.relation)?;
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Debug for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

/// A first-order formula over relational atoms and equality.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum FoFormula {
    /// The formula that is always true.
    True,
    /// The formula that is always false.
    False,
    /// A relational atom.
    Atom(Atom),
    /// Equality between two terms.
    Eq(Term, Term),
    /// Negation.
    Not(Box<FoFormula>),
    /// Conjunction of zero or more formulas (empty conjunction is `True`).
    And(Vec<FoFormula>),
    /// Disjunction of zero or more formulas (empty disjunction is `False`).
    Or(Vec<FoFormula>),
    /// Existential quantification over one or more variables.
    Exists(Vec<VarName>, Box<FoFormula>),
    /// Universal quantification over one or more variables.
    Forall(Vec<VarName>, Box<FoFormula>),
}

impl FoFormula {
    /// Builds an atom formula.
    pub fn atom(relation: impl AsRef<str>, terms: Vec<Term>) -> FoFormula {
        FoFormula::Atom(Atom::new(relation, terms))
    }

    /// Builds an existential quantification, flattening empty variable
    /// lists away.
    pub fn exists(vars: Vec<VarName>, body: FoFormula) -> FoFormula {
        if vars.is_empty() {
            body
        } else {
            FoFormula::Exists(vars, Box::new(body))
        }
    }

    /// Builds a universal quantification, flattening empty variable lists
    /// away.
    pub fn forall(vars: Vec<VarName>, body: FoFormula) -> FoFormula {
        if vars.is_empty() {
            body
        } else {
            FoFormula::Forall(vars, Box::new(body))
        }
    }

    /// All relational atoms occurring in the formula, in syntactic order.
    pub fn atoms(&self) -> Vec<&Atom> {
        let mut out = Vec::new();
        self.collect_atoms(&mut out);
        out
    }

    fn collect_atoms<'a>(&'a self, out: &mut Vec<&'a Atom>) {
        match self {
            FoFormula::True | FoFormula::False | FoFormula::Eq(_, _) => {}
            FoFormula::Atom(a) => out.push(a),
            FoFormula::Not(inner) => inner.collect_atoms(out),
            FoFormula::And(parts) | FoFormula::Or(parts) => {
                for p in parts {
                    p.collect_atoms(out);
                }
            }
            FoFormula::Exists(_, inner) | FoFormula::Forall(_, inner) => inner.collect_atoms(out),
        }
    }

    /// The free variables of the formula, in sorted order.
    pub fn free_variables(&self) -> BTreeSet<VarName> {
        let mut free = BTreeSet::new();
        let mut bound = Vec::new();
        self.collect_free(&mut bound, &mut free);
        free
    }

    fn collect_free(&self, bound: &mut Vec<VarName>, free: &mut BTreeSet<VarName>) {
        match self {
            FoFormula::True | FoFormula::False => {}
            FoFormula::Atom(a) => {
                for t in a.terms() {
                    if let Term::Var(v) = t {
                        if !bound.contains(v) {
                            free.insert(v.clone());
                        }
                    }
                }
            }
            FoFormula::Eq(l, r) => {
                for t in [l, r] {
                    if let Term::Var(v) = t {
                        if !bound.contains(v) {
                            free.insert(v.clone());
                        }
                    }
                }
            }
            FoFormula::Not(inner) => inner.collect_free(bound, free),
            FoFormula::And(parts) | FoFormula::Or(parts) => {
                for p in parts {
                    p.collect_free(bound, free);
                }
            }
            FoFormula::Exists(vars, inner) | FoFormula::Forall(vars, inner) => {
                let before = bound.len();
                bound.extend(vars.iter().cloned());
                inner.collect_free(bound, free);
                bound.truncate(before);
            }
        }
    }

    /// Returns `true` iff the formula is in the existential positive
    /// fragment `∃FO⁺`: no negation and no universal quantification.
    ///
    /// Equality atoms are allowed; they are eliminated during UCQ rewriting.
    pub fn is_positive_existential(&self) -> bool {
        match self {
            FoFormula::True | FoFormula::False | FoFormula::Atom(_) | FoFormula::Eq(_, _) => true,
            FoFormula::Not(_) | FoFormula::Forall(_, _) => false,
            FoFormula::And(parts) | FoFormula::Or(parts) => {
                parts.iter().all(FoFormula::is_positive_existential)
            }
            FoFormula::Exists(_, inner) => inner.is_positive_existential(),
        }
    }
}

impl fmt::Display for FoFormula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FoFormula::True => write!(f, "TRUE"),
            FoFormula::False => write!(f, "FALSE"),
            FoFormula::Atom(a) => write!(f, "{a}"),
            FoFormula::Eq(l, r) => write!(f, "{l} = {r}"),
            FoFormula::Not(inner) => write!(f, "NOT ({inner})"),
            FoFormula::And(parts) => {
                if parts.is_empty() {
                    return write!(f, "TRUE");
                }
                let rendered: Vec<String> = parts.iter().map(|p| format!("({p})")).collect();
                write!(f, "{}", rendered.join(" AND "))
            }
            FoFormula::Or(parts) => {
                if parts.is_empty() {
                    return write!(f, "FALSE");
                }
                let rendered: Vec<String> = parts.iter().map(|p| format!("({p})")).collect();
                write!(f, "{}", rendered.join(" OR "))
            }
            FoFormula::Exists(vars, inner) => {
                write!(f, "EXISTS {} . ({inner})", vars.join(", "))
            }
            FoFormula::Forall(vars, inner) => {
                write!(f, "FORALL {} . ({inner})", vars.join(", "))
            }
        }
    }
}

/// Syntactic classification of a query, from most to least general.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum QueryClass {
    /// Arbitrary first-order query.
    FirstOrder,
    /// Existential positive query (`∃FO⁺`) that is not a UCQ syntactically.
    ExistentialPositive,
    /// A union of conjunctive queries with more than one disjunct.
    Ucq,
    /// A single conjunctive query.
    Cq,
}

/// A first-order query `Q(x̄) = {x̄ | φ}`.
///
/// The query is *Boolean* when `x̄` is empty, which is the case the paper
/// (and this workspace) focuses on; non-Boolean queries are supported by
/// listing free (answer) variables.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Query {
    formula: FoFormula,
    free: Vec<VarName>,
}

impl Query {
    /// Builds a Boolean query (no free variables).
    ///
    /// Any variable left free in `formula` is implicitly existentially
    /// quantified, matching the common convention for Boolean CQs.
    pub fn boolean(formula: FoFormula) -> Query {
        let free: Vec<VarName> = formula.free_variables().into_iter().collect();
        let formula = FoFormula::exists(free, formula);
        Query {
            formula,
            free: Vec::new(),
        }
    }

    /// Builds a query with the given answer variables.
    ///
    /// Free variables of the formula that are not answer variables are
    /// implicitly existentially quantified.
    pub fn with_answers(answer_vars: Vec<VarName>, formula: FoFormula) -> Query {
        let implicit: Vec<VarName> = formula
            .free_variables()
            .into_iter()
            .filter(|v| !answer_vars.contains(v))
            .collect();
        let formula = FoFormula::exists(implicit, formula);
        Query {
            formula,
            free: answer_vars,
        }
    }

    /// The underlying formula.
    pub fn formula(&self) -> &FoFormula {
        &self.formula
    }

    /// The answer variables `x̄` (empty for Boolean queries).
    pub fn answer_variables(&self) -> &[VarName] {
        &self.free
    }

    /// Returns `true` iff the query is Boolean.
    pub fn is_boolean(&self) -> bool {
        self.free.is_empty()
    }

    /// Returns `true` iff the query is existential positive.
    pub fn is_positive_existential(&self) -> bool {
        self.formula.is_positive_existential()
    }

    /// All relational atoms of the query.
    pub fn atoms(&self) -> Vec<&Atom> {
        self.formula.atoms()
    }

    /// Classifies the query syntactically.
    pub fn classify(&self) -> QueryClass {
        if !self.is_positive_existential() {
            return QueryClass::FirstOrder;
        }
        // A UCQ is a disjunction of existentially quantified conjunctions of
        // atoms; a CQ has a single disjunct.  We classify on the syntax
        // after stripping the outer quantifier prefix.
        fn strip_exists(f: &FoFormula) -> &FoFormula {
            match f {
                FoFormula::Exists(_, inner) => strip_exists(inner),
                other => other,
            }
        }
        fn is_conjunction_of_atoms(f: &FoFormula) -> bool {
            match strip_exists(f) {
                FoFormula::Atom(_) | FoFormula::True | FoFormula::Eq(_, _) => true,
                FoFormula::And(parts) => parts.iter().all(|p| {
                    matches!(
                        strip_exists(p),
                        FoFormula::Atom(_) | FoFormula::True | FoFormula::Eq(_, _)
                    )
                }),
                _ => false,
            }
        }
        let body = strip_exists(&self.formula);
        match body {
            FoFormula::Or(parts) => {
                if parts.iter().all(is_conjunction_of_atoms) {
                    QueryClass::Ucq
                } else {
                    QueryClass::ExistentialPositive
                }
            }
            other => {
                if is_conjunction_of_atoms(other) {
                    QueryClass::Cq
                } else {
                    QueryClass::ExistentialPositive
                }
            }
        }
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.free.is_empty() {
            write!(f, "{}", self.formula)
        } else {
            write!(f, "{{({}) | {}}}", self.free.join(", "), self.formula)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn employee_query() -> Query {
        // EXISTS x, y, z . Employee(1, x, y) AND Employee(2, z, y)
        let body = FoFormula::And(vec![
            FoFormula::atom(
                "Employee",
                vec![Term::constant(1i64), Term::var("x"), Term::var("y")],
            ),
            FoFormula::atom(
                "Employee",
                vec![Term::constant(2i64), Term::var("z"), Term::var("y")],
            ),
        ]);
        Query::boolean(body)
    }

    #[test]
    fn term_accessors() {
        let v = Term::var("x");
        let c = Term::constant(5i64);
        assert_eq!(v.as_var().map(|s| s.as_ref()), Some("x"));
        assert!(v.as_const().is_none());
        assert_eq!(c.as_const(), Some(&Value::int(5)));
        assert!(c.as_var().is_none());
        assert_eq!(v.to_string(), "x");
        assert_eq!(c.to_string(), "5");
    }

    #[test]
    fn atom_variables_and_display() {
        let a = Atom::new(
            "R",
            vec![
                Term::var("x"),
                Term::constant("c"),
                Term::var("x"),
                Term::var("y"),
            ],
        );
        let vars: Vec<String> = a.variables().iter().map(|v| v.to_string()).collect();
        assert_eq!(vars, vec!["x", "y"]);
        assert_eq!(a.to_string(), "R(x, 'c', x, y)");
        assert_eq!(a.arity(), 4);
        assert!(!a.is_ground());
        assert!(Atom::new("R", vec![Term::constant(1i64)]).is_ground());
    }

    #[test]
    fn atom_substitution() {
        let a = Atom::new("R", vec![Term::var("x"), Term::var("y")]);
        let sub = a.substitute(&|v: &VarName| {
            if v.as_ref() == "x" {
                Some(Term::constant(7i64))
            } else {
                None
            }
        });
        assert_eq!(sub.to_string(), "R(7, y)");
    }

    #[test]
    fn free_variables_respect_quantifiers() {
        let q = employee_query();
        assert!(q.is_boolean());
        assert!(q.formula().free_variables().is_empty());

        let partially_open = FoFormula::exists(
            vec![Arc::from("x")],
            FoFormula::atom("R", vec![Term::var("x"), Term::var("y")]),
        );
        let free: Vec<String> = partially_open
            .free_variables()
            .iter()
            .map(|v| v.to_string())
            .collect();
        assert_eq!(free, vec!["y"]);
    }

    #[test]
    fn boolean_constructor_closes_free_variables() {
        let open = FoFormula::atom("R", vec![Term::var("x")]);
        let q = Query::boolean(open);
        assert!(q.is_boolean());
        assert!(q.formula().free_variables().is_empty());
        assert!(matches!(q.formula(), FoFormula::Exists(_, _)));
    }

    #[test]
    fn with_answers_keeps_answer_variables_free() {
        let open = FoFormula::atom("R", vec![Term::var("x"), Term::var("y")]);
        let q = Query::with_answers(vec![Arc::from("x")], open);
        assert!(!q.is_boolean());
        assert_eq!(q.answer_variables().len(), 1);
        let free: Vec<String> = q
            .formula()
            .free_variables()
            .iter()
            .map(|v| v.to_string())
            .collect();
        assert_eq!(free, vec!["x"]);
    }

    #[test]
    fn positive_existential_detection() {
        let q = employee_query();
        assert!(q.is_positive_existential());

        let negated = Query::boolean(FoFormula::Not(Box::new(FoFormula::atom(
            "R",
            vec![Term::var("x")],
        ))));
        assert!(!negated.is_positive_existential());

        let universal = Query::boolean(FoFormula::forall(
            vec![Arc::from("x")],
            FoFormula::atom("R", vec![Term::var("x")]),
        ));
        assert!(!universal.is_positive_existential());
    }

    #[test]
    fn classification() {
        assert_eq!(employee_query().classify(), QueryClass::Cq);

        let ucq = Query::boolean(FoFormula::Or(vec![
            FoFormula::atom("R", vec![Term::var("x")]),
            FoFormula::atom("S", vec![Term::var("y")]),
        ]));
        assert_eq!(ucq.classify(), QueryClass::Ucq);

        // Conjunction of disjunctions is ∃FO⁺ but not syntactically a UCQ.
        let epj = Query::boolean(FoFormula::And(vec![
            FoFormula::Or(vec![
                FoFormula::atom("R", vec![Term::var("x")]),
                FoFormula::atom("S", vec![Term::var("x")]),
            ]),
            FoFormula::atom("T", vec![Term::var("x")]),
        ]));
        assert_eq!(epj.classify(), QueryClass::ExistentialPositive);

        let fo = Query::boolean(FoFormula::Not(Box::new(FoFormula::atom(
            "R",
            vec![Term::var("x")],
        ))));
        assert_eq!(fo.classify(), QueryClass::FirstOrder);
    }

    #[test]
    fn atoms_are_collected_in_syntactic_order() {
        let q = employee_query();
        let atoms = q.atoms();
        assert_eq!(atoms.len(), 2);
        assert_eq!(atoms[0].terms()[0], Term::constant(1i64));
        assert_eq!(atoms[1].terms()[0], Term::constant(2i64));
    }

    #[test]
    fn display_round_trips_structure() {
        let q = employee_query();
        let text = q.to_string();
        assert!(text.contains("EXISTS"));
        assert!(text.contains("Employee(1, x, y)"));
        assert!(text.contains("AND"));
        assert_eq!(FoFormula::True.to_string(), "TRUE");
        assert_eq!(FoFormula::False.to_string(), "FALSE");
        assert_eq!(FoFormula::And(vec![]).to_string(), "TRUE");
        assert_eq!(FoFormula::Or(vec![]).to_string(), "FALSE");
        let non_bool = Query::with_answers(
            vec![Arc::from("x")],
            FoFormula::atom("R", vec![Term::var("x")]),
        );
        assert!(non_bool.to_string().contains('|'));
    }

    #[test]
    fn exists_and_forall_flatten_empty_variable_lists() {
        let body = FoFormula::atom("R", vec![Term::var("x")]);
        assert_eq!(FoFormula::exists(vec![], body.clone()), body);
        assert_eq!(FoFormula::forall(vec![], body.clone()), body);
    }
}
