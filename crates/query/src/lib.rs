//! Query substrate: first-order and existential-positive queries.
//!
//! This crate implements the query half of the paper's preliminaries
//! (Section 2.1):
//!
//! * [`Term`], [`Atom`] — terms over variables and constants, and relational
//!   atoms `R(t₁, …, tₙ)`.
//! * [`FoFormula`] / [`Query`] — arbitrary first-order queries (`FO`), with
//!   conjunction, disjunction, negation, equality and both quantifiers.
//! * [`ConjunctiveQuery`] (`CQ`) and [`UcqQuery`] (`UCQ`) — the key
//!   fragments used throughout the paper.
//! * [`rewrite_to_ucq`] — the constant-time rewriting of an existential
//!   positive query (`∃FO⁺`) into a union of conjunctive queries used by
//!   Theorems 3.4 and 3.7.
//! * [`evaluate`], [`find_homomorphisms`] — active-domain model checking
//!   for FO queries and homomorphism search for (U)CQs.
//! * [`keywidth`] — the covering function `kw(Q, Σ)` of Section 5.1.
//! * [`parse_query`] — a small text syntax so examples and tests can write
//!   queries the way the paper does.
//!
//! Queries refer to relations *by name* and are resolved against a
//! [`cdr_repairdb::Schema`] at evaluation time, so a query value can be
//! reused across databases with compatible schemas.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ast;
mod cq;
mod error;
mod eval;
mod keywidth;
mod parser;
mod rewrite;

pub use ast::{Atom, FoFormula, Query, QueryClass, Term, VarName};
pub use cq::{ConjunctiveQuery, UcqQuery};
pub use error::QueryError;
pub use eval::{
    evaluate, evaluate_formula, find_homomorphisms, homomorphism_exists, ucq_holds, Assignment,
};
pub use keywidth::{cq_keywidth, keyed_atoms, keywidth, max_disjunct_keywidth};
pub use parser::{parse_query, parse_query_with_answers};
pub use rewrite::{bind_answers, rewrite_to_ucq};
