//! A small text syntax for first-order queries.
//!
//! The grammar (case-insensitive keywords):
//!
//! ```text
//! formula     := quantified | disjunction
//! quantified  := ("EXISTS" | "FORALL") var ("," var)* "." formula
//! disjunction := conjunction ("OR" conjunction)*
//! conjunction := unary ("AND" unary)*
//! unary       := "NOT" unary | primary
//! primary     := "(" formula ")" | "TRUE" | "FALSE" | atom | comparison
//! atom        := RelationName "(" term ("," term)* ")"
//! comparison  := term "=" term | term "!=" term
//! term        := variable | integer | 'string' | "string"
//! ```
//!
//! Every bare identifier in term position is a **variable**; constants are
//! integers or quoted strings.  Relation names are the identifiers followed
//! by `(`.  [`parse_query`] closes any remaining free variables
//! existentially (Boolean query); [`parse_query_with_answers`] keeps the
//! listed variables free as answer variables.

use std::sync::Arc;

use cdr_repairdb::Value;

use crate::{FoFormula, Query, QueryError, Term, VarName};

/// Parses a Boolean first-order query.
///
/// Any variable not bound by a quantifier is implicitly existentially
/// quantified.
///
/// ```
/// use cdr_query::parse_query;
///
/// let q = parse_query("EXISTS x, y, z . Employee(1, x, y) AND Employee(2, z, y)").unwrap();
/// assert!(q.is_boolean());
/// assert!(q.is_positive_existential());
/// ```
pub fn parse_query(text: &str) -> Result<Query, QueryError> {
    let formula = parse_formula_text(text)?;
    Ok(Query::boolean(formula))
}

/// Parses a query with the given answer (free) variables.
///
/// Variables in `answers` stay free; all other variables not bound by a
/// quantifier are implicitly existentially quantified.
pub fn parse_query_with_answers(text: &str, answers: &[&str]) -> Result<Query, QueryError> {
    let formula = parse_formula_text(text)?;
    let answer_vars: Vec<VarName> = answers.iter().map(|a| Arc::from(*a)).collect();
    Ok(Query::with_answers(answer_vars, formula))
}

fn parse_formula_text(text: &str) -> Result<FoFormula, QueryError> {
    let tokens = tokenize(text)?;
    let mut parser = Parser { tokens, pos: 0 };
    let formula = parser.parse_formula()?;
    if parser.pos != parser.tokens.len() {
        return Err(QueryError::Parse(format!(
            "unexpected trailing input near `{}`",
            parser.peek_text()
        )));
    }
    Ok(formula)
}

#[derive(Clone, PartialEq, Debug)]
enum Token {
    Ident(String),
    Int(i64),
    Str(String),
    LParen,
    RParen,
    Comma,
    Dot,
    Eq,
    Neq,
    Exists,
    Forall,
    And,
    Or,
    Not,
    True,
    False,
}

fn tokenize(text: &str) -> Result<Vec<Token>, QueryError> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = text.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            c if c.is_whitespace() => i += 1,
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '.' => {
                tokens.push(Token::Dot);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            '!' => {
                if chars.get(i + 1) == Some(&'=') {
                    tokens.push(Token::Neq);
                    i += 2;
                } else {
                    return Err(QueryError::Parse("expected `=` after `!`".into()));
                }
            }
            '\'' | '"' => {
                let quote = c;
                let mut j = i + 1;
                let mut s = String::new();
                while j < chars.len() && chars[j] != quote {
                    s.push(chars[j]);
                    j += 1;
                }
                if j >= chars.len() {
                    return Err(QueryError::Parse("unterminated string literal".into()));
                }
                tokens.push(Token::Str(s));
                i = j + 1;
            }
            c if c.is_ascii_digit() || c == '-' => {
                let mut j = i;
                if c == '-' {
                    j += 1;
                }
                let start = j;
                while j < chars.len() && chars[j].is_ascii_digit() {
                    j += 1;
                }
                if j == start {
                    return Err(QueryError::Parse("expected digits after `-`".into()));
                }
                let text: String = chars[i..j].iter().collect();
                let value = text
                    .parse::<i64>()
                    .map_err(|_| QueryError::Parse(format!("integer `{text}` out of range")))?;
                tokens.push(Token::Int(value));
                i = j;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut j = i;
                while j < chars.len() && (chars[j].is_ascii_alphanumeric() || chars[j] == '_') {
                    j += 1;
                }
                let word: String = chars[i..j].iter().collect();
                let token = match word.to_ascii_uppercase().as_str() {
                    "EXISTS" => Token::Exists,
                    "FORALL" => Token::Forall,
                    "AND" => Token::And,
                    "OR" => Token::Or,
                    "NOT" => Token::Not,
                    "TRUE" => Token::True,
                    "FALSE" => Token::False,
                    _ => Token::Ident(word),
                };
                tokens.push(token);
                i = j;
            }
            other => {
                return Err(QueryError::Parse(format!("unexpected character `{other}`")));
            }
        }
    }
    Ok(tokens)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek_text(&self) -> String {
        self.peek()
            .map(|t| format!("{t:?}"))
            .unwrap_or_else(|| "<end of input>".to_string())
    }

    fn advance(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, expected: &Token) -> Result<(), QueryError> {
        match self.advance() {
            Some(ref t) if t == expected => Ok(()),
            other => Err(QueryError::Parse(format!(
                "expected {expected:?}, found {other:?}"
            ))),
        }
    }

    fn parse_formula(&mut self) -> Result<FoFormula, QueryError> {
        match self.peek() {
            Some(Token::Exists) | Some(Token::Forall) => self.parse_quantified(),
            _ => self.parse_disjunction(),
        }
    }

    fn parse_quantified(&mut self) -> Result<FoFormula, QueryError> {
        let quantifier = self.advance().expect("peeked");
        let mut vars: Vec<VarName> = Vec::new();
        loop {
            match self.advance() {
                Some(Token::Ident(name)) => vars.push(Arc::from(name.as_str())),
                other => {
                    return Err(QueryError::Parse(format!(
                        "expected a variable name after quantifier, found {other:?}"
                    )))
                }
            }
            match self.peek() {
                Some(Token::Comma) => {
                    self.advance();
                }
                Some(Token::Dot) => {
                    self.advance();
                    break;
                }
                other => {
                    return Err(QueryError::Parse(format!(
                        "expected `,` or `.` in quantifier variable list, found {other:?}"
                    )))
                }
            }
        }
        let body = self.parse_formula()?;
        Ok(match quantifier {
            Token::Exists => FoFormula::exists(vars, body),
            _ => FoFormula::forall(vars, body),
        })
    }

    fn parse_disjunction(&mut self) -> Result<FoFormula, QueryError> {
        let mut parts = vec![self.parse_conjunction()?];
        while matches!(self.peek(), Some(Token::Or)) {
            self.advance();
            // A quantifier after OR extends to the end of the disjunct.
            parts.push(match self.peek() {
                Some(Token::Exists) | Some(Token::Forall) => self.parse_quantified()?,
                _ => self.parse_conjunction()?,
            });
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("one element")
        } else {
            FoFormula::Or(parts)
        })
    }

    fn parse_conjunction(&mut self) -> Result<FoFormula, QueryError> {
        let mut parts = vec![self.parse_unary()?];
        while matches!(self.peek(), Some(Token::And)) {
            self.advance();
            parts.push(match self.peek() {
                Some(Token::Exists) | Some(Token::Forall) => self.parse_quantified()?,
                _ => self.parse_unary()?,
            });
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("one element")
        } else {
            FoFormula::And(parts)
        })
    }

    fn parse_unary(&mut self) -> Result<FoFormula, QueryError> {
        match self.peek() {
            Some(Token::Not) => {
                self.advance();
                let inner = match self.peek() {
                    Some(Token::Exists) | Some(Token::Forall) => self.parse_quantified()?,
                    _ => self.parse_unary()?,
                };
                Ok(FoFormula::Not(Box::new(inner)))
            }
            _ => self.parse_primary(),
        }
    }

    fn parse_primary(&mut self) -> Result<FoFormula, QueryError> {
        match self.advance() {
            Some(Token::LParen) => {
                let inner = self.parse_formula()?;
                self.expect(&Token::RParen)?;
                Ok(inner)
            }
            Some(Token::True) => Ok(FoFormula::True),
            Some(Token::False) => Ok(FoFormula::False),
            Some(Token::Ident(name)) => {
                if matches!(self.peek(), Some(Token::LParen)) {
                    self.advance();
                    let mut terms = Vec::new();
                    if !matches!(self.peek(), Some(Token::RParen)) {
                        loop {
                            terms.push(self.parse_term()?);
                            match self.advance() {
                                Some(Token::Comma) => continue,
                                Some(Token::RParen) => break,
                                other => {
                                    return Err(QueryError::Parse(format!(
                                        "expected `,` or `)` in atom, found {other:?}"
                                    )))
                                }
                            }
                        }
                    } else {
                        self.advance();
                    }
                    Ok(FoFormula::atom(name, terms))
                } else {
                    // A bare identifier in formula position starts a
                    // comparison, e.g. `x = 1`.
                    self.parse_comparison(Term::var(name))
                }
            }
            Some(Token::Int(v)) => self.parse_comparison(Term::constant(v)),
            Some(Token::Str(s)) => self.parse_comparison(Term::Const(Value::text(s))),
            other => Err(QueryError::Parse(format!(
                "expected a formula, found {other:?}"
            ))),
        }
    }

    fn parse_comparison(&mut self, left: Term) -> Result<FoFormula, QueryError> {
        match self.advance() {
            Some(Token::Eq) => {
                let right = self.parse_term()?;
                Ok(FoFormula::Eq(left, right))
            }
            Some(Token::Neq) => {
                let right = self.parse_term()?;
                Ok(FoFormula::Not(Box::new(FoFormula::Eq(left, right))))
            }
            other => Err(QueryError::Parse(format!(
                "expected `=` or `!=` after a term, found {other:?}"
            ))),
        }
    }

    fn parse_term(&mut self) -> Result<Term, QueryError> {
        match self.advance() {
            Some(Token::Ident(name)) => Ok(Term::var(name)),
            Some(Token::Int(v)) => Ok(Term::constant(v)),
            Some(Token::Str(s)) => Ok(Term::Const(Value::text(s))),
            other => Err(QueryError::Parse(format!(
                "expected a term, found {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::QueryClass;

    #[test]
    fn parses_the_paper_example() {
        let q = parse_query("EXISTS x, y, z . Employee(1, x, y) AND Employee(2, z, y)").unwrap();
        assert!(q.is_boolean());
        assert!(q.is_positive_existential());
        assert_eq!(q.classify(), QueryClass::Cq);
        assert_eq!(q.atoms().len(), 2);
    }

    #[test]
    fn free_variables_become_existential() {
        let q = parse_query("Employee(1, x, y)").unwrap();
        assert!(q.is_boolean());
        assert!(q.formula().free_variables().is_empty());
    }

    #[test]
    fn answer_variables_stay_free() {
        let q = parse_query_with_answers("Employee(x, y, d)", &["x", "y"]).unwrap();
        assert_eq!(q.answer_variables().len(), 2);
        let free: Vec<String> = q
            .formula()
            .free_variables()
            .iter()
            .map(|v| v.to_string())
            .collect();
        assert_eq!(free, vec!["x", "y"]);
    }

    #[test]
    fn operator_precedence_not_over_and_over_or() {
        let q = parse_query("R(x) OR S(x) AND NOT T(x)").unwrap();
        // Must parse as R(x) OR (S(x) AND (NOT T(x))).
        let formula = match q.formula() {
            FoFormula::Exists(_, inner) => inner.as_ref(),
            other => other,
        };
        match formula {
            FoFormula::Or(parts) => {
                assert_eq!(parts.len(), 2);
                assert!(matches!(parts[0], FoFormula::Atom(_)));
                match &parts[1] {
                    FoFormula::And(ps) => {
                        assert!(matches!(ps[1], FoFormula::Not(_)));
                    }
                    other => panic!("expected And, got {other:?}"),
                }
            }
            other => panic!("expected Or at the top, got {other:?}"),
        }
    }

    #[test]
    fn quantifier_body_extends_right() {
        let q = parse_query("EXISTS x . R(x) AND S(x)").unwrap();
        // The AND is inside the quantifier: the formula is closed.
        assert!(q.formula().free_variables().is_empty());
        match q.formula() {
            FoFormula::Exists(vars, body) => {
                assert_eq!(vars.len(), 1);
                assert!(matches!(body.as_ref(), FoFormula::And(_)));
            }
            other => panic!("expected Exists, got {other}"),
        }
    }

    #[test]
    fn quantifiers_after_connectives() {
        let q = parse_query("(EXISTS x . R(x)) OR EXISTS y . S(y)").unwrap();
        assert!(q.is_positive_existential());
        let q = parse_query("NOT EXISTS x . R(x)").unwrap();
        assert!(!q.is_positive_existential());
        let q = parse_query("R(1) AND FORALL y . S(y)").unwrap();
        assert!(!q.is_positive_existential());
    }

    #[test]
    fn constants_variables_and_strings() {
        let q = parse_query("EXISTS x . R(x, 42, -7, 'hello world', \"quoted\")").unwrap();
        let atom = &q.atoms()[0];
        assert_eq!(atom.arity(), 5);
        assert!(atom.terms()[0].as_var().is_some());
        assert_eq!(atom.terms()[1].as_const(), Some(&Value::int(42)));
        assert_eq!(atom.terms()[2].as_const(), Some(&Value::int(-7)));
        assert_eq!(
            atom.terms()[3].as_const(),
            Some(&Value::text("hello world"))
        );
        assert_eq!(atom.terms()[4].as_const(), Some(&Value::text("quoted")));
    }

    #[test]
    fn comparisons_and_inequalities() {
        let q = parse_query("EXISTS x, y . R(x, y) AND x = y").unwrap();
        assert!(q.is_positive_existential());
        let q = parse_query("EXISTS x, y . R(x, y) AND x != y").unwrap();
        assert!(!q.is_positive_existential());
        let q = parse_query("EXISTS x . R(x) AND x = 'a'").unwrap();
        assert!(q.is_positive_existential());
        let q = parse_query("1 = 1").unwrap();
        assert!(q.is_boolean());
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let q = parse_query("exists x . R(x) and not S(x) or true").unwrap();
        assert!(!q.is_positive_existential());
        assert!(q.is_boolean());
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse_query("").is_err());
        assert!(parse_query("EXISTS . R(x)").is_err());
        assert!(parse_query("EXISTS x R(x)").is_err());
        assert!(parse_query("R(x").is_err());
        assert!(parse_query("R(x) AND").is_err());
        assert!(parse_query("R(x) R(y)").is_err());
        assert!(parse_query("R(x) ! S(y)").is_err());
        assert!(parse_query("'unterminated").is_err());
        assert!(parse_query("R(x) @ S(y)").is_err());
        assert!(parse_query("x -").is_err());
        assert!(parse_query("99999999999999999999 = 1").is_err());
        assert!(parse_query("x").is_err());
    }

    #[test]
    fn nullary_style_atoms_are_rejected_gracefully() {
        // `R()` parses as an atom with zero terms; schema validation will
        // reject it at evaluation time, but parsing succeeds.
        let q = parse_query("R()").unwrap();
        assert_eq!(q.atoms()[0].arity(), 0);
    }

    #[test]
    fn deeply_nested_parentheses() {
        let q = parse_query("((((EXISTS x . ((R(x)))))))").unwrap();
        assert_eq!(q.atoms().len(), 1);
        assert!(q.is_positive_existential());
    }
}
