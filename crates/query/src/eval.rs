//! Query evaluation over databases.
//!
//! Two evaluation strategies are provided:
//!
//! * [`evaluate`] / [`evaluate_formula`] — active-domain model checking for
//!   arbitrary first-order queries.  Quantifiers range over the active
//!   domain `dom(D)`, matching the semantics of Section 2.1.
//! * [`find_homomorphisms`] / [`homomorphism_exists`] — backtracking
//!   homomorphism search for conjunctive queries, which is what the
//!   certificate machinery of Sections 4 and 5 needs (`h(Q') ⊆ D`).

use std::collections::BTreeMap;

use cdr_repairdb::{Database, Fact, Value};

use crate::{Atom, ConjunctiveQuery, FoFormula, Query, QueryError, Term, UcqQuery, VarName};

/// A (partial) assignment of variables to constants.
pub type Assignment = BTreeMap<VarName, Value>;

/// Evaluates a Boolean first-order query over a database.
///
/// Returns an error when the query has free variables or mentions unknown
/// relations / wrong arities.
pub fn evaluate(db: &Database, query: &Query) -> Result<bool, QueryError> {
    if !query.is_boolean() {
        return Err(QueryError::NotBoolean(
            query
                .answer_variables()
                .iter()
                .map(|v| v.to_string())
                .collect(),
        ));
    }
    validate_against_schema(db, query.formula())?;
    let domain: Vec<Value> = db.active_domain().into_iter().collect();
    let mut assignment = Assignment::new();
    evaluate_rec(db, &domain, query.formula(), &mut assignment)
}

/// Evaluates a first-order formula under a given assignment of its free
/// variables.  Quantifiers range over the active domain of `db`.
pub fn evaluate_formula(
    db: &Database,
    formula: &FoFormula,
    assignment: &Assignment,
) -> Result<bool, QueryError> {
    validate_against_schema(db, formula)?;
    let domain: Vec<Value> = db.active_domain().into_iter().collect();
    let mut assignment = assignment.clone();
    evaluate_rec(db, &domain, formula, &mut assignment)
}

fn validate_against_schema(db: &Database, formula: &FoFormula) -> Result<(), QueryError> {
    for atom in formula.atoms() {
        match db.schema().relation_id(atom.relation()) {
            None => return Err(QueryError::UnknownRelation(atom.relation().to_string())),
            Some(rel) => {
                let expected = db.schema().arity(rel);
                if atom.arity() != expected {
                    return Err(QueryError::ArityMismatch {
                        relation: atom.relation().to_string(),
                        expected,
                        found: atom.arity(),
                    });
                }
            }
        }
    }
    Ok(())
}

fn evaluate_rec(
    db: &Database,
    domain: &[Value],
    formula: &FoFormula,
    assignment: &mut Assignment,
) -> Result<bool, QueryError> {
    match formula {
        FoFormula::True => Ok(true),
        FoFormula::False => Ok(false),
        FoFormula::Atom(atom) => {
            let fact = ground_atom(db, atom, assignment)?;
            Ok(db.contains(&fact))
        }
        FoFormula::Eq(l, r) => {
            let lv = ground_term(l, assignment)?;
            let rv = ground_term(r, assignment)?;
            Ok(lv == rv)
        }
        FoFormula::Not(inner) => Ok(!evaluate_rec(db, domain, inner, assignment)?),
        FoFormula::And(parts) => {
            for p in parts {
                if !evaluate_rec(db, domain, p, assignment)? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        FoFormula::Or(parts) => {
            for p in parts {
                if evaluate_rec(db, domain, p, assignment)? {
                    return Ok(true);
                }
            }
            Ok(false)
        }
        FoFormula::Exists(vars, inner) => {
            quantify(
                db, domain, vars, inner, assignment, /*existential=*/ true,
            )
        }
        FoFormula::Forall(vars, inner) => {
            quantify(
                db, domain, vars, inner, assignment, /*existential=*/ false,
            )
        }
    }
}

/// Evaluates a block of like quantifiers.
///
/// The generic strategy iterates assignments of the quantified variables
/// over the active domain.  Two *guarded* fast paths avoid that cartesian
/// sweep when the body has the right shape:
///
/// * `∃x̄ (A ∧ ψ)` where `A` is an atom mentioning some of the `x̄` — only
///   assignments that embed `A` into the database can succeed, so the
///   candidate values come from the matching facts;
/// * `∀x̄ (¬A ∨ ψ)` — assignments that do not embed `A` satisfy the body
///   vacuously, so only the matching facts need checking.
///
/// Both are semantics-preserving restrictions of the active-domain sweep.
fn quantify(
    db: &Database,
    domain: &[Value],
    vars: &[VarName],
    inner: &FoFormula,
    assignment: &mut Assignment,
    existential: bool,
) -> Result<bool, QueryError> {
    let Some((_, _)) = vars.split_first() else {
        let mut local = assignment.clone();
        return evaluate_rec(db, domain, inner, &mut local);
    };
    let unbound: Vec<VarName> = vars
        .iter()
        .filter(|v| !assignment.contains_key(*v))
        .cloned()
        .collect();
    if unbound.is_empty() {
        let mut local = assignment.clone();
        return evaluate_rec(db, domain, inner, &mut local);
    }
    // Guarded fast path.
    if let Some(guard) = find_guard(inner, &unbound, assignment, existential) {
        return quantify_guarded(db, domain, &unbound, inner, assignment, existential, guard);
    }
    // Generic active-domain sweep over the first unbound variable.
    let first = &unbound[0];
    if domain.is_empty() {
        return Ok(!existential);
    }
    for value in domain {
        let previous = assignment.insert(first.clone(), value.clone());
        let result = quantify(db, domain, &unbound[1..], inner, assignment, existential)?;
        match previous {
            Some(prev) => {
                assignment.insert(first.clone(), prev);
            }
            None => {
                assignment.remove(first);
            }
        }
        if existential && result {
            return Ok(true);
        }
        if !existential && !result {
            return Ok(false);
        }
    }
    Ok(!existential)
}

/// Finds a guard atom for the guarded quantification fast path: a positive
/// atom conjunct (existential) or a negated atom disjunct (universal) that
/// mentions at least one of the quantified variables and no variable that
/// is neither quantified here nor already bound.
fn find_guard<'f>(
    inner: &'f FoFormula,
    vars: &[VarName],
    assignment: &Assignment,
    existential: bool,
) -> Option<&'f Atom> {
    let mentions = |atom: &Atom| {
        let usable = atom.terms().iter().all(|t| match t {
            Term::Const(_) => true,
            Term::Var(v) => vars.contains(v) || assignment.contains_key(v),
        });
        usable
            && atom
                .terms()
                .iter()
                .any(|t| matches!(t, Term::Var(v) if vars.contains(v)))
    };
    if existential {
        match inner {
            FoFormula::Atom(a) if mentions(a) => Some(a),
            FoFormula::And(parts) => parts.iter().find_map(|p| match p {
                FoFormula::Atom(a) if mentions(a) => Some(a),
                _ => None,
            }),
            _ => None,
        }
    } else {
        match inner {
            FoFormula::Not(boxed) => match boxed.as_ref() {
                FoFormula::Atom(a) if mentions(a) => Some(a),
                _ => None,
            },
            FoFormula::Or(parts) => parts.iter().find_map(|p| match p {
                FoFormula::Not(boxed) => match boxed.as_ref() {
                    FoFormula::Atom(a) if mentions(a) => Some(a),
                    _ => None,
                },
                _ => None,
            }),
            _ => None,
        }
    }
}

/// Quantification restricted to assignments that embed the guard atom into
/// the database.
#[allow(clippy::too_many_arguments)]
fn quantify_guarded(
    db: &Database,
    domain: &[Value],
    vars: &[VarName],
    inner: &FoFormula,
    assignment: &mut Assignment,
    existential: bool,
    guard: &Atom,
) -> Result<bool, QueryError> {
    let rel = db
        .schema()
        .relation_id(guard.relation())
        .ok_or_else(|| QueryError::UnknownRelation(guard.relation().to_string()))?;
    for &fact_id in db.facts_of(rel) {
        let fact = db.fact(fact_id);
        let mut added: Vec<VarName> = Vec::new();
        let mut matched = true;
        for (term, value) in guard.terms().iter().zip(fact.args()) {
            match term {
                Term::Const(c) => {
                    if c != value {
                        matched = false;
                        break;
                    }
                }
                Term::Var(v) => match assignment.get(v) {
                    Some(bound) => {
                        if bound != value {
                            matched = false;
                            break;
                        }
                    }
                    None => {
                        if vars.contains(v) {
                            assignment.insert(v.clone(), value.clone());
                            added.push(v.clone());
                        } else {
                            // A free variable of the guard that is not
                            // being quantified here and is unbound: the
                            // guard cannot restrict it, fall back to the
                            // generic sweep for safety.
                            matched = false;
                            break;
                        }
                    }
                },
            }
        }
        let result = if matched {
            // Quantify the variables the guard did not bind, then evaluate.
            let remaining: Vec<VarName> = vars
                .iter()
                .filter(|v| !assignment.contains_key(*v))
                .cloned()
                .collect();
            Some(if remaining.is_empty() {
                let mut local = assignment.clone();
                evaluate_rec(db, domain, inner, &mut local)?
            } else {
                quantify(db, domain, &remaining, inner, assignment, existential)?
            })
        } else {
            None
        };
        for v in added {
            assignment.remove(&v);
        }
        match result {
            Some(true) if existential => return Ok(true),
            Some(false) if !existential => return Ok(false),
            _ => {}
        }
    }
    Ok(!existential)
}

fn ground_term(term: &Term, assignment: &Assignment) -> Result<Value, QueryError> {
    match term {
        Term::Const(v) => Ok(v.clone()),
        Term::Var(name) => assignment
            .get(name)
            .cloned()
            .ok_or_else(|| QueryError::UnboundVariable(name.to_string())),
    }
}

fn ground_atom(db: &Database, atom: &Atom, assignment: &Assignment) -> Result<Fact, QueryError> {
    let rel = db
        .schema()
        .relation_id(atom.relation())
        .ok_or_else(|| QueryError::UnknownRelation(atom.relation().to_string()))?;
    let mut args = Vec::with_capacity(atom.arity());
    for t in atom.terms() {
        args.push(ground_term(t, assignment)?);
    }
    Ok(Fact::new(rel, args))
}

/// Finds all homomorphisms `h : var(Q) → dom(D)` with `h(Q) ⊆ D` for a
/// conjunctive query `Q`.
///
/// The result is sorted (by the `BTreeMap` ordering of assignments turned
/// into vectors) and free of duplicates, so callers can rely on a
/// deterministic certificate order.
pub fn find_homomorphisms(
    db: &Database,
    cq: &ConjunctiveQuery,
) -> Result<Vec<Assignment>, QueryError> {
    let mut results = Vec::new();
    let mut assignment = Assignment::new();
    search(db, cq.atoms(), &mut assignment, &mut results, None)?;
    results.sort();
    results.dedup();
    Ok(results)
}

/// Returns `true` iff the conjunctive query has at least one homomorphism
/// into the database.
pub fn homomorphism_exists(db: &Database, cq: &ConjunctiveQuery) -> Result<bool, QueryError> {
    let mut results = Vec::new();
    let mut assignment = Assignment::new();
    search(db, cq.atoms(), &mut assignment, &mut results, Some(1))?;
    Ok(!results.is_empty())
}

/// Evaluates a UCQ by homomorphism search (faster than active-domain model
/// checking for conjunctive shapes).
pub fn ucq_holds(db: &Database, ucq: &UcqQuery) -> Result<bool, QueryError> {
    for d in ucq.disjuncts() {
        if homomorphism_exists(db, d)? {
            return Ok(true);
        }
    }
    Ok(false)
}

fn search(
    db: &Database,
    remaining: &[Atom],
    assignment: &mut Assignment,
    results: &mut Vec<Assignment>,
    limit: Option<usize>,
) -> Result<(), QueryError> {
    if let Some(max) = limit {
        if results.len() >= max {
            return Ok(());
        }
    }
    let Some((atom, rest)) = remaining.split_first() else {
        results.push(assignment.clone());
        return Ok(());
    };
    let rel = db
        .schema()
        .relation_id(atom.relation())
        .ok_or_else(|| QueryError::UnknownRelation(atom.relation().to_string()))?;
    let expected = db.schema().arity(rel);
    if atom.arity() != expected {
        return Err(QueryError::ArityMismatch {
            relation: atom.relation().to_string(),
            expected,
            found: atom.arity(),
        });
    }
    for &fact_id in db.facts_of(rel) {
        let fact = db.fact(fact_id);
        let mut added: Vec<VarName> = Vec::new();
        let mut matched = true;
        for (term, value) in atom.terms().iter().zip(fact.args()) {
            match term {
                Term::Const(c) => {
                    if c != value {
                        matched = false;
                        break;
                    }
                }
                Term::Var(v) => match assignment.get(v) {
                    Some(bound) => {
                        if bound != value {
                            matched = false;
                            break;
                        }
                    }
                    None => {
                        assignment.insert(v.clone(), value.clone());
                        added.push(v.clone());
                    }
                },
            }
        }
        if matched {
            search(db, rest, assignment, results, limit)?;
        }
        for v in added {
            assignment.remove(&v);
        }
        if let Some(max) = limit {
            if results.len() >= max {
                return Ok(());
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse_query, rewrite_to_ucq};
    use cdr_repairdb::{KeySet, Schema};

    fn employee_db() -> Database {
        let mut schema = Schema::new();
        schema.add_relation("Employee", 3).unwrap();
        let mut db = Database::new(schema);
        db.insert_parsed("Employee(1, 'Bob', 'HR')").unwrap();
        db.insert_parsed("Employee(1, 'Bob', 'IT')").unwrap();
        db.insert_parsed("Employee(2, 'Alice', 'IT')").unwrap();
        db.insert_parsed("Employee(2, 'Tim', 'IT')").unwrap();
        db
    }

    #[test]
    fn example_query_holds_on_the_full_database() {
        let db = employee_db();
        let q = parse_query("EXISTS x, y, z . Employee(1, x, y) AND Employee(2, z, y)").unwrap();
        assert!(evaluate(&db, &q).unwrap());
    }

    #[test]
    fn example_query_on_each_repair() {
        // The paper: the query holds in exactly 2 of the 4 repairs.
        let db = employee_db();
        let keys = KeySet::builder(db.schema())
            .key("Employee", 1)
            .unwrap()
            .build();
        let q = parse_query("EXISTS x, y, z . Employee(1, x, y) AND Employee(2, z, y)").unwrap();
        let blocks = cdr_repairdb::BlockPartition::new(&db, &keys);
        let mut holds = 0;
        for repair in cdr_repairdb::RepairIter::new(&blocks) {
            let repaired = repair.to_database(&db);
            if evaluate(&repaired, &q).unwrap() {
                holds += 1;
            }
        }
        assert_eq!(holds, 2);
    }

    #[test]
    fn negation_and_universal_quantification() {
        let db = employee_db();
        // Nobody with id 3 exists.
        let q = parse_query("NOT EXISTS x, y . Employee(3, x, y)").unwrap();
        assert!(evaluate(&db, &q).unwrap());
        // Everybody in HR?  No: Alice and Tim are only in IT.
        let q =
            parse_query("FORALL i, n, d . NOT Employee(i, n, d) OR Employee(i, n, 'HR')").unwrap();
        assert!(!evaluate(&db, &q).unwrap());
        // Everybody is in HR or IT.
        let q = parse_query(
            "FORALL i, n, d . NOT Employee(i, n, d) OR Employee(i, n, 'HR') OR Employee(i, n, 'IT')",
        )
        .unwrap();
        assert!(evaluate(&db, &q).unwrap());
        // Every employee fact has some department.
        let q =
            parse_query("FORALL i, n, d . NOT Employee(i, n, d) OR EXISTS e . Employee(i, n, e)")
                .unwrap();
        assert!(evaluate(&db, &q).unwrap());
    }

    #[test]
    fn equality_in_queries() {
        let db = employee_db();
        let q =
            parse_query("EXISTS x, y, z . Employee(1, x, y) AND Employee(2, z, y) AND x = 'Bob'")
                .unwrap();
        assert!(evaluate(&db, &q).unwrap());
        let q = parse_query("EXISTS x, y . Employee(1, x, y) AND x = 'Alice'").unwrap();
        assert!(!evaluate(&db, &q).unwrap());
    }

    #[test]
    fn true_false_and_empty_database() {
        let db = employee_db();
        assert!(evaluate(&db, &parse_query("TRUE").unwrap()).unwrap());
        assert!(!evaluate(&db, &parse_query("FALSE").unwrap()).unwrap());

        let mut schema = Schema::new();
        schema.add_relation("R", 1).unwrap();
        let empty = Database::new(schema);
        // Existential over an empty domain is false; universal is true.
        assert!(!evaluate(&empty, &parse_query("EXISTS x . R(x)").unwrap()).unwrap());
        assert!(evaluate(&empty, &parse_query("FORALL x . R(x)").unwrap()).unwrap());
    }

    #[test]
    fn unknown_relation_and_arity_errors() {
        let db = employee_db();
        let q = parse_query("EXISTS x . Missing(x)").unwrap();
        assert!(matches!(
            evaluate(&db, &q),
            Err(QueryError::UnknownRelation(_))
        ));
        let q = parse_query("EXISTS x . Employee(x)").unwrap();
        assert!(matches!(
            evaluate(&db, &q),
            Err(QueryError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn non_boolean_queries_are_rejected_by_evaluate() {
        let db = employee_db();
        let q =
            crate::parser::parse_query_with_answers("Employee(x, y, 'IT')", &["x", "y"]).unwrap();
        assert!(matches!(evaluate(&db, &q), Err(QueryError::NotBoolean(_))));
    }

    #[test]
    fn evaluate_formula_under_an_assignment() {
        let db = employee_db();
        let q =
            crate::parser::parse_query_with_answers("Employee(x, y, 'IT')", &["x", "y"]).unwrap();
        let mut assignment = Assignment::new();
        assignment.insert(std::sync::Arc::from("x"), Value::int(2));
        assignment.insert(std::sync::Arc::from("y"), Value::text("Alice"));
        assert!(evaluate_formula(&db, q.formula(), &assignment).unwrap());
        assignment.insert(std::sync::Arc::from("y"), Value::text("Bob"));
        assert!(!evaluate_formula(&db, q.formula(), &assignment).unwrap());
    }

    #[test]
    fn homomorphisms_of_the_example_query() {
        let db = employee_db();
        let q = parse_query("EXISTS x, y, z . Employee(1, x, y) AND Employee(2, z, y)").unwrap();
        let ucq = rewrite_to_ucq(&q).unwrap();
        let cq = &ucq.disjuncts()[0];
        let homs = find_homomorphisms(&db, cq).unwrap();
        // Bob in IT joins with Alice (IT) and Tim (IT): two homomorphisms.
        assert_eq!(homs.len(), 2);
        for h in &homs {
            assert_eq!(h.len(), 3);
        }
        assert!(homomorphism_exists(&db, cq).unwrap());
    }

    #[test]
    fn homomorphisms_with_constants_and_repeated_variables() {
        let mut schema = Schema::new();
        schema.add_relation("E", 2).unwrap();
        let mut db = Database::new(schema);
        db.insert_parsed("E(1, 2)").unwrap();
        db.insert_parsed("E(2, 2)").unwrap();
        db.insert_parsed("E(2, 3)").unwrap();
        // Self-loop pattern E(x, x).
        let q = parse_query("EXISTS x . E(x, x)").unwrap();
        let ucq = rewrite_to_ucq(&q).unwrap();
        let homs = find_homomorphisms(&db, &ucq.disjuncts()[0]).unwrap();
        assert_eq!(homs.len(), 1);
        assert_eq!(homs[0].values().next().unwrap(), &Value::int(2));
        // Path pattern E(x, y) AND E(y, z).
        let q = parse_query("EXISTS x, y, z . E(x, y) AND E(y, z)").unwrap();
        let ucq = rewrite_to_ucq(&q).unwrap();
        let homs = find_homomorphisms(&db, &ucq.disjuncts()[0]).unwrap();
        // 1->2->2, 1->2->3, 2->2->2, 2->2->3 : four homomorphisms.
        assert_eq!(homs.len(), 4);
    }

    #[test]
    fn homomorphism_search_agrees_with_fo_evaluation() {
        let db = employee_db();
        let queries = [
            "EXISTS x, y, z . Employee(1, x, y) AND Employee(2, z, y)",
            "EXISTS x, y . Employee(3, x, y)",
            "EXISTS x . Employee(1, 'Bob', x)",
            "(EXISTS x . Employee(1, 'Bob', x)) OR (EXISTS y . Employee(9, 'Zoe', y))",
        ];
        for text in queries {
            let q = parse_query(text).unwrap();
            let ucq = rewrite_to_ucq(&q).unwrap();
            assert_eq!(
                ucq_holds(&db, &ucq).unwrap(),
                evaluate(&db, &q).unwrap(),
                "mismatch for {text}"
            );
        }
    }

    #[test]
    fn ucq_of_false_is_false() {
        let db = employee_db();
        let ucq = rewrite_to_ucq(&parse_query("FALSE").unwrap()).unwrap();
        assert!(!ucq_holds(&db, &ucq).unwrap());
    }
}
