//! Conjunctive queries and unions of conjunctive queries.

use std::collections::BTreeSet;
use std::fmt;

use crate::{Atom, FoFormula, Query, VarName};

/// A Boolean conjunctive query: an existentially quantified conjunction of
/// relational atoms.
///
/// All variables are implicitly existentially quantified, matching the way
/// the paper treats the disjuncts `Q₁, …, Qₙ` of a UCQ.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct ConjunctiveQuery {
    atoms: Vec<Atom>,
}

impl ConjunctiveQuery {
    /// Builds a conjunctive query from its atoms.
    pub fn new(atoms: Vec<Atom>) -> Self {
        ConjunctiveQuery { atoms }
    }

    /// The atoms of the query.
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// Number of atoms.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// Returns `true` iff the query has no atoms (the always-true query).
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// The variables of the query `var(Q)`, in first-occurrence order.
    pub fn variables(&self) -> Vec<VarName> {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        for atom in &self.atoms {
            for v in atom.variables() {
                if seen.insert(v.clone()) {
                    out.push(v);
                }
            }
        }
        out
    }

    /// Returns `true` iff two distinct atoms use the same relation
    /// (the query has a *self-join*).  The distinction matters because the
    /// dichotomy of Maslowski and Wijsen was first shown for self-join-free
    /// queries \[8\] and later extended \[9\].
    pub fn has_self_join(&self) -> bool {
        let mut seen = BTreeSet::new();
        for atom in &self.atoms {
            if !seen.insert(atom.relation().to_string()) {
                return true;
            }
        }
        false
    }

    /// Converts the conjunctive query into a first-order formula
    /// (an existentially closed conjunction of its atoms).
    pub fn to_formula(&self) -> FoFormula {
        let body = if self.atoms.is_empty() {
            FoFormula::True
        } else {
            FoFormula::And(self.atoms.iter().cloned().map(FoFormula::Atom).collect())
        };
        FoFormula::exists(self.variables(), body)
    }

    /// Converts the conjunctive query into a Boolean [`Query`].
    pub fn to_query(&self) -> Query {
        Query::boolean(self.to_formula())
    }
}

impl fmt::Display for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.atoms.is_empty() {
            return write!(f, "TRUE");
        }
        let vars = self.variables();
        if !vars.is_empty() {
            write!(f, "EXISTS {} . ", vars.join(", "))?;
        }
        let rendered: Vec<String> = self.atoms.iter().map(|a| a.to_string()).collect();
        write!(f, "{}", rendered.join(" AND "))
    }
}

/// A union of Boolean conjunctive queries `Q₁ ∨ ⋯ ∨ Qₘ`.
///
/// An empty union is the always-false query.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct UcqQuery {
    disjuncts: Vec<ConjunctiveQuery>,
}

impl UcqQuery {
    /// Builds a UCQ from its disjuncts, dropping exact duplicates.
    pub fn new(disjuncts: Vec<ConjunctiveQuery>) -> Self {
        let mut seen = Vec::new();
        for d in disjuncts {
            if !seen.contains(&d) {
                seen.push(d);
            }
        }
        UcqQuery { disjuncts: seen }
    }

    /// The disjuncts of the query.
    pub fn disjuncts(&self) -> &[ConjunctiveQuery] {
        &self.disjuncts
    }

    /// Number of disjuncts.
    pub fn len(&self) -> usize {
        self.disjuncts.len()
    }

    /// Returns `true` iff the union is empty (the always-false query).
    pub fn is_empty(&self) -> bool {
        self.disjuncts.is_empty()
    }

    /// Returns `true` iff some disjunct has no atoms, i.e. the query is
    /// trivially true on every database (including the empty one).
    pub fn is_trivially_true(&self) -> bool {
        self.disjuncts.iter().any(ConjunctiveQuery::is_empty)
    }

    /// Returns `true` iff any disjunct has a self-join.
    pub fn has_self_join(&self) -> bool {
        self.disjuncts.iter().any(ConjunctiveQuery::has_self_join)
    }

    /// Converts the UCQ into a first-order formula.
    pub fn to_formula(&self) -> FoFormula {
        if self.disjuncts.is_empty() {
            FoFormula::False
        } else {
            FoFormula::Or(self.disjuncts.iter().map(|d| d.to_formula()).collect())
        }
    }

    /// Converts the UCQ into a Boolean [`Query`].
    pub fn to_query(&self) -> Query {
        Query::boolean(self.to_formula())
    }
}

impl fmt::Display for UcqQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.disjuncts.is_empty() {
            return write!(f, "FALSE");
        }
        let rendered: Vec<String> = self.disjuncts.iter().map(|d| format!("({d})")).collect();
        write!(f, "{}", rendered.join(" OR "))
    }
}

impl From<ConjunctiveQuery> for UcqQuery {
    fn from(cq: ConjunctiveQuery) -> Self {
        UcqQuery::new(vec![cq])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Term;

    fn cq_rx_sy() -> ConjunctiveQuery {
        ConjunctiveQuery::new(vec![
            Atom::new("R", vec![Term::var("x"), Term::var("y")]),
            Atom::new("S", vec![Term::var("y")]),
        ])
    }

    #[test]
    fn variables_in_first_occurrence_order() {
        let cq = cq_rx_sy();
        let vars: Vec<String> = cq.variables().iter().map(|v| v.to_string()).collect();
        assert_eq!(vars, vec!["x", "y"]);
        assert_eq!(cq.len(), 2);
        assert!(!cq.is_empty());
    }

    #[test]
    fn self_join_detection() {
        assert!(!cq_rx_sy().has_self_join());
        let sj = ConjunctiveQuery::new(vec![
            Atom::new("R", vec![Term::var("x")]),
            Atom::new("R", vec![Term::var("y")]),
        ]);
        assert!(sj.has_self_join());
    }

    #[test]
    fn to_formula_existentially_closes() {
        let cq = cq_rx_sy();
        let q = cq.to_query();
        assert!(q.is_boolean());
        assert!(q.is_positive_existential());
        assert_eq!(q.atoms().len(), 2);
        let empty = ConjunctiveQuery::new(vec![]);
        assert_eq!(empty.to_formula(), FoFormula::True);
        assert_eq!(empty.to_string(), "TRUE");
    }

    #[test]
    fn ucq_deduplicates_disjuncts() {
        let ucq = UcqQuery::new(vec![cq_rx_sy(), cq_rx_sy()]);
        assert_eq!(ucq.len(), 1);
        assert!(!ucq.is_empty());
        assert!(!ucq.is_trivially_true());
    }

    #[test]
    fn ucq_empty_and_trivial_cases() {
        let empty = UcqQuery::new(vec![]);
        assert!(empty.is_empty());
        assert_eq!(empty.to_formula(), FoFormula::False);
        assert_eq!(empty.to_string(), "FALSE");

        let trivial = UcqQuery::new(vec![ConjunctiveQuery::new(vec![])]);
        assert!(trivial.is_trivially_true());
    }

    #[test]
    fn ucq_self_join_and_display() {
        let ucq = UcqQuery::new(vec![
            cq_rx_sy(),
            ConjunctiveQuery::new(vec![
                Atom::new("T", vec![Term::var("x")]),
                Atom::new("T", vec![Term::var("y")]),
            ]),
        ]);
        assert!(ucq.has_self_join());
        let text = ucq.to_string();
        assert!(text.contains(" OR "));
        assert!(text.contains("R(x, y)"));
    }

    #[test]
    fn from_cq_conversion() {
        let ucq: UcqQuery = cq_rx_sy().into();
        assert_eq!(ucq.len(), 1);
    }
}
