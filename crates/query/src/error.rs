//! Errors produced while parsing, rewriting or evaluating queries.

use std::fmt;

/// Errors produced by the query layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// The query text could not be parsed.
    Parse(String),
    /// The query mentions a relation that the database schema does not
    /// declare.
    UnknownRelation(String),
    /// An atom uses a relation with the wrong number of arguments.
    ArityMismatch {
        /// Relation name involved.
        relation: String,
        /// Arity declared in the schema.
        expected: usize,
        /// Number of terms in the atom.
        found: usize,
    },
    /// An operation that requires an existential positive query was given a
    /// query outside that fragment (e.g. it contains negation or a
    /// universal quantifier).
    NotPositiveExistential(String),
    /// An operation that requires a Boolean query was given a query with
    /// free variables.
    NotBoolean(Vec<String>),
    /// A variable is used but never bound by a quantifier and is not listed
    /// as a free (answer) variable.
    UnboundVariable(String),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Parse(msg) => write!(f, "query parse error: {msg}"),
            QueryError::UnknownRelation(name) => {
                write!(f, "query mentions unknown relation `{name}`")
            }
            QueryError::ArityMismatch {
                relation,
                expected,
                found,
            } => write!(
                f,
                "relation `{relation}` has arity {expected} but the query uses {found} terms"
            ),
            QueryError::NotPositiveExistential(what) => {
                write!(f, "query is not existential positive: {what}")
            }
            QueryError::NotBoolean(vars) => {
                write!(
                    f,
                    "query is not Boolean; free variables: {}",
                    vars.join(", ")
                )
            }
            QueryError::UnboundVariable(v) => write!(f, "variable `{v}` is not bound"),
        }
    }
}

impl std::error::Error for QueryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(QueryError::Parse("x".into()).to_string().contains("x"));
        assert!(QueryError::UnknownRelation("R".into())
            .to_string()
            .contains("R"));
        assert!(QueryError::ArityMismatch {
            relation: "R".into(),
            expected: 2,
            found: 3
        }
        .to_string()
        .contains("arity 2"));
        assert!(QueryError::NotPositiveExistential("negation".into())
            .to_string()
            .contains("negation"));
        assert!(QueryError::NotBoolean(vec!["x".into()])
            .to_string()
            .contains("x"));
        assert!(QueryError::UnboundVariable("y".into())
            .to_string()
            .contains("y"));
    }
}
