//! Rewriting existential positive queries into unions of conjunctive
//! queries.
//!
//! The proofs of Theorems 3.4 and 3.7 start by rewriting an `∃FO⁺` query
//! `Q` into an equivalent UCQ `Q' = Q₁ ∨ ⋯ ∨ Qₘ` — a rewriting that does
//! not depend on the database, i.e. is "constant time" under data
//! complexity.  [`rewrite_to_ucq`] implements that rewriting:
//!
//! 1. bound variables are standardised apart, so distributing connectives
//!    cannot capture variables;
//! 2. the formula is put into disjunctive normal form by distributing
//!    conjunction over disjunction;
//! 3. equality atoms inside each disjunct are eliminated by substitution
//!    (constant/constant equalities prune or keep the disjunct).

use std::collections::HashMap;
use std::sync::Arc;

use cdr_repairdb::Value;

use crate::{Atom, ConjunctiveQuery, FoFormula, Query, QueryError, Term, UcqQuery, VarName};

/// Rewrites a Boolean existential positive query into an equivalent UCQ.
///
/// Returns an error if the query has free (answer) variables or is outside
/// the `∃FO⁺` fragment.
pub fn rewrite_to_ucq(query: &Query) -> Result<UcqQuery, QueryError> {
    if !query.is_boolean() {
        return Err(QueryError::NotBoolean(
            query
                .answer_variables()
                .iter()
                .map(|v| v.to_string())
                .collect(),
        ));
    }
    if !query.is_positive_existential() {
        return Err(QueryError::NotPositiveExistential(
            "the formula contains negation or universal quantification".into(),
        ));
    }
    let mut renamer = Renamer::default();
    let renamed = renamer.standardize_apart(query.formula(), &HashMap::new());
    let disjuncts = dnf(&renamed);
    let mut cqs = Vec::new();
    for conjunct in disjuncts {
        if let Some(atoms) = resolve_equalities(conjunct) {
            cqs.push(ConjunctiveQuery::new(atoms));
        }
    }
    Ok(UcqQuery::new(cqs))
}

/// One literal of a DNF conjunct: a relational atom or an equality.
#[derive(Clone, Debug)]
enum Literal {
    Atom(Atom),
    Eq(Term, Term),
}

/// Renames every quantified variable to a globally fresh name.
#[derive(Default)]
struct Renamer {
    counter: usize,
}

impl Renamer {
    fn fresh(&mut self, base: &str) -> VarName {
        self.counter += 1;
        Arc::from(format!("{base}#{}", self.counter))
    }

    fn standardize_apart(
        &mut self,
        formula: &FoFormula,
        scope: &HashMap<VarName, VarName>,
    ) -> FoFormula {
        match formula {
            FoFormula::True => FoFormula::True,
            FoFormula::False => FoFormula::False,
            FoFormula::Atom(a) => FoFormula::Atom(rename_atom(a, scope)),
            FoFormula::Eq(l, r) => FoFormula::Eq(rename_term(l, scope), rename_term(r, scope)),
            FoFormula::Not(inner) => FoFormula::Not(Box::new(self.standardize_apart(inner, scope))),
            FoFormula::And(parts) => FoFormula::And(
                parts
                    .iter()
                    .map(|p| self.standardize_apart(p, scope))
                    .collect(),
            ),
            FoFormula::Or(parts) => FoFormula::Or(
                parts
                    .iter()
                    .map(|p| self.standardize_apart(p, scope))
                    .collect(),
            ),
            FoFormula::Exists(vars, inner) | FoFormula::Forall(vars, inner) => {
                let mut inner_scope = scope.clone();
                let fresh: Vec<VarName> = vars
                    .iter()
                    .map(|v| {
                        let f = self.fresh(v);
                        inner_scope.insert(v.clone(), f.clone());
                        f
                    })
                    .collect();
                let body = self.standardize_apart(inner, &inner_scope);
                match formula {
                    FoFormula::Exists(_, _) => FoFormula::Exists(fresh, Box::new(body)),
                    _ => FoFormula::Forall(fresh, Box::new(body)),
                }
            }
        }
    }
}

fn rename_term(term: &Term, scope: &HashMap<VarName, VarName>) -> Term {
    match term {
        Term::Var(v) => Term::Var(scope.get(v).cloned().unwrap_or_else(|| v.clone())),
        Term::Const(_) => term.clone(),
    }
}

fn rename_atom(atom: &Atom, scope: &HashMap<VarName, VarName>) -> Atom {
    Atom::new(
        atom.relation(),
        atom.terms().iter().map(|t| rename_term(t, scope)).collect(),
    )
}

/// Puts a (standardised-apart, positive, quantifier-stripped) formula into
/// DNF: a list of conjuncts, each a list of literals.
fn dnf(formula: &FoFormula) -> Vec<Vec<Literal>> {
    match formula {
        FoFormula::True => vec![vec![]],
        FoFormula::False => vec![],
        FoFormula::Atom(a) => vec![vec![Literal::Atom(a.clone())]],
        FoFormula::Eq(l, r) => vec![vec![Literal::Eq(l.clone(), r.clone())]],
        FoFormula::Exists(_, inner) => dnf(inner),
        FoFormula::Or(parts) => parts.iter().flat_map(dnf).collect(),
        FoFormula::And(parts) => {
            let mut acc: Vec<Vec<Literal>> = vec![vec![]];
            for part in parts {
                let part_dnf = dnf(part);
                let mut next = Vec::with_capacity(acc.len() * part_dnf.len());
                for left in &acc {
                    for right in &part_dnf {
                        let mut combined = left.clone();
                        combined.extend(right.iter().cloned());
                        next.push(combined);
                    }
                }
                acc = next;
            }
            acc
        }
        // Positivity was checked by the caller; these cases are unreachable.
        FoFormula::Not(_) | FoFormula::Forall(_, _) => {
            unreachable!("dnf called on a non-positive formula")
        }
    }
}

/// Eliminates equality literals in a conjunct by substitution.
///
/// Returns `None` when the conjunct is unsatisfiable (two distinct
/// constants are required to be equal), otherwise the atoms with all
/// equality-induced substitutions applied.
fn resolve_equalities(conjunct: Vec<Literal>) -> Option<Vec<Atom>> {
    let mut atoms: Vec<Atom> = Vec::new();
    let mut equalities: Vec<(Term, Term)> = Vec::new();
    for lit in conjunct {
        match lit {
            Literal::Atom(a) => atoms.push(a),
            Literal::Eq(l, r) => equalities.push((l, r)),
        }
    }
    // Union-find over variables with optional constant representative.
    let mut binding: HashMap<VarName, Term> = HashMap::new();

    fn resolve(term: &Term, binding: &HashMap<VarName, Term>) -> Term {
        let mut current = term.clone();
        let mut guard = 0;
        while let Term::Var(v) = &current {
            match binding.get(v) {
                Some(next) if next != &current => {
                    current = next.clone();
                    guard += 1;
                    if guard > binding.len() + 1 {
                        break;
                    }
                }
                _ => break,
            }
        }
        current
    }

    for (l, r) in equalities {
        let l = resolve(&l, &binding);
        let r = resolve(&r, &binding);
        match (&l, &r) {
            (Term::Const(a), Term::Const(b)) => {
                if a != b {
                    return None;
                }
            }
            (Term::Var(v), other) | (other, Term::Var(v)) => {
                if Term::Var(v.clone()) != *other {
                    binding.insert(v.clone(), other.clone());
                }
            }
        }
    }
    let substituted = atoms
        .into_iter()
        .map(|a| {
            a.substitute(&|v: &VarName| {
                let resolved = resolve(&Term::Var(v.clone()), &binding);
                if resolved == Term::Var(v.clone()) {
                    None
                } else {
                    Some(resolved)
                }
            })
        })
        .collect();
    Some(substituted)
}

/// Substitutes constants for the answer variables of a query, producing the
/// Boolean query `Q(t̄)` the counting problem is about (the paper's
/// "t̄ ∈ Q(D′)" side condition).
///
/// The `tuple` must have the same length as the query's answer variables.
pub fn bind_answers(query: &Query, tuple: &[Value]) -> Result<Query, QueryError> {
    let answers = query.answer_variables();
    if answers.len() != tuple.len() {
        return Err(QueryError::Parse(format!(
            "answer tuple has {} values but the query has {} answer variables",
            tuple.len(),
            answers.len()
        )));
    }
    let mapping: HashMap<VarName, Value> =
        answers.iter().cloned().zip(tuple.iter().cloned()).collect();
    let bound = substitute_formula(query.formula(), &mapping);
    Ok(Query::boolean(bound))
}

fn substitute_formula(formula: &FoFormula, mapping: &HashMap<VarName, Value>) -> FoFormula {
    match formula {
        FoFormula::True => FoFormula::True,
        FoFormula::False => FoFormula::False,
        FoFormula::Atom(a) => FoFormula::Atom(
            a.substitute(&|v: &VarName| mapping.get(v).map(|val| Term::Const(val.clone()))),
        ),
        FoFormula::Eq(l, r) => {
            FoFormula::Eq(substitute_term(l, mapping), substitute_term(r, mapping))
        }
        FoFormula::Not(inner) => FoFormula::Not(Box::new(substitute_formula(inner, mapping))),
        FoFormula::And(parts) => FoFormula::And(
            parts
                .iter()
                .map(|p| substitute_formula(p, mapping))
                .collect(),
        ),
        FoFormula::Or(parts) => FoFormula::Or(
            parts
                .iter()
                .map(|p| substitute_formula(p, mapping))
                .collect(),
        ),
        FoFormula::Exists(vars, inner) => {
            let mut inner_map = mapping.clone();
            for v in vars {
                inner_map.remove(v);
            }
            FoFormula::Exists(
                vars.clone(),
                Box::new(substitute_formula(inner, &inner_map)),
            )
        }
        FoFormula::Forall(vars, inner) => {
            let mut inner_map = mapping.clone();
            for v in vars {
                inner_map.remove(v);
            }
            FoFormula::Forall(
                vars.clone(),
                Box::new(substitute_formula(inner, &inner_map)),
            )
        }
    }
}

fn substitute_term(term: &Term, mapping: &HashMap<VarName, Value>) -> Term {
    match term {
        Term::Var(v) => mapping
            .get(v)
            .map(|val| Term::Const(val.clone()))
            .unwrap_or_else(|| term.clone()),
        Term::Const(_) => term.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_query;

    #[test]
    fn cq_rewrites_to_single_disjunct() {
        let q = parse_query("EXISTS x, y, z . Employee(1, x, y) AND Employee(2, z, y)").unwrap();
        let ucq = rewrite_to_ucq(&q).unwrap();
        assert_eq!(ucq.len(), 1);
        assert_eq!(ucq.disjuncts()[0].atoms().len(), 2);
    }

    #[test]
    fn disjunction_of_atoms_rewrites_to_two_disjuncts() {
        let q = parse_query("EXISTS x . R(x) OR EXISTS y . S(y)").unwrap();
        let ucq = rewrite_to_ucq(&q).unwrap();
        assert_eq!(ucq.len(), 2);
    }

    #[test]
    fn conjunction_distributes_over_disjunction() {
        // (R(x) OR S(x)) AND (T(x) OR U(x))  ->  4 disjuncts.
        let q = parse_query("EXISTS x . (R(x) OR S(x)) AND (T(x) OR U(x))").unwrap();
        let ucq = rewrite_to_ucq(&q).unwrap();
        assert_eq!(ucq.len(), 4);
        assert!(ucq.disjuncts().iter().all(|d| d.atoms().len() == 2));
    }

    #[test]
    fn shared_variable_names_in_sibling_scopes_stay_independent() {
        // The two `x`s are different variables; a naive DNF would conflate
        // them and force R and S to share a witness.
        let q = parse_query("(EXISTS x . R(x)) AND (EXISTS x . S(x))").unwrap();
        let ucq = rewrite_to_ucq(&q).unwrap();
        assert_eq!(ucq.len(), 1);
        let cq = &ucq.disjuncts()[0];
        assert_eq!(cq.atoms().len(), 2);
        let v0 = cq.atoms()[0].variables();
        let v1 = cq.atoms()[1].variables();
        assert_ne!(
            v0, v1,
            "standardising apart must keep the variables distinct"
        );
    }

    #[test]
    fn equalities_are_eliminated_by_substitution() {
        let q = parse_query("EXISTS x, y . R(x, y) AND x = 1 AND y = 'a'").unwrap();
        let ucq = rewrite_to_ucq(&q).unwrap();
        assert_eq!(ucq.len(), 1);
        let atom = &ucq.disjuncts()[0].atoms()[0];
        assert_eq!(atom.to_string(), "R(1, 'a')");
    }

    #[test]
    fn variable_to_variable_equalities_merge() {
        let q = parse_query("EXISTS x, y . R(x) AND S(y) AND x = y").unwrap();
        let ucq = rewrite_to_ucq(&q).unwrap();
        let cq = &ucq.disjuncts()[0];
        let vars = cq.variables();
        assert_eq!(vars.len(), 1, "x and y must have been merged, got {vars:?}");
    }

    #[test]
    fn contradictory_constant_equality_prunes_the_disjunct() {
        let q = parse_query("(EXISTS x . R(x) AND 1 = 2) OR (EXISTS y . S(y))").unwrap();
        let ucq = rewrite_to_ucq(&q).unwrap();
        assert_eq!(ucq.len(), 1);
        assert_eq!(ucq.disjuncts()[0].atoms()[0].relation(), "S");
    }

    #[test]
    fn tautological_equality_is_dropped() {
        let q = parse_query("EXISTS x . R(x) AND 1 = 1").unwrap();
        let ucq = rewrite_to_ucq(&q).unwrap();
        assert_eq!(ucq.len(), 1);
        assert_eq!(ucq.disjuncts()[0].atoms().len(), 1);
    }

    #[test]
    fn true_and_false_constants() {
        let t = parse_query("TRUE").unwrap();
        assert!(rewrite_to_ucq(&t).unwrap().is_trivially_true());
        let f = parse_query("FALSE").unwrap();
        assert!(rewrite_to_ucq(&f).unwrap().is_empty());
        let mixed = parse_query("FALSE OR EXISTS x . R(x)").unwrap();
        assert_eq!(rewrite_to_ucq(&mixed).unwrap().len(), 1);
    }

    #[test]
    fn non_positive_queries_are_rejected() {
        let q = parse_query("NOT EXISTS x . R(x)").unwrap();
        assert!(matches!(
            rewrite_to_ucq(&q),
            Err(QueryError::NotPositiveExistential(_))
        ));
        let q = parse_query("FORALL x . R(x)").unwrap();
        assert!(matches!(
            rewrite_to_ucq(&q),
            Err(QueryError::NotPositiveExistential(_))
        ));
    }

    #[test]
    fn duplicate_disjuncts_are_merged() {
        let q = parse_query("(EXISTS x . R(x)) OR (EXISTS x . R(x))").unwrap();
        let ucq = rewrite_to_ucq(&q).unwrap();
        // After standardising apart, the two disjuncts differ only in the
        // fresh variable name; structural dedup cannot see through renaming,
        // so we only require both to be single-atom R-disjuncts.
        assert!(ucq.len() <= 2);
        assert!(ucq.disjuncts().iter().all(|d| d.atoms().len() == 1));
    }

    #[test]
    fn bind_answers_substitutes_the_tuple() {
        let q =
            crate::parser::parse_query_with_answers("Employee(x, y, 'IT')", &["x", "y"]).unwrap();
        let bound = bind_answers(&q, &[Value::int(2), Value::text("Alice")]).unwrap();
        assert!(bound.is_boolean());
        let atoms = bound.atoms();
        assert_eq!(atoms[0].to_string(), "Employee(2, 'Alice', 'IT')");
        // Wrong tuple length is rejected.
        assert!(bind_answers(&q, &[Value::int(2)]).is_err());
    }
}
